#!/usr/bin/env python
"""Scenario: what do negative seed entities actually buy you?

The paper motivates negative seeds with two roles (Section I):

* when A_pos and A_neg constrain the *same* attribute, negatives disambiguate
  which attribute the user cares about;
* when they constrain *different* attributes, negatives express "unwanted"
  semantics that positive seeds alone cannot describe.

This example evaluates RetExpan with and without the negative-seed re-ranking
module on both query groups, mirroring the paper's Table IV / Table V
analysis.

Run with:  python examples/negative_seed_roles.py
"""

from __future__ import annotations

from repro import (
    DatasetConfig,
    Evaluator,
    RetExpan,
    RetExpanConfig,
    SharedResources,
    build_dataset,
    format_table,
)


def main() -> None:
    print("Building the tiny dataset ...")
    dataset = build_dataset(DatasetConfig.tiny(seed=13))
    resources = SharedResources(dataset)
    evaluator = Evaluator(dataset, max_queries=24)

    with_negatives = RetExpan(resources=resources).fit(dataset)
    without_negatives = RetExpan(
        RetExpanConfig(use_negative_rerank=False),
        resources=resources,
        name="RetExpan - Neg Rerank",
    ).fit(dataset)

    def attribute_regime(query):
        return "A_pos = A_neg" if dataset.ultra_class(query.class_id).same_attributes else "A_pos != A_neg"

    rows = []
    for expander in (with_negatives, without_negatives):
        grouped = evaluator.split_reports(expander, attribute_regime)
        for regime, report in sorted(grouped.items()):
            rows.append(
                {
                    "method": expander.name,
                    "regime": regime,
                    "queries": report.num_queries,
                    "PosMAP avg": report.average_map("pos"),
                    "NegMAP avg": report.average_map("neg"),
                    "CombMAP avg": report.average_map("comb"),
                }
            )

    print("\nEffect of negative seeds per attribute regime:\n")
    print(format_table(rows))
    print(
        "\nReading: removing the negative-seed re-ranking raises NegMAP (more "
        "unwanted entities sneak in) and lowers CombMAP; the same-attribute "
        "regime is easier because P and N cannot overlap."
    )


if __name__ == "__main__":
    main()
