#!/usr/bin/env python
"""Scenario: compare every expansion method on the same queries.

Reproduces a miniature version of the paper's Table II on the tiny profile:
statistical baselines (SetExpan, CaSE), retrieval baselines (CGExpan,
ProbExpan), the GPT-4 prompt baseline, and the proposed RetExpan / GenExpan
with their enhancement strategies, sharing one set of fitted substrates.

Run with:  python examples/compare_methods.py
"""

from __future__ import annotations

from repro import (
    CGExpan,
    CaSE,
    DatasetConfig,
    Evaluator,
    GenExpan,
    GenExpanConfig,
    GPT4Expander,
    ProbExpan,
    RetExpan,
    RetExpanConfig,
    SetExpan,
    SharedResources,
    build_dataset,
    format_table,
)


def main() -> None:
    print("Building the tiny dataset and shared model resources ...")
    dataset = build_dataset(DatasetConfig.tiny(seed=13))
    resources = SharedResources(dataset)
    evaluator = Evaluator(dataset, max_queries=16)

    methods = [
        SetExpan(),
        CaSE(resources=resources),
        CGExpan(resources=resources),
        ProbExpan(resources=resources),
        GPT4Expander(resources=resources),
        RetExpan(resources=resources),
        RetExpan(
            RetExpanConfig(use_contrastive=True),
            resources=resources,
            contrastive_queries=evaluator.queries,
        ),
        GenExpan(
            GenExpanConfig(num_iterations=4, beam_width=16, selected_per_iteration=16),
            resources=resources,
        ),
        GenExpan(
            GenExpanConfig(
                num_iterations=4, beam_width=16, selected_per_iteration=16,
                cot_mode="gen_class_gen_pos",
            ),
            resources=resources,
        ),
    ]

    rows = []
    for method in methods:
        print(f"  evaluating {method.name} ...")
        report = evaluator.evaluate(method.fit(dataset))
        rows.append(
            {
                "method": report.method,
                "PosAvg": report.average("pos"),
                "NegAvg": report.average("neg"),
                "CombAvg": report.average("comb"),
                "CombMAP@10": report.value("comb", "map", 10),
            }
        )

    rows.sort(key=lambda row: -row["CombAvg"])
    print("\nResults (sorted by CombAvg, higher is better; Neg lower is better):\n")
    print(format_table(rows))


if __name__ == "__main__":
    main()
