#!/usr/bin/env python
"""Scenario: construct an UltraWiki-style dataset, inspect it, and save it.

Walks the four construction steps of Section IV-A on a custom configuration,
prints the Table-I-style statistics and the Figure-4-style intra/inter class
similarity summary, shows a few concrete ultra-fine-grained classes, and
persists the dataset to disk for reuse.

Run with:  python examples/build_and_inspect_dataset.py [output_dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import DatasetConfig, SharedResources, UltraWikiDataset, build_dataset, format_table
from repro.dataset.analysis import (
    compute_statistics,
    dataset_comparison_table,
    intra_inter_similarity,
)


def main() -> None:
    output_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("./ultrawiki_synthetic")

    config = DatasetConfig(
        seed=42,
        num_fine_classes=6,
        entities_per_class=120,
        num_distractors=300,
        sentences_per_entity=5.0,
        max_ultra_classes_per_fine_class=12,
    )
    print("Building a custom UltraWiki-style dataset (6 classes, ~1k entities) ...")
    dataset = build_dataset(config)
    print(f"  {dataset!r}\n")

    print("Table-I-style statistics:\n")
    print(format_table(dataset_comparison_table(dataset)))

    stats = compute_statistics(dataset)
    print(
        f"\nClass overlap fraction: {stats.class_overlap_fraction:.2f}  "
        f"(paper: ~0.99)  long-tail fraction: {stats.long_tail_fraction:.2f}"
    )

    print("\nThree example ultra-fine-grained classes:")
    for ultra in list(dataset.ultra_classes.values())[:3]:
        print(f"  {ultra.class_id}")
        print(f"    A_pos = {dict(ultra.positive_assignment)}")
        print(f"    A_neg = {dict(ultra.negative_assignment)}")
        positive_names = [dataset.entity(e).name for e in ultra.positive_entity_ids[:4]]
        negative_names = [dataset.entity(e).name for e in ultra.negative_entity_ids[:4]]
        print(f"    P (first 4 of {len(ultra.positive_entity_ids)}): {positive_names}")
        print(f"    N (first 4 of {len(ultra.negative_entity_ids)}): {negative_names}")

    print("\nFigure-4-style similarity summary (encoder representations) ...")
    resources = SharedResources(dataset)
    representations = resources.entity_representations(trained=True)
    summary = intra_inter_similarity(dataset, representations.hidden)
    print(
        f"  intra-fine-class similarity: {summary['intra']:.3f}   "
        f"inter-fine-class similarity: {summary['inter']:.3f}"
    )

    print(f"\nSaving the dataset to {output_dir} ...")
    dataset.save(output_dir)
    reloaded = UltraWikiDataset.load(output_dir)
    print(f"  reloaded: {reloaded!r}")


if __name__ == "__main__":
    main()
