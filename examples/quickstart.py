#!/usr/bin/env python
"""Quickstart: build a synthetic UltraWiki dataset, run RetExpan, evaluate.

This is the smallest end-to-end tour of the library:

1. build a ``tiny`` UltraWiki-style dataset (4 fine-grained classes);
2. pick one ultra-fine-grained query (positive + negative seed entities);
3. expand it with the retrieval-based RetExpan framework;
4. inspect the ranked entities and the Pos/Neg/Comb metrics.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    DatasetConfig,
    Evaluator,
    RetExpan,
    build_dataset,
)


def main() -> None:
    print("Building a tiny synthetic UltraWiki dataset ...")
    dataset = build_dataset(DatasetConfig.tiny(seed=13))
    print(f"  {dataset!r}\n")

    # Pick one query and show what the task input looks like.
    query = dataset.queries[0]
    ultra = dataset.ultra_class(query.class_id)
    print(f"Query {query.query_id}")
    print(f"  fine-grained class : {ultra.fine_class}")
    print(f"  positive attributes: {dict(ultra.positive_assignment)}")
    print(f"  negative attributes: {dict(ultra.negative_assignment)}")
    print("  positive seeds     :", [dataset.entity(e).name for e in query.positive_seed_ids])
    print("  negative seeds     :", [dataset.entity(e).name for e in query.negative_seed_ids])
    print()

    print("Fitting RetExpan (context encoder + entity prediction task) ...")
    expander = RetExpan().fit(dataset)

    result = expander.expand(query, top_k=15)
    positives = dataset.positive_targets(query)
    negatives = dataset.negative_targets(query)
    print("\nTop-15 expansion:")
    for rank, entity_id in enumerate(result.entity_ids(), start=1):
        entity = dataset.entity(entity_id)
        tag = "+" if entity_id in positives else ("-" if entity_id in negatives else " ")
        print(f"  {rank:>2} [{tag}] {entity.name}")

    print("\nEvaluating on a 12-query subsample ...")
    evaluator = Evaluator(dataset, max_queries=12)
    report = evaluator.evaluate(expander)
    for metric_type in ("pos", "neg", "comb"):
        print(
            f"  {metric_type.capitalize():<4} "
            f"MAP@10={report.value(metric_type, 'map', 10):6.2f}  "
            f"MAP@100={report.value(metric_type, 'map', 100):6.2f}  "
            f"Avg={report.average(metric_type):6.2f}"
        )


if __name__ == "__main__":
    main()
