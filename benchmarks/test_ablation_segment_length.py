"""Design-choice ablation: segment length ``l`` of segmented re-ranking.

The paper argues that re-ranking the whole expansion list by negative
similarity promotes noisy entities and that segment-wise re-ranking avoids
this.  This bench sweeps the segment length and checks that moderate segments
beat whole-list-scale segments on the combined metric.
"""

import pytest

from repro.config import RetExpanConfig
from repro.retexpan import RetExpan

SEGMENT_LENGTHS = (10, 20, 50, 200)


def _run_sweep(context):
    evaluator = context.evaluator(max_queries=context.max_queries)
    results = {}
    for segment_length in SEGMENT_LENGTHS:
        expander = RetExpan(
            RetExpanConfig(segment_length=segment_length),
            resources=context.resources,
            name=f"RetExpan(l={segment_length})",
        ).fit(context.dataset)
        results[segment_length] = evaluator.evaluate(expander)
    return results


def test_ablation_segment_length(benchmark, context):
    results = benchmark.pedantic(_run_sweep, args=(context,), rounds=1, iterations=1)
    comb = {length: report.average("comb") for length, report in results.items()}
    neg = {length: report.average("neg") for length, report in results.items()}
    print("\nsegment length -> CombAvg:", {k: round(v, 2) for k, v in comb.items()})
    print("segment length -> NegAvg :", {k: round(v, 2) for k, v in neg.items()})

    best_moderate = max(comb[10], comb[20], comb[50])
    # Whole-list re-ranking (l = expansion size) must not beat moderate segments.
    assert comb[200] <= best_moderate + 0.5
    # All configurations stay within a sane range.
    assert all(0.0 <= value <= 100.0 for value in comb.values())
