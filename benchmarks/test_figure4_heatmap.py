"""Figure 4 — semantic-similarity heatmap of ultra-fine-grained classes.

Shape to reproduce: the heatmap is block-diagonal — ultra-fine-grained
classes derived from the same fine-grained class are far more similar to each
other than to classes from other fine-grained classes.
"""

import numpy as np

from repro.experiments import figure4_heatmap


def test_figure4_heatmap(benchmark, context):
    output = benchmark.pedantic(
        figure4_heatmap.run, args=(context,), kwargs={"max_classes": 80}, rounds=1, iterations=1
    )
    print("\n" + output["text"])

    matrix = np.asarray(output["matrix"])
    assert matrix.shape[0] == len(output["class_ids"]) > 10
    assert np.allclose(np.diag(matrix), 1.0)
    assert np.allclose(matrix, matrix.T, atol=1e-8)

    # Block-diagonal structure: intra-fine-class similarity clearly exceeds
    # inter-fine-class similarity.
    assert output["intra_class_similarity"] > output["inter_class_similarity"] + 0.05

    # The sampled classes cover several fine-grained classes (the paper
    # samples proportionally across all ten).
    assert len(set(output["fine_classes"])) >= 5
