"""Table VI — semantic classes with different numbers of attributes.

Shape to reproduce: classes constrained by more attributes (|A_pos| = 2 or
|A_neg| = 2) have fewer matching targets, and tightening the negative
constraint pushes the Neg metrics down relative to the (1,1) configuration.
"""

from repro.experiments import table6_attribute_counts


def test_table6_attr_counts(benchmark, context):
    output = benchmark.pedantic(
        table6_attribute_counts.run, args=(context,), rounds=1, iterations=1
    )
    print("\n" + output["text"])
    assert output["rows"], "no attribute-cardinality groups found in the query budget"

    by_label = {row["(|Apos|, |Aneg|)"]: row for row in output["rows"]}
    # The (1,1) configuration dominates the dataset and must be present.
    assert "(1, 1)" in by_label
    for row in output["rows"]:
        # Metrics are sane percentages for every cardinality group.
        assert 0.0 <= row["PosAvg"] <= 100.0
        assert 0.0 <= row["NegAvg"] <= 100.0
        assert 0.0 <= row["CombAvg"] <= 100.0
    # Stricter negative constraints yield lower Neg intrusion than (1,1).
    if "(1, 2)" in by_label:
        assert by_label["(1, 2)"]["NegAvg"] <= by_label["(1, 1)"]["NegAvg"] + 1.0
