"""Gateway overhead and scatter-gather throughput over a 2-worker cluster.

Measures what the routing layer costs: the same deterministic expansion is
driven (a) straight at one worker over HTTP and (b) through the gateway in
front of two workers — the delta is pure gateway overhead (one extra proxy
hop, ring lookup, header copy).  A second pass measures batch scatter-gather
throughput, where the gateway fans one wire request out to both shards
concurrently.

The workers serve a cheap deterministic stub expander over the tiny dataset
so the numbers isolate the *serving fabric* — registry fits and model
scoring are benchmarked elsewhere (``test_serving_throughput``,
``test_store_warm_restore``).
"""

from __future__ import annotations

import time

from repro.client import ExpansionClient
from repro.cluster import ClusterConfig, ClusterGateway
from repro.config import DatasetConfig, ServiceConfig
from repro.core.base import Expander
from repro.dataset.builder import build_dataset
from repro.serve import ExpansionHTTPServer, ExpansionService
from repro.types import ExpansionResult

#: requests per measured pass.
GATEWAY_QUERY_BUDGET = 40

#: methods spread across the 2 shards by the consistent hash (six names are
#: enough that both shards own some for the tiny dataset's fingerprint).
METHODS = tuple(f"stub{letter}" for letter in "abcdef")


class _Stub(Expander):
    def __init__(self, salt: str):
        super().__init__()
        self.name = salt
        self.salt = sum(ord(ch) for ch in salt)

    def _expand(self, query, top_k):
        scored = [
            (eid, 1.0 / (1.0 + ((eid * 2654435761 + self.salt) % 4093)))
            for eid in self.candidate_ids(query)
        ]
        return ExpansionResult.from_scores(query.query_id, scored)


def _worker(dataset) -> ExpansionHTTPServer:
    service = ExpansionService(
        dataset,
        config=ServiceConfig(batch_wait_ms=0.0, port=0, cache_capacity=0),
        factories={m: (lambda _res, m=m: _Stub(m)) for m in METHODS},
    )
    return ExpansionHTTPServer(service, port=0).start()


def run_gateway_benchmark(num_queries: int = GATEWAY_QUERY_BUDGET) -> dict:
    dataset = build_dataset(DatasetConfig.tiny(seed=13))
    servers = [_worker(dataset) for _ in range(2)]
    gateway = ClusterGateway(
        [(f"worker-{i}", server.url) for i, server in enumerate(servers)],
        config=ClusterConfig(proxy_timeout_seconds=30.0),
        fingerprint=dataset.fingerprint(),
        port=0,
    ).start()
    queries = [q.query_id for q in dataset.queries[:10]]
    jobs = [
        (METHODS[i % len(METHODS)], queries[i % len(queries)])
        for i in range(num_queries)
    ]
    try:
        with ExpansionClient.connect(servers[0].url) as direct_client:
            # warm both paths once (fit + socket setup excluded from timing)
            direct_client.expand(METHODS[0], query_id=queries[0], top_k=20)
            started = time.perf_counter()
            for method, query_id in jobs:
                direct_client.expand(method, query_id=query_id, top_k=20, use_cache=False)
            direct_s = time.perf_counter() - started

        with ExpansionClient.connect(gateway.url) as gateway_client:
            gateway_client.expand(METHODS[0], query_id=queries[0], top_k=20)
            started = time.perf_counter()
            for method, query_id in jobs:
                gateway_client.expand(method, query_id=query_id, top_k=20, use_cache=False)
            routed_s = time.perf_counter() - started

            batch = [
                {
                    "method": method,
                    "query_id": query_id,
                    "options": {"top_k": 20, "use_cache": False},
                }
                for method, query_id in jobs
            ]
            started = time.perf_counter()
            results = gateway_client.expand_batch(batch)
            batch_s = time.perf_counter() - started
        gateway_stats = gateway.stats()
    finally:
        gateway.shutdown()
        for server in servers:
            server.shutdown()
    assert all(not isinstance(result, Exception) for result in results)
    return {
        "num_queries": num_queries,
        "direct_qps": num_queries / direct_s,
        "routed_qps": num_queries / routed_s,
        "batch_qps": num_queries / batch_s,
        "overhead_ms": (routed_s - direct_s) / num_queries * 1000.0,
        "gateway_stats": gateway_stats,
    }


def test_gateway_routing_overhead(benchmark):
    result = benchmark.pedantic(run_gateway_benchmark, rounds=1, iterations=1)
    print(
        f"\ngateway fabric over {result['num_queries']} requests: "
        f"direct {result['direct_qps']:.1f} q/s, "
        f"routed {result['routed_qps']:.1f} q/s "
        f"({result['overhead_ms']:+.2f} ms/request), "
        f"scatter-gather batch {result['batch_qps']:.1f} items/s"
    )
    stats = result["gateway_stats"]
    # every shard served traffic and nothing failed over or went unrouted
    assert all(count > 0 for count in stats["routed"].values())
    assert stats["failovers"] == 0
    assert stats["no_backend_available"] == 0
    # the proxy hop must stay cheap: well under 25 ms per request even on
    # busy CI machines (typically < 2 ms)
    assert result["overhead_ms"] < 25.0
