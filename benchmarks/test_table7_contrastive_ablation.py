"""Table VII — ablation of the contrastive-learning training data.

Shape to reproduce: full contrastive training beats plain RetExpan, and
removing any of the three pair types (hard negatives, normal negatives,
intra-list positives) does not improve over the full configuration.
"""

from repro.experiments import table7_contrastive_ablation


def test_table7_contrastive_ablation(benchmark, context):
    output = benchmark.pedantic(
        table7_contrastive_ablation.run, args=(context,), rounds=1, iterations=1
    )
    print("\n" + output["text"])
    comb = output["comb_map_avg"]
    print("CombMAP avg:", {k: round(v, 2) for k, v in comb.items()})

    full = comb["RetExpan + Contrast"]
    base = comb["RetExpan"]
    # Contrastive learning improves over plain RetExpan.
    assert full >= base - 0.25
    # No ablated variant beats the full training data by a meaningful margin.
    for name, value in comb.items():
        if name in ("RetExpan", "RetExpan + Contrast"):
            continue
        assert value <= full + 1.0, name
