"""Table V — identical vs different positive/negative attributes.

Shape to reproduce: queries whose positive and negative attributes coincide
(A_pos = A_neg) are easier than queries with different attributes, and
contrastive learning does not hurt on either split.
"""

from repro.experiments import table5_attribute_overlap


def test_table5_attr_overlap(benchmark, context):
    output = benchmark.pedantic(
        table5_attribute_overlap.run, args=(context,), rounds=1, iterations=1
    )
    print("\n" + output["text"])
    summary = output["comb_map_avg"]
    print("CombMAP avg per split:", summary)

    assert "same" in summary and "diff" in summary
    # Same-attribute classes have disjoint P and N, which makes them easier.
    assert summary["same"]["RetExpan"] >= summary["diff"]["RetExpan"] - 1.0
    # Contrastive learning does not hurt on either split.
    for split in ("same", "diff"):
        assert (
            summary[split]["RetExpan + Contrast"] >= summary[split]["RetExpan"] - 1.0
        ), split
