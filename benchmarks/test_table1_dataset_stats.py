"""Table I — comparison of ESE datasets.

Regenerates the dataset-statistics comparison and checks the shape claims:
UltraWiki-style data has far more (ultra-fine-grained) semantic classes than
prior benchmarks, provides negative seeds and attribute annotations, and its
classes overlap heavily.
"""

from repro.experiments import table1_dataset


def test_table1_dataset_stats(benchmark, context):
    output = benchmark.pedantic(
        table1_dataset.run, args=(context,), rounds=1, iterations=1
    )
    print("\n" + output["text"])

    rows = {row["dataset"]: row for row in output["rows"]}
    ours = next(rows[name] for name in rows if name.startswith("UltraWiki (this repo"))
    prior = [rows[name] for name in ("Wiki", "APR", "CoNLL", "OntoNotes")]

    # Shape: many more semantic classes than any prior ESE dataset.
    assert ours["semantic_classes"] > max(row["semantic_classes"] for row in prior)
    # Shape: only the UltraWiki rows provide negative seeds and attributes.
    assert ours["neg_seeds_per_query"] != "N/A"
    assert ours["entity_attribution"] is True
    assert all(row["entity_attribution"] is False for row in prior)

    stats = output["statistics"]
    # Paper: each class has 3 queries with 3-5 positive and negative seeds.
    assert stats["queries_per_class"] == 3.0
    assert 3.0 <= stats["avg_positive_seeds"] <= 5.0
    assert 3.0 <= stats["avg_negative_seeds"] <= 5.0
    # Paper: ~99% of ultra-fine-grained classes overlap with a sibling class.
    assert stats["class_overlap_fraction"] > 0.9
