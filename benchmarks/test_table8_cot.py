"""Table VIII — chain-of-thought reasoning depth and precision.

Shapes to reproduce:

* reasoning about positive attributes helps over class-name-only reasoning;
* ground-truth positive attributes are at least as good as generated ones;
* generated *negative* attributes do not help over generated positives alone;
* ground-truth positive + negative attributes is the best configuration.
"""

from repro.experiments import table8_cot


def test_table8_cot(benchmark, context):
    output = benchmark.pedantic(
        table8_cot.run, args=(context,), rounds=1, iterations=1
    )
    print("\n" + output["text"])
    comb = output["comb_map_avg"]
    print("CombMAP avg (paper):", output["paper_comb_map_avg"])

    base = comb["GenExpan"]
    gen_pos = comb["GenExpan + CoT (Gen CN & Gen Pos)"]
    gt_pos = comb["GenExpan + CoT (Gen CN & GT Pos)"]
    gen_neg = comb["GenExpan + CoT (Gen CN & Gen Pos & Gen Neg)"]
    gt_full = comb["GenExpan + CoT (Gen CN & GT Pos & GT Neg)"]

    # Attribute-level reasoning helps over no reasoning.
    assert gen_pos >= base - 0.5
    # Ground-truth positive attributes are at least as good as generated ones.
    assert gt_pos >= gen_pos - 0.5
    # Generated negative attributes are the hardest reasoning step and do not
    # improve over generated positives alone.
    assert gen_neg <= gen_pos + 1.0
    # Ground-truth positive + negative reasoning is the best configuration.
    assert gt_full >= max(comb.values()) - 0.75
