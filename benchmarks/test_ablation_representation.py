"""Design-choice ablation: hidden-state vs probability-distribution entity
representations.

Section VI-B(2) attributes the RetExpan-vs-ProbExpan gap to the entity
representation: the continuous hidden state carries finer-grained semantics
than the discrete probability distribution over candidate entities.  Both
representations come from the same trained encoder here, so the comparison
isolates exactly that design choice.
"""

from repro.baselines import ProbExpan
from repro.retexpan import RetExpan


def _run_comparison(context):
    evaluator = context.evaluator(max_queries=context.max_queries)
    hidden = evaluator.evaluate(RetExpan(resources=context.resources).fit(context.dataset))
    distribution = evaluator.evaluate(
        ProbExpan(resources=context.resources, use_negative_rerank=True).fit(context.dataset)
    )
    return hidden, distribution


def test_ablation_representation(benchmark, context):
    hidden, distribution = benchmark.pedantic(
        _run_comparison, args=(context,), rounds=1, iterations=1
    )
    print(
        f"\nhidden-state CombAvg={hidden.average('comb'):.2f} "
        f"PosAvg={hidden.average('pos'):.2f} | "
        f"distribution CombAvg={distribution.average('comb'):.2f} "
        f"PosAvg={distribution.average('pos'):.2f}"
    )
    # The hidden-state representation wins on both Pos and Comb, even when the
    # distribution variant also gets the negative-seed re-ranking module.
    assert hidden.average("pos") > distribution.average("pos")
    assert hidden.average("comb") > distribution.average("comb")
