"""Hot-path latency: ANN vs full scan, batched LM scoring, gateway cache.

Pins the PR's speedups as CI numbers instead of claims:

* **ANN candidate retrieval** — probed shortlist + exact rescore against
  the full-vocabulary scan on a 100k-entity synthetic vocabulary (larger
  than any dataset profile the suite builds), asserting the probed path is
  >= 5x faster while recall@50 against the exact ranking stays >= 0.98;
* **batched LM conditional similarity** — ``conditional_similarity_batch``
  (one memoised pass over all candidates x seeds) against the sequential
  per-pair loop, asserting >= 3x with bitwise-identical scores;
* **gateway result cache** — a repeated request served from the gateway's
  LRU against the proxied worker round trip over real sockets.

Every test appends its numbers to ``BENCH_hotpath.json`` at the repo root
(p50/p99 per-query latency, queries/sec) so future PRs can diff the
trajectory.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.client import ExpansionClient
from repro.cluster import ClusterConfig, ClusterGateway
from repro.config import DatasetConfig, ServiceConfig
from repro.core.base import Expander
from repro.dataset.builder import build_dataset
from repro.retrieval import CandidateMatrix, PartitionedIndex, RetrievalProfile
from repro.serve import ExpansionHTTPServer, ExpansionService
from repro.types import ExpansionResult

#: synthetic retrieval workload — a vocabulary well past every dataset
#: profile, clustered the way entity representations cluster by class.
VOCABULARY_SIZE = 100_000
VECTOR_DIM = 96
CLUSTER_COUNT = 512
QUERY_BUDGET = 30
TOP_K = 50

#: the probed operating point asserted in CI (recall is asserted alongside,
#: so the knob cannot silently trade quality for the speedup number).
BENCH_NPROBE = 4

#: regression guards from the issue's acceptance criteria.
MIN_ANN_SPEEDUP = 5.0
MIN_ANN_RECALL = 0.98
MIN_LM_BATCH_SPEEDUP = 3.0

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"


def _record(section: str, payload: dict) -> None:
    """Merge one section into the ``BENCH_hotpath.json`` snapshot."""
    data: dict = {}
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except ValueError:
            data = {}
    data[section] = payload
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _percentiles(seconds: list[float]) -> dict:
    values = np.asarray(seconds) * 1000.0
    return {
        "p50_ms": float(np.percentile(values, 50)),
        "p99_ms": float(np.percentile(values, 99)),
        "qps": float(len(values) / max(sum(seconds), 1e-12)),
    }


# ---------------------------------------------------------------------------
# 1. ANN probed retrieval vs the exact full-vocabulary scan
# ---------------------------------------------------------------------------


def _build_workload():
    rng = np.random.default_rng(13)
    centers = rng.normal(size=(CLUSTER_COUNT, VECTOR_DIM)) * 3.0
    assignment = rng.integers(0, CLUSTER_COUNT, size=VOCABULARY_SIZE)
    rows = (
        centers[assignment]
        + rng.normal(size=(VOCABULARY_SIZE, VECTOR_DIM)) * 0.4
    )
    vectors = {i: rows[i] for i in range(VOCABULARY_SIZE)}
    matrix = CandidateMatrix.from_vectors(vectors, normalize=True)
    matrix.attach_index(
        PartitionedIndex.build(matrix.matrix, matrix.ids, seed=0, iterations=3)
    )
    # seed-set queries: the mean vector of a few same-cluster entities, the
    # same probe query the expanders build from a request's positive seeds.
    queries = []
    for _ in range(QUERY_BUDGET):
        members = np.flatnonzero(assignment == rng.integers(0, CLUSTER_COUNT))
        picks = rng.choice(members, size=3, replace=False)
        queries.append((matrix.matrix[picks].mean(axis=0), picks.tolist()))
    return matrix, queries


def _exact_top_k(matrix, query, seeds):
    scores = matrix.matrix @ query
    scores[seeds] = -np.inf
    top = np.argpartition(-scores, TOP_K)[:TOP_K]
    return top[np.argsort(-scores[top])].tolist()


def _ann_top_k(matrix, query, seeds, profile):
    shortlist = matrix.shortlist(
        None, query, profile, required=TOP_K + len(seeds), exclude=seeds
    )
    scores = matrix.rows(shortlist) @ query
    top = np.argpartition(-scores, min(TOP_K, len(shortlist) - 1))[:TOP_K]
    return [shortlist[i] for i in top[np.argsort(-scores[top])]]


def run_ann_benchmark() -> dict:
    matrix, queries = _build_workload()
    profile = RetrievalProfile(ann="on", nprobe=BENCH_NPROBE)
    _exact_top_k(matrix, *queries[0])
    _ann_top_k(matrix, *queries[0], profile)  # warm both paths

    exact_times, exact_results = [], []
    for query, seeds in queries:
        started = time.perf_counter()
        exact_results.append(_exact_top_k(matrix, query, seeds))
        exact_times.append(time.perf_counter() - started)

    ann_times, ann_results = [], []
    for query, seeds in queries:
        started = time.perf_counter()
        ann_results.append(_ann_top_k(matrix, query, seeds, profile))
        ann_times.append(time.perf_counter() - started)

    recalls = [
        len(set(exact) & set(ann)) / TOP_K
        for exact, ann in zip(exact_results, ann_results)
    ]
    return {
        "vocabulary": VOCABULARY_SIZE,
        "dim": VECTOR_DIM,
        "nprobe": BENCH_NPROBE,
        "top_k": TOP_K,
        "exact": _percentiles(exact_times),
        "ann": _percentiles(ann_times),
        "speedup": sum(exact_times) / sum(ann_times),
        "recall": float(np.mean(recalls)),
    }


def test_ann_vs_full_scan(benchmark):
    result = benchmark.pedantic(run_ann_benchmark, rounds=1, iterations=1)
    print(
        f"\nann retrieval over {result['vocabulary']} x {result['dim']} vocabulary: "
        f"exact p50 {result['exact']['p50_ms']:.2f} ms, "
        f"ann p50 {result['ann']['p50_ms']:.2f} ms "
        f"({result['speedup']:.1f}x, recall@{result['top_k']} {result['recall']:.3f}, "
        f"nprobe={result['nprobe']})"
    )
    _record("ann_retrieval", result)
    assert result["recall"] >= MIN_ANN_RECALL
    assert result["speedup"] >= MIN_ANN_SPEEDUP, (
        f"ANN-probed retrieval is only {result['speedup']:.1f}x the full scan "
        f"(needs >= {MIN_ANN_SPEEDUP}x)"
    )


# ---------------------------------------------------------------------------
# 2. batched vs sequential LM conditional similarity
# ---------------------------------------------------------------------------

#: candidates x seeds scored per pass (GenExpan's per-query shape).
LM_CANDIDATES = 80
LM_SEEDS = 4


def run_lm_benchmark(context) -> dict:
    lm = context.resources.causal_lm(further_pretrain=False)
    ids = context.dataset.entity_ids()
    generated = ids[:LM_CANDIDATES]
    seeds = ids[LM_CANDIDATES:LM_CANDIDATES + LM_SEEDS]

    lm.conditional_similarity_batch(generated[:4], seeds)  # warm caches

    started = time.perf_counter()
    sequential = {
        gid: sum(lm.conditional_similarity(gid, sid) for sid in seeds) / len(seeds)
        for gid in generated
    }
    sequential_s = time.perf_counter() - started

    started = time.perf_counter()
    batched = lm.conditional_similarity_batch(generated, seeds)
    batched_s = time.perf_counter() - started

    assert batched == sequential, "batched scoring must be bitwise identical"
    return {
        "candidates": len(generated),
        "seeds": len(seeds),
        "sequential_s": sequential_s,
        "batched_s": batched_s,
        "sequential_pairs_per_s": len(generated) * len(seeds) / sequential_s,
        "batched_pairs_per_s": len(generated) * len(seeds) / batched_s,
        "speedup": sequential_s / batched_s,
    }


def test_batched_lm_scoring(benchmark, context):
    result = benchmark.pedantic(
        run_lm_benchmark, args=(context,), rounds=1, iterations=1
    )
    print(
        f"\nconditional similarity over {result['candidates']} candidates x "
        f"{result['seeds']} seeds: sequential {result['sequential_pairs_per_s']:.0f} "
        f"pairs/s, batched {result['batched_pairs_per_s']:.0f} pairs/s "
        f"({result['speedup']:.1f}x)"
    )
    _record("lm_batch_scoring", result)
    assert result["speedup"] >= MIN_LM_BATCH_SPEEDUP, (
        f"batched LM scoring is only {result['speedup']:.1f}x sequential "
        f"(needs >= {MIN_LM_BATCH_SPEEDUP}x)"
    )


# ---------------------------------------------------------------------------
# 3. gateway result cache round trip
# ---------------------------------------------------------------------------

GATEWAY_QUERY_BUDGET = 30


class _Stub(Expander):
    """A near-free deterministic expander so the numbers isolate the fabric."""

    def __init__(self, salt: str):
        super().__init__()
        self.name = salt
        self.salt = sum(ord(ch) for ch in salt)

    def _expand(self, query, top_k):
        scored = [
            (eid, 1.0 / (1.0 + ((eid * 2654435761 + self.salt) % 4093)))
            for eid in self.candidate_ids(query)
        ]
        return ExpansionResult.from_scores(query.query_id, scored)


def run_gateway_cache_benchmark() -> dict:
    dataset = build_dataset(DatasetConfig.tiny(seed=13))
    methods = tuple(f"stub{letter}" for letter in "abcdef")
    service = ExpansionService(
        dataset,
        config=ServiceConfig(batch_wait_ms=0.0, port=0, cache_capacity=0),
        factories={m: (lambda _res, m=m: _Stub(m)) for m in methods},
    )
    server = ExpansionHTTPServer(service, port=0).start()
    gateway = ClusterGateway(
        [("worker-0", server.url)],
        config=ClusterConfig(
            proxy_timeout_seconds=30.0,
            gateway_cache_capacity=512,
            gateway_cache_ttl_seconds=300.0,
        ),
        fingerprint=dataset.fingerprint(),
        port=0,
    ).start()
    queries = [q.query_id for q in dataset.queries[:10]]
    jobs = [
        (methods[i % len(methods)], queries[i % len(queries)])
        for i in range(GATEWAY_QUERY_BUDGET)
    ]
    try:
        with ExpansionClient.connect(gateway.url) as client:
            miss_times = []
            for method, query_id in jobs:  # first pass fills the cache
                started = time.perf_counter()
                client.expand(method, query_id=query_id, top_k=20)
                miss_times.append(time.perf_counter() - started)
            hit_times = []
            for method, query_id in jobs:
                started = time.perf_counter()
                result = client.expand(method, query_id=query_id, top_k=20)
                hit_times.append(time.perf_counter() - started)
                assert result.cached, "second pass must be a gateway hit"
        cache_stats = gateway.stats()["cache"]
    finally:
        gateway.shutdown()
        server.shutdown()
    return {
        "requests": len(jobs),
        "proxied": _percentiles(miss_times),
        "cache_hit": _percentiles(hit_times),
        "speedup": sum(miss_times) / sum(hit_times),
        "hits": cache_stats["hits"],
    }


def test_gateway_cache_round_trip(benchmark):
    result = benchmark.pedantic(run_gateway_cache_benchmark, rounds=1, iterations=1)
    print(
        f"\ngateway round trip over {result['requests']} requests: "
        f"proxied p50 {result['proxied']['p50_ms']:.2f} ms "
        f"({result['proxied']['qps']:.0f} q/s), cache hit p50 "
        f"{result['cache_hit']['p50_ms']:.2f} ms "
        f"({result['cache_hit']['qps']:.0f} q/s, {result['speedup']:.1f}x)"
    )
    _record("gateway_cache", result)
    assert result["hits"] >= result["requests"]
    # a hit skips the worker round trip entirely; it must not be slower.
    assert sum(result["cache_hit"].values()) > 0
    assert result["cache_hit"]["p50_ms"] <= result["proxied"]["p50_ms"]
