"""Fine-grained-class-level recall analysis (paper Section VI-B(4)).

The paper explains the statistical baselines' uniformly low scores by
measuring MAP at the fine-grained class level: CaSE reaches only 21.43
MAP@100 against fine-grained membership while RetExpan reaches 82.08.  This
bench reproduces that diagnostic comparison.
"""

from repro.baselines import SetExpan
from repro.eval.fine_grained import evaluate_fine_grained
from repro.retexpan import RetExpan


def _run(context):
    queries = context.evaluator(max_queries=context.max_queries).queries
    retexpan = evaluate_fine_grained(
        RetExpan(resources=context.resources), context.dataset, queries=queries
    )
    setexpan = evaluate_fine_grained(
        SetExpan(), context.dataset, queries=queries
    )
    return retexpan, setexpan


def test_fine_grained_recall(benchmark, context):
    retexpan, setexpan = benchmark.pedantic(_run, args=(context,), rounds=1, iterations=1)
    print(
        f"\nfine-grained MAP@100: RetExpan={retexpan.value('map', 100):.2f} "
        f"SetExpan={setexpan.value('map', 100):.2f} "
        f"(paper: RetExpan 82.08 vs CaSE 21.43)"
    )
    # On the real Wikipedia-scale candidate pool the statistical baselines
    # fail to recall the fine-grained class (paper: 21.43 MAP@100 for CaSE);
    # on the synthetic corpus the class signal is strong enough that both
    # methods recall it, so the assertions check that the proposed framework
    # recalls the class essentially perfectly and never trails the baseline.
    assert retexpan.value("map", 100) >= setexpan.value("map", 100) - 1.0
    assert retexpan.value("map", 100) > 80.0
    assert retexpan.value("map", 10) >= setexpan.value("map", 10) - 1.0
