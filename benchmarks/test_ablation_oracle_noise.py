"""Design-choice ablation: oracle (GPT-4 substitute) noise level.

The contrastive training lists ``L_pos`` / ``L_neg`` are mined by the noisy
oracle; the paper notes that label noise limits how hard the hard-negative
pairs can be pushed.  This bench compares mining with a clean oracle against
mining with a very noisy one and checks that more noise never helps.
"""

from repro.config import ContrastiveConfig, OracleConfig, RetExpanConfig
from repro.kb.schema import default_schemas
from repro.lm.oracle import OracleLLM
from repro.retexpan import RetExpan
from repro.retexpan.contrastive import UltraContrastiveLearner


def _evaluate_with_oracle(context, oracle_config: OracleConfig):
    dataset = context.dataset
    evaluator = context.evaluator(max_queries=context.max_queries)
    attribute_values = {
        fc.name: {a: tuple(v) for a, v in fc.attributes.items()}
        for fc in dataset.fine_classes.values()
    }
    descriptions = {
        schema.name: schema.description
        for schema in default_schemas()
        if schema.name in dataset.fine_classes
    }
    oracle = OracleLLM(dataset.entities(), attribute_values, oracle_config, descriptions)

    learner = UltraContrastiveLearner(ContrastiveConfig())
    learner.fit(
        dataset,
        context.resources.entity_representations(True),
        oracle,
        queries=evaluator.queries,
    )
    # Build a plain RetExpan (cheap fit) and attach the learner trained with
    # the requested oracle, so only the mining oracle differs between runs.
    expander = RetExpan(
        RetExpanConfig(),
        resources=context.resources,
        name=f"RetExpan+Contrast(err={oracle_config.base_error_rate})",
    )
    expander.fit(dataset)
    expander._contrastive = learner
    return evaluator.evaluate(expander)


def _run(context):
    clean = _evaluate_with_oracle(
        context, OracleConfig(base_error_rate=0.02, long_tail_error_rate=0.1)
    )
    noisy = _evaluate_with_oracle(
        context, OracleConfig(base_error_rate=0.4, long_tail_error_rate=0.5)
    )
    return clean, noisy


def test_ablation_oracle_noise(benchmark, context):
    clean, noisy = benchmark.pedantic(_run, args=(context,), rounds=1, iterations=1)
    print(
        f"\nclean-oracle mining CombAvg={clean.average('comb'):.2f} | "
        f"noisy-oracle mining CombAvg={noisy.average('comb'):.2f}"
    )
    # Noisier mined lists must not outperform cleaner ones.
    assert noisy.average("comb") <= clean.average("comb") + 1.0
