"""Table II — main results on UltraWiki.

Runs every compared method and prints the Pos / Neg / Comb MAP & P rows.
Absolute values differ from the paper (synthetic corpus, numpy substrates),
but the headline shape must hold:

* the proposed RetExpan / GenExpan families beat the prior baselines on Comb;
* the enhancement strategies (+ Contrast, + CoT) do not hurt their bases;
* the statistical baseline SetExpan is the weakest method.
"""

from repro.experiments import table2_main


def test_table2_main_results(benchmark, context):
    output = benchmark.pedantic(
        table2_main.run, args=(context,), rounds=1, iterations=1
    )
    print("\n" + output["text"])
    comb = output["comb_avg"]
    print("CombAvg (this run):", {k: round(v, 2) for k, v in comb.items()})
    print("CombAvg (paper)   :", output["paper_comb_avg"])

    # Proposed retrieval framework beats every retrieval / statistical baseline.
    for baseline in ("SetExpan", "CaSE", "CGExpan", "ProbExpan"):
        assert comb["RetExpan"] > comb[baseline], baseline
    # The proposed frameworks are at least competitive with the GPT-4 prompt baseline.
    assert max(comb["RetExpan"], comb["RetExpan + Contrast"]) >= comb["GPT4"]
    assert comb["GenExpan"] >= comb["GPT4"] - 2.0
    # Enhancement strategies help (or at worst are neutral).
    assert comb["RetExpan + Contrast"] >= comb["RetExpan"] - 0.5
    assert comb["GenExpan + CoT"] >= comb["GenExpan"] - 0.5
    # The statistical baseline trails everything else.
    assert comb["SetExpan"] == min(comb.values())
    # GPT-4 beats the probability- and distribution-based baselines (paper shape).
    assert comb["GPT4"] > comb["SetExpan"]
    assert comb["GPT4"] > comb["ProbExpan"]
