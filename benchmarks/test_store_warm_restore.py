"""Warm restart — cold `fit` vs artifact-store restore for RetExpan.

The artifact store (:mod:`repro.store`) exists so that process restarts and
sibling workers never repeat an expander fit.  This benchmark measures the
claim directly: one cold fit (context encoder training, entity
representations, write-through to disk) against one warm restore of the same
state in a fresh registry, and asserts the restore is measurably faster.

A dedicated ``tiny`` dataset is built instead of reusing the session-scoped
small context: the cold path must pay the full substrate cost, which the
shared context has already amortised.
"""

from __future__ import annotations

import time

from repro.config import DatasetConfig
from repro.dataset.builder import build_dataset
from repro.serve import ExpanderRegistry
from repro.store import ArtifactStore

#: restore must beat the cold fit by at least this factor; the observed gap
#: is ~50x, so 2x keeps the assertion robust on noisy CI machines.
MIN_SPEEDUP = 2.0


def run_warm_restore_benchmark(tmp_dir) -> dict:
    dataset = build_dataset(DatasetConfig.tiny(seed=13))
    store = ArtifactStore(tmp_dir)
    fingerprint = dataset.fingerprint()

    cold_registry = ExpanderRegistry(dataset, store=store)
    started = time.perf_counter()
    cold = cold_registry.get("retexpan")  # fit + write-through
    cold_s = time.perf_counter() - started

    warm_registry = ExpanderRegistry(dataset, store=store)
    started = time.perf_counter()
    warm = warm_registry.get("retexpan")  # restore, no fit
    warm_s = time.perf_counter() - started

    query = dataset.queries[0]
    cold_ranking = [item.entity_id for item in cold.expand(query, 20).ranking]
    warm_ranking = [item.entity_id for item in warm.expand(query, 20).ranking]
    return {
        "cold_fit_s": cold_s,
        "warm_restore_s": warm_s,
        "speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
        "rankings_match": cold_ranking == warm_ranking,
        "cold_stats": cold_registry.stats(),
        "warm_stats": warm_registry.stats(),
        "artifact_bytes": store.stats()["total_bytes"],
    }


def test_warm_restore_beats_cold_fit(benchmark, tmp_path):
    result = benchmark.pedantic(
        run_warm_restore_benchmark, args=(tmp_path,), rounds=1, iterations=1
    )
    print(
        f"\nretexpan cold fit {result['cold_fit_s']:.2f}s vs warm restore "
        f"{result['warm_restore_s']:.3f}s ({result['speedup']:.0f}x, "
        f"artifact {result['artifact_bytes'] / 1e6:.1f} MB)"
    )
    # The cold pass fitted and persisted; the warm pass only restored.
    assert result["cold_stats"]["fits"] == 1
    assert result["cold_stats"]["store"]["write_throughs"] == 1
    assert result["warm_stats"]["fits"] == 0
    assert result["warm_stats"]["store"]["restore_hits"] == 1
    # Restoring serves the same model: identical rankings, much faster.
    assert result["rankings_match"]
    assert result["warm_restore_s"] * MIN_SPEEDUP < result["cold_fit_s"]
