"""Figure 7 — case study of GenExpan vs GenExpan + CoT.

Regenerates the annotated ranked lists for one query.  Shape to reproduce:
both methods mostly stay inside the seed entities' fine-grained class (few
un-annotated rows), and positive target entities (+++) appear in the lists.
"""

from repro.experiments import figure7_case_study


def test_figure7_case_study(benchmark, context):
    output = benchmark.pedantic(
        figure7_case_study.run, args=(context,), kwargs={"top_k": 35}, rounds=1, iterations=1
    )
    print("\n" + output["text"])

    for method, listing in output["listings"].items():
        assert listing, method
        annotations = [item["annotation"] for item in listing]
        positives = annotations.count("+++")
        out_of_class = annotations.count("   ")
        # The expansion finds genuine positive targets...
        assert positives > 0, method
        # ...and rarely strays outside the seed entities' fine-grained class.
        assert out_of_class <= len(annotations) // 4, method
