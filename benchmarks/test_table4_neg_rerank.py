"""Table IV — effect of entity re-ranking with negative seed entities.

Shape to reproduce: for ProbExpan, RetExpan and GenExpan alike, adding the
negative-seed re-ranking module lowers (or leaves unchanged) the Neg metrics
and does not degrade the Comb metrics.
"""

from repro.experiments import table4_neg_rerank


def test_table4_neg_rerank(benchmark, context):
    output = benchmark.pedantic(
        table4_neg_rerank.run, args=(context,), rounds=1, iterations=1
    )
    print("\n" + output["text"])
    deltas = output["deltas"]
    print("Deltas (with re-ranking minus without):", deltas)

    for method, delta in deltas.items():
        # Negative intrusion must not grow when negatives are used for re-ranking.
        assert delta["neg"] <= 0.5, method
        # The combined metric must not get worse.
        assert delta["comb"] >= -0.5, method
    # At least one framework shows a clear combined-metric gain.
    assert max(delta["comb"] for delta in deltas.values()) > 0.0
