"""Table III — module ablations for RetExpan and GenExpan.

Shape to reproduce: removing any module lowers the CombMAP average, and the
prefix constraint is by far the most damaging removal for GenExpan.
"""

from repro.experiments import table3_ablation_modules


def test_table3_module_ablation(benchmark, context):
    output = benchmark.pedantic(
        table3_ablation_modules.run, args=(context,), rounds=1, iterations=1
    )
    print("\n" + output["text"])
    comb = output["comb_map_avg"]
    print("CombMAP avg (paper):", output["paper_comb_map_avg"])

    # Every ablation hurts its base framework.
    assert comb["RetExpan - Entity prediction"] < comb["RetExpan"]
    assert comb["GenExpan - Prefix constrain"] < comb["GenExpan"]
    assert comb["GenExpan - Further pretrain"] < comb["GenExpan"]
    # The prefix constraint is the single most important GenExpan module.
    assert comb["GenExpan - Prefix constrain"] <= comb["GenExpan - Further pretrain"] + 2.0
