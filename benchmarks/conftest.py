"""Shared fixtures for the benchmark harness.

The benchmarks reproduce every table and figure of the paper's evaluation on
the ``small`` synthetic profile.  Building the dataset and fitting the shared
substrates takes tens of seconds, so a single :class:`ExperimentContext` is
shared across the whole benchmark session.

Query budgets: retrieval-style methods are evaluated on 30 queries and
generation-style methods on 12 (beam search is per-query and slower); the
budgets can be raised for closer-to-paper runs by editing the fixture.
"""

from __future__ import annotations

import pytest

from repro.config import DatasetConfig
from repro.experiments.runner import ExperimentContext

#: evaluation budgets used throughout the benchmark suite.
RETRIEVAL_QUERY_BUDGET = 30
GENERATION_QUERY_BUDGET = 12


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    return ExperimentContext(
        dataset_config=DatasetConfig.small(seed=13),
        max_queries=RETRIEVAL_QUERY_BUDGET,
        genexpan_max_queries=GENERATION_QUERY_BUDGET,
    )
