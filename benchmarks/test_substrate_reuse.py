"""Substrate reuse — the fit-time and memory win of the shared layer.

Before the substrate layer every embeddings-backed method refitted the
PPMI-SVD co-occurrence embeddings privately, and a process holding all seven
methods held up to seven private substrate copies.  This benchmark measures
both claims directly:

* **fit time** — fitting the *second* embeddings-backed method (CaSE after
  CGExpan) on a shared pool skips the substrate entirely (provider fit
  counter stays at 1) and is faster than fitting it cold on a private pool;
* **memory (RSS proxy)** — with every registered method loaded in one
  registry, the provider holds exactly three substrate instances (one
  co-occurrence embedding set, one entity-representations set, one causal
  LM) instead of one private copy per method.

A dedicated ``tiny`` dataset is built instead of reusing the session-scoped
small context: the cold path must pay the full substrate cost, which the
shared context has already amortised.
"""

from __future__ import annotations

import time

from repro.config import DatasetConfig
from repro.core.resources import SharedResources
from repro.dataset.builder import build_dataset
from repro.serve import ExpanderRegistry
from repro.serve.registry import DEFAULT_FACTORIES


def run_substrate_reuse_benchmark() -> dict:
    dataset = build_dataset(DatasetConfig.tiny(seed=13))

    # Cold: a private pool pays the co-occurrence fit inside the method fit.
    cold_pool = SharedResources(dataset)
    started = time.perf_counter()
    DEFAULT_FACTORIES["case"](cold_pool).fit(dataset)
    cold_s = time.perf_counter() - started

    # Warm: CGExpan pays the substrate once, then CaSE reuses it.
    shared_pool = SharedResources(dataset)
    DEFAULT_FACTORIES["cgexpan"](shared_pool).fit(dataset)
    started = time.perf_counter()
    DEFAULT_FACTORIES["case"](shared_pool).fit(dataset)
    warm_s = time.perf_counter() - started
    shared_stats = shared_pool.provider.stats()

    # RSS proxy: all methods resident, substrate instances counted once each.
    registry = ExpanderRegistry(dataset)
    for method in registry.methods():
        registry.get(method)
    resident = registry.resources.provider.resident_count()

    return {
        "cold_second_method_fit_s": cold_s,
        "warm_second_method_fit_s": warm_s,
        "speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
        "substrate_fits_after_two_methods": shared_stats["fits"],
        "substrate_hits_after_two_methods": shared_stats["hits"],
        "resident_substrates_all_methods": resident,
        "methods_loaded": len(registry.methods()),
    }


def test_substrate_reuse_skips_the_second_fit(benchmark):
    result = benchmark.pedantic(
        run_substrate_reuse_benchmark, args=(), rounds=1, iterations=1
    )
    # Hard guarantees (deterministic counters, not wall-clock):
    assert result["substrate_fits_after_two_methods"] == 1, (
        "the second embeddings-backed method must reuse, not refit"
    )
    assert result["substrate_hits_after_two_methods"] >= 1
    # One co-occurrence + one entity-representations + one causal LM for the
    # whole resident fleet (was: up to one private copy per method).
    assert result["resident_substrates_all_methods"] == 3
    # Wall-clock: the warm second fit skips the substrate cost entirely.
    assert result["warm_second_method_fit_s"] < result["cold_second_method_fit_s"], (
        f"warm fit {result['warm_second_method_fit_s']:.2f}s did not beat "
        f"cold fit {result['cold_second_method_fit_s']:.2f}s"
    )
    print(
        f"\nsecond embeddings-backed method: cold "
        f"{result['cold_second_method_fit_s']:.2f}s vs warm "
        f"{result['warm_second_method_fit_s']:.2f}s "
        f"({result['speedup']:.1f}x); resident substrates with "
        f"{result['methods_loaded']} methods loaded: "
        f"{result['resident_substrates_all_methods']}"
    )
