"""Serving throughput — cached vs uncached queries/sec through the service.

Complements the paper-artefact benchmarks with a systems metric: how fast
the online serving layer (:mod:`repro.serve`) answers expansion requests
once the registry is warm, and how much the result cache buys on repeated
traffic.  Tracked from this PR onward so serving-speed regressions show up
alongside quality regressions.
"""

from __future__ import annotations

import time

from repro.client import ExpansionClient
from repro.config import ServiceConfig
from repro.serve import ExpandOptions, ExpandRequest, ExpansionHTTPServer, ExpansionService

#: queries per measured pass; small enough to keep the suite fast.
SERVING_QUERY_BUDGET = 20


def run_serving_benchmark(context, num_queries: int = SERVING_QUERY_BUDGET) -> dict:
    service = ExpansionService(
        context.dataset,
        config=ServiceConfig(batch_wait_ms=0.0, cache_ttl_seconds=None),
        resources=context.resources,
    )
    with service:
        service.warm_up(["retexpan"])  # fit cost excluded from the measurement
        queries = context.dataset.queries[:num_queries]
        requests = [
            ExpandRequest(
                method="retexpan",
                query_id=query.query_id,
                options=ExpandOptions(top_k=50),
            )
            for query in queries
        ]
        uncached_requests = [
            ExpandRequest(
                method="retexpan",
                query_id=query.query_id,
                options=ExpandOptions(top_k=50, use_cache=False),
            )
            for query in queries
        ]

        started = time.perf_counter()
        for request in uncached_requests:
            service.submit(request)
        uncached_s = time.perf_counter() - started

        for request in requests:  # prime the cache
            service.submit(request)

        started = time.perf_counter()
        for request in requests:
            assert service.submit(request).cached
        cached_s = time.perf_counter() - started

        stats = service.stats()
    return {
        "num_queries": len(requests),
        "uncached_qps": len(requests) / uncached_s,
        "cached_qps": len(requests) / cached_s,
        "uncached_s": uncached_s,
        "cached_s": cached_s,
        "stats": stats,
    }


def test_serving_throughput(benchmark, context):
    result = benchmark.pedantic(
        run_serving_benchmark, args=(context,), rounds=1, iterations=1
    )
    print(
        f"\nserving throughput over {result['num_queries']} queries (warm registry): "
        f"uncached {result['uncached_qps']:.1f} q/s, "
        f"cached {result['cached_qps']:.1f} q/s "
        f"({result['cached_qps'] / result['uncached_qps']:.0f}x)"
    )

    stats = result["stats"]
    # The registry fitted retexpan exactly once (at warm-up) for the whole run.
    assert stats["registry"]["fits"] == 1
    # Every request of the cached pass was a hit, verified via the counters.
    assert stats["cache"]["hits"] == result["num_queries"]
    assert stats["cache"]["misses"] == result["num_queries"]
    # The cache must not be slower than recomputing the expansion.
    assert result["cached_s"] < result["uncached_s"]


def test_v1_http_expand_smoke(context):
    """One ``/v1/expand`` end-to-end through the SDK's HTTP transport.

    The CI benchmark smoke runs this file, so every merge exercises the full
    production path: client -> urllib -> HTTP server -> v1 dispatcher ->
    service -> registry -> expander, with the versioned envelope on the wire.
    """
    service = ExpansionService(
        context.dataset,
        config=ServiceConfig(batch_wait_ms=0.0, port=0),
        resources=context.resources,
    )
    query = context.dataset.queries[0]
    with ExpansionHTTPServer(service, port=0).start() as server:
        with ExpansionClient.connect(server.url) as client:
            started = time.perf_counter()
            response = client.expand("retexpan", query_id=query.query_id, top_k=20)
            elapsed_ms = (time.perf_counter() - started) * 1000.0
    print(f"\nv1 HTTP expand round trip: {elapsed_ms:.1f} ms (cold registry)")
    assert response.method == "retexpan"
    assert response.query_id == query.query_id
    assert 1 <= len(response.ranking) <= 20
    assert client.last_request_id is not None
    assert not set(response.entity_ids()) & set(query.seed_ids())
