"""Serving throughput — cached vs uncached queries/sec through the service.

Complements the paper-artefact benchmarks with a systems metric: how fast
the online serving layer (:mod:`repro.serve`) answers expansion requests
once the registry is warm, and how much the result cache buys on repeated
traffic.  Tracked from this PR onward so serving-speed regressions show up
alongside quality regressions.
"""

from __future__ import annotations

import gc
import time

from repro.client import ExpansionClient
from repro.config import ServiceConfig
from repro.core.base import Expander
from repro.serve import ExpandOptions, ExpandRequest, ExpansionHTTPServer, ExpansionService
from repro.types import ExpansionResult

#: queries per measured pass; small enough to keep the suite fast.
SERVING_QUERY_BUDGET = 20


def run_serving_benchmark(context, num_queries: int = SERVING_QUERY_BUDGET) -> dict:
    service = ExpansionService(
        context.dataset,
        config=ServiceConfig(batch_wait_ms=0.0, cache_ttl_seconds=None),
        resources=context.resources,
    )
    with service:
        service.warm_up(["retexpan"])  # fit cost excluded from the measurement
        queries = context.dataset.queries[:num_queries]
        requests = [
            ExpandRequest(
                method="retexpan",
                query_id=query.query_id,
                options=ExpandOptions(top_k=50),
            )
            for query in queries
        ]
        uncached_requests = [
            ExpandRequest(
                method="retexpan",
                query_id=query.query_id,
                options=ExpandOptions(top_k=50, use_cache=False),
            )
            for query in queries
        ]

        started = time.perf_counter()
        for request in uncached_requests:
            service.submit(request)
        uncached_s = time.perf_counter() - started

        for request in requests:  # prime the cache
            service.submit(request)

        started = time.perf_counter()
        for request in requests:
            assert service.submit(request).cached
        cached_s = time.perf_counter() - started

        stats = service.stats()
    return {
        "num_queries": len(requests),
        "uncached_qps": len(requests) / uncached_s,
        "cached_qps": len(requests) / cached_s,
        "uncached_s": uncached_s,
        "cached_s": cached_s,
        "stats": stats,
    }


def test_serving_throughput(benchmark, context):
    result = benchmark.pedantic(
        run_serving_benchmark, args=(context,), rounds=1, iterations=1
    )
    print(
        f"\nserving throughput over {result['num_queries']} queries (warm registry): "
        f"uncached {result['uncached_qps']:.1f} q/s, "
        f"cached {result['cached_qps']:.1f} q/s "
        f"({result['cached_qps'] / result['uncached_qps']:.0f}x)"
    )

    stats = result["stats"]
    latency = stats["service"]["latency_ms"]
    print(
        f"service latency over {latency['count']} requests: "
        f"p50 {latency['p50']:.2f} ms, p90 {latency['p90']:.2f} ms, "
        f"p99 {latency['p99']:.2f} ms"
    )
    # uncached + cache-priming + cached pass, all observed by the histogram.
    assert latency["count"] == 3 * result["num_queries"]
    assert latency["p50"] <= latency["p90"] <= latency["p99"]
    # The registry fitted retexpan exactly once (at warm-up) for the whole run.
    assert stats["registry"]["fits"] == 1
    # Every request of the cached pass was a hit, verified via the counters.
    assert stats["cache"]["hits"] == result["num_queries"]
    assert stats["cache"]["misses"] == result["num_queries"]
    # The cache must not be slower than recomputing the expansion.
    assert result["cached_s"] < result["uncached_s"]


class _BenchStubExpander(Expander):
    """A near-free expander, so the overhead guard times the serving layer
    (cache lookup, counters, histogram observe) and not the model."""

    name = "bench-stub"

    def _expand(self, query, top_k):
        scored = [(eid, 1.0 / (1.0 + eid)) for eid in self.candidate_ids(query)]
        return ExpansionResult.from_scores(query.query_id, scored)


def _cached_pass_seconds(service, request, repeats: int) -> float:
    started = time.perf_counter()
    for _ in range(repeats):
        service.submit(request)
    return time.perf_counter() - started


def _measure_overhead(baseline, instrumented, request, repeats, rounds):
    """Best-of-rounds pass time per mode, interleaved so drift hits both.

    The windows are deliberately short (~3 ms at 100 repeats): a window
    longer than a scheduler quantum is guaranteed a preemption on a busy
    box, and then even the best round carries milliseconds of noise.  The
    GC is parked while timing — every submit allocates a response, so
    collector runs otherwise land inside measured windows at different
    points for the two modes.
    """
    baseline_times, instrumented_times = [], []
    gc.collect()
    gc.disable()
    try:
        for round_index in range(rounds):
            # swap who goes first each round so drift (thermal, background
            # load) charges both modes equally.
            pair = (baseline, instrumented) if round_index % 2 == 0 else (
                instrumented, baseline
            )
            first_s = _cached_pass_seconds(pair[0], request, repeats)
            second_s = _cached_pass_seconds(pair[1], request, repeats)
            if pair[0] is baseline:
                baseline_times.append(first_s)
                instrumented_times.append(second_s)
            else:
                baseline_times.append(second_s)
                instrumented_times.append(first_s)
    finally:
        gc.enable()
    # A GC pause or preemption only ever makes a round slower, so the
    # minimum is the least-noise estimate of each mode's true cost.
    return min(baseline_times), min(instrumented_times)


def test_metrics_overhead_guard(context):
    """The repro.obs instrumentation tax on the cached hot path stays within
    5% of a metrics-disabled service.

    The instrumented service runs its production configuration — including
    exemplar capture on the request-latency histogram AND a trace collector
    with sampling off — so the budget covers the per-request contextvar
    read the exemplars add plus the head-sampling coin flip: a worker with
    tracing wired up but the sampler turned down must serve cache hits at
    effectively untraced speed.

    Both services run the same stub method.  Up to three measurement
    attempts: noise only ever inflates the instrumented/baseline ratio, so
    one attempt inside the budget is proof the code is inside the budget,
    while a genuine regression (added microseconds on every request) fails
    all three.
    """
    def make_service(metrics_enabled: bool) -> ExpansionService:
        service = ExpansionService(
            context.dataset,
            config=ServiceConfig(
                batch_wait_ms=0.0,
                cache_ttl_seconds=None,
                metrics_enabled=metrics_enabled,
                # sampling-off tracing rides on the instrumented side: the
                # collector is installed but keeps nothing, which is the
                # production shape for a worker with tracing wired up and
                # the sampler turned down.
                trace_sample_rate=0.0 if metrics_enabled else None,
            ),
            factories={"bench-stub": lambda _res: _BenchStubExpander()},
        )
        service.warm_up(["bench-stub"])
        return service

    request = ExpandRequest(
        method="bench-stub",
        query_id=context.dataset.queries[0].query_id,
        options=ExpandOptions(top_k=20),
    )
    repeats, rounds, attempts = 100, 30, 3
    baseline = make_service(metrics_enabled=False)
    instrumented = make_service(metrics_enabled=True)
    with baseline, instrumented:
        for service in (baseline, instrumented):  # prime cache + warm the path
            _cached_pass_seconds(service, request, 50)
        overheads = []
        for attempt in range(attempts):
            baseline_best, instrumented_best = _measure_overhead(
                baseline, instrumented, request, repeats, rounds
            )
            overhead = instrumented_best / baseline_best - 1.0
            overheads.append(overhead)
            print(
                f"\nmetrics overhead on the cached hot path "
                f"(attempt {attempt + 1}): {overhead * 100.0:+.2f}% "
                f"(no-op {baseline_best / repeats * 1e6:.1f} us/req, "
                f"instrumented {instrumented_best / repeats * 1e6:.1f} us/req)"
            )
            # 5% relative budget plus ~1us/request of absolute grace: the
            # guard is after regressions measured in added microseconds per
            # request, not nanoseconds.
            if instrumented_best <= baseline_best * 1.05 + repeats * 1.0e-6:
                break
        else:
            raise AssertionError(
                f"instrumentation overhead exceeded the 5% budget on all "
                f"{attempts} attempts: "
                + ", ".join(f"{o * 100.0:+.2f}%" for o in overheads)
            )
        # only the instrumented service counted anything
        assert instrumented.stats()["cache"]["hits"] >= repeats * rounds
        assert baseline.stats()["cache"]["hits"] == 0
        # the measured path is the one production ships: request-latency
        # exemplar capture was on for every instrumented observation.
        latency = instrumented.metrics.histogram("repro_request_latency_ms")
        assert latency.exemplars is True
        # the trace collector was live the whole run but sampled everything
        # out — proof the measured path took the per-request rate check.
        trace_stats = instrumented.stats()["traces"]
        assert trace_stats["sample_rate"] == 0.0
        assert trace_stats["stored"] == 0
        assert trace_stats["kept"] == 0


class _HttpCaller:
    """Adapter giving an HTTP client the ``submit(request)`` shape the
    interleaved overhead harness expects (the pre-rendered payload is
    fixed; the ignored argument keeps the call signature uniform)."""

    def __init__(self, transport, payload):
        self.transport = transport
        self.payload = payload

    def submit(self, _request):
        status, _body = self.transport.request("POST", "/v1/expand", self.payload)
        assert status == 200


def test_gate_overhead_guard(context, tmp_path):
    """The multi-tenant front door tax on the cached expand hot path stays
    within 5% of an ungated server, measured end to end over HTTP.

    The gate lives in the HTTP handler (key hash + tenant lookup,
    token-bucket charge, tenant contextvar, per-tenant counter labels), so
    the guarded quantity is the latency a tenant actually pays: client ->
    keep-alive socket -> handler -> cached service hit.  Same measurement
    protocol as the metrics guard — interleaved best-of-rounds windows, GC
    parked, up to three attempts because noise only ever inflates the
    gated/open ratio."""
    import json

    from repro.client.transport import HttpTransport

    keyfile = tmp_path / "keys.json"
    keyfile.write_text(
        json.dumps(
            {
                "tenants": [
                    # quota far above the benchmark rate: the buckets are
                    # exercised on every request but never refuse.
                    {"tenant": "bench", "key": "bench-key", "quota": "10000000:10000000"}
                ]
            }
        ),
        encoding="utf-8",
    )

    def make_server(gated: bool) -> ExpansionHTTPServer:
        service = ExpansionService(
            context.dataset,
            config=ServiceConfig(
                batch_wait_ms=0.0,
                cache_ttl_seconds=None,
                port=0,
                keyfile=str(keyfile) if gated else None,
            ),
            factories={"bench-stub": lambda _res: _BenchStubExpander()},
        )
        service.warm_up(["bench-stub"])
        return ExpansionHTTPServer(service, port=0).start()

    payload = ExpandRequest(
        method="bench-stub",
        query_id=context.dataset.queries[0].query_id,
        options=ExpandOptions(top_k=20),
    ).to_v1_dict()
    repeats, rounds, attempts = 50, 20, 3
    open_server = make_server(gated=False)
    gated_server = make_server(gated=True)
    open_transport = HttpTransport(open_server.url)
    gated_transport = HttpTransport(gated_server.url, api_key="bench-key")
    baseline = _HttpCaller(open_transport, payload)
    gated = _HttpCaller(gated_transport, payload)
    try:
        for caller in (baseline, gated):  # prime cache + warm the sockets
            _cached_pass_seconds(caller, None, 50)
        overheads = []
        for attempt in range(attempts):
            baseline_best, gated_best = _measure_overhead(
                baseline, gated, None, repeats, rounds
            )
            overhead = gated_best / baseline_best - 1.0
            overheads.append(overhead)
            print(
                f"\nfront-door overhead on the cached HTTP hot path "
                f"(attempt {attempt + 1}): {overhead * 100.0:+.2f}% "
                f"(open {baseline_best / repeats * 1e6:.1f} us/req, "
                f"gated {gated_best / repeats * 1e6:.1f} us/req)"
            )
            # 5% relative budget plus ~2us/request of absolute grace — the
            # gate itself costs ~4us/request, so a regression that doubles
            # it still trips the guard on a ~300us HTTP round trip.
            if gated_best <= baseline_best * 1.05 + repeats * 2.0e-6:
                break
        else:
            raise AssertionError(
                f"front-door overhead exceeded the 5% budget on all "
                f"{attempts} attempts: "
                + ", ".join(f"{o * 100.0:+.2f}%" for o in overheads)
            )
        # the gate really ran on every gated request and never throttled
        # (a refusal would skew the timing with cheap 429s).
        gate_stats = gated_server.service.gate.stats()
        assert gate_stats["requests"]["bench"] >= repeats * rounds
        assert gate_stats["throttled"] == {}
    finally:
        open_transport.close()
        gated_transport.close()
        open_server.shutdown()
        gated_server.shutdown()


def test_v1_http_expand_smoke(context):
    """One ``/v1/expand`` end-to-end through the SDK's HTTP transport.

    The CI benchmark smoke runs this file, so every merge exercises the full
    production path: client -> urllib -> HTTP server -> v1 dispatcher ->
    service -> registry -> expander, with the versioned envelope on the wire.
    """
    service = ExpansionService(
        context.dataset,
        config=ServiceConfig(batch_wait_ms=0.0, port=0),
        resources=context.resources,
    )
    query = context.dataset.queries[0]
    with ExpansionHTTPServer(service, port=0).start() as server:
        with ExpansionClient.connect(server.url) as client:
            started = time.perf_counter()
            response = client.expand("retexpan", query_id=query.query_id, top_k=20)
            elapsed_ms = (time.perf_counter() - started) * 1000.0
    print(f"\nv1 HTTP expand round trip: {elapsed_ms:.1f} ms (cold registry)")
    assert response.method == "retexpan"
    assert response.query_id == query.query_id
    assert 1 <= len(response.ranking) <= 20
    assert client.last_request_id is not None
    assert not set(response.entity_ids()) & set(query.seed_ids())
