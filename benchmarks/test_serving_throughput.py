"""Serving throughput — cached vs uncached queries/sec through the service.

Complements the paper-artefact benchmarks with a systems metric: how fast
the online serving layer (:mod:`repro.serve`) answers expansion requests
once the registry is warm, and how much the result cache buys on repeated
traffic.  Tracked from this PR onward so serving-speed regressions show up
alongside quality regressions.
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.config import ServiceConfig
from repro.serve import ExpandRequest, ExpansionService

#: queries per measured pass; small enough to keep the suite fast.
SERVING_QUERY_BUDGET = 20


def run_serving_benchmark(context, num_queries: int = SERVING_QUERY_BUDGET) -> dict:
    service = ExpansionService(
        context.dataset,
        config=ServiceConfig(batch_wait_ms=0.0, cache_ttl_seconds=None),
        resources=context.resources,
    )
    with service:
        service.warm_up(["retexpan"])  # fit cost excluded from the measurement
        queries = context.dataset.queries[:num_queries]
        requests = [
            ExpandRequest(method="retexpan", query_id=query.query_id, top_k=50)
            for query in queries
        ]

        started = time.perf_counter()
        for request in requests:
            service.submit(replace(request, use_cache=False))
        uncached_s = time.perf_counter() - started

        for request in requests:  # prime the cache
            service.submit(request)

        started = time.perf_counter()
        for request in requests:
            assert service.submit(request).cached
        cached_s = time.perf_counter() - started

        stats = service.stats()
    return {
        "num_queries": len(requests),
        "uncached_qps": len(requests) / uncached_s,
        "cached_qps": len(requests) / cached_s,
        "uncached_s": uncached_s,
        "cached_s": cached_s,
        "stats": stats,
    }


def test_serving_throughput(benchmark, context):
    result = benchmark.pedantic(
        run_serving_benchmark, args=(context,), rounds=1, iterations=1
    )
    print(
        f"\nserving throughput over {result['num_queries']} queries (warm registry): "
        f"uncached {result['uncached_qps']:.1f} q/s, "
        f"cached {result['cached_qps']:.1f} q/s "
        f"({result['cached_qps'] / result['uncached_qps']:.0f}x)"
    )

    stats = result["stats"]
    # The registry fitted retexpan exactly once (at warm-up) for the whole run.
    assert stats["registry"]["fits"] == 1
    # Every request of the cached pass was a hit, verified via the counters.
    assert stats["cache"]["hits"] == result["num_queries"]
    assert stats["cache"]["misses"] == result["num_queries"]
    # The cache must not be slower than recomputing the expansion.
    assert result["cached_s"] < result["uncached_s"]
