"""HTTP round-trip tests for the serving front-end (ephemeral port)."""

from __future__ import annotations

import json
import logging
import urllib.error
import urllib.request

import pytest

from repro.config import ServiceConfig
from repro.core.base import Expander
from repro.serve import ExpansionHTTPServer, ExpansionService
from repro.types import ExpansionResult


class StubExpander(Expander):
    name = "stub"

    def _expand(self, query, top_k):
        scored = [(eid, 1.0 / (1.0 + eid)) for eid in self.candidate_ids(query)]
        return ExpansionResult.from_scores(query.query_id, scored)


@pytest.fixture(scope="module")
def server(tiny_dataset):
    service = ExpansionService(
        tiny_dataset,
        config=ServiceConfig(batch_wait_ms=0.0, port=0),
        factories={"stub": lambda _resources: StubExpander()},
    )
    server = ExpansionHTTPServer(service, port=0).start()
    yield server
    server.shutdown()


def get(server, path):
    with urllib.request.urlopen(server.url + path, timeout=10) as response:
        return response.status, json.loads(response.read())


def post(server, path, payload):
    body = json.dumps(payload).encode("utf-8") if not isinstance(payload, bytes) else payload
    request = urllib.request.Request(
        server.url + path, data=body, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestEndpoints:
    def test_healthz(self, server):
        status, payload = get(server, "/healthz")
        assert status == 200
        assert payload == {"status": "ok"}

    def test_methods_lists_the_registry(self, server):
        status, payload = get(server, "/methods")
        assert status == 200
        assert {row["method"] for row in payload["methods"]} == {"stub"}

    def test_expand_round_trip_and_cache_hit(self, server, tiny_dataset):
        query = tiny_dataset.queries[0]
        body = {"method": "stub", "query_id": query.query_id, "top_k": 10}

        status, first = post(server, "/expand", body)
        assert status == 200
        assert first["cached"] is False
        assert first["query_id"] == query.query_id
        assert len(first["ranking"]) == 10
        returned = {item["entity_id"] for item in first["ranking"]}
        assert not returned & set(query.seed_ids())

        hits_before = get(server, "/stats")[1]["cache"]["hits"]
        status, second = post(server, "/expand", body)
        assert status == 200
        assert second["cached"] is True
        assert [i["entity_id"] for i in second["ranking"]] == [
            i["entity_id"] for i in first["ranking"]
        ]
        assert get(server, "/stats")[1]["cache"]["hits"] == hits_before + 1

    def test_stats_shape(self, server):
        status, payload = get(server, "/stats")
        assert status == 200
        assert set(payload) == {"service", "cache", "registry", "batcher", "jobs"}
        assert payload["service"]["requests"] >= 1

    def test_concurrent_http_clients(self, server, tiny_dataset):
        from concurrent.futures import ThreadPoolExecutor

        queries = tiny_dataset.queries[:6]
        with ThreadPoolExecutor(max_workers=6) as pool:
            results = list(
                pool.map(
                    lambda q: post(
                        server,
                        "/expand",
                        {"method": "stub", "query_id": q.query_id, "top_k": 5},
                    ),
                    queries,
                )
            )
        assert all(status == 200 for status, _ in results)
        assert {payload["query_id"] for _, payload in results} == {
            q.query_id for q in queries
        }


class TestErrorMapping:
    def test_unknown_method_is_404(self, server, tiny_dataset):
        status, payload = post(
            server,
            "/expand",
            {"method": "nope", "query_id": tiny_dataset.queries[0].query_id},
        )
        assert status == 404
        assert payload["error"] == "UnknownMethodError"

    def test_unknown_class_is_404(self, server):
        status, payload = post(
            server,
            "/expand",
            {"method": "stub", "class_id": "no-such-class", "positive_seed_ids": [0]},
        )
        assert status == 404
        assert payload["error"] == "DatasetError"

    def test_unknown_query_id_is_404(self, server):
        status, _ = post(server, "/expand", {"method": "stub", "query_id": "missing"})
        assert status == 404

    def test_malformed_json_is_400(self, server):
        status, payload = post(server, "/expand", b"{not json")
        assert status == 400
        assert "JSON" in payload["message"]

    def test_non_numeric_content_length_is_400(self, server):
        import http.client

        host, port = server.address
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            connection.putrequest("POST", "/expand")
            connection.putheader("Content-Length", "abc")
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 400
            assert json.loads(response.read())["message"].startswith("Content-Length")
        finally:
            connection.close()

    def test_error_responses_close_the_connection(self, server):
        status, _ = post(server, "/expand", b"{not json")
        assert status == 400
        # header check via a raw connection
        import http.client

        host, port = server.address
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            connection.request(
                "POST", "/expand", body=b"{broken", headers={"Content-Type": "application/json"}
            )
            response = connection.getresponse()
            assert response.status == 400
            assert response.getheader("Connection") == "close"
        finally:
            connection.close()

    def test_invalid_request_fields_are_400(self, server, tiny_dataset):
        status, _ = post(
            server,
            "/expand",
            {
                "method": "stub",
                "query_id": tiny_dataset.queries[0].query_id,
                "top_k": -3,
            },
        )
        assert status == 400

    def test_unknown_route_is_404(self, server):
        status, _ = post(server, "/elsewhere", {"method": "stub"})
        assert status == 404
        try:
            with urllib.request.urlopen(server.url + "/nothing", timeout=10) as response:
                status = response.status
        except urllib.error.HTTPError as error:
            status = error.code
        assert status == 404


class TestV1Endpoints:
    def test_v1_routes_serve_envelopes_with_request_ids(self, server, tiny_dataset):
        status, payload = get(server, "/v1/healthz")
        assert status == 200
        assert payload["api_version"] == "v1"
        assert payload["request_id"].startswith("req-")
        assert payload["data"] == {"status": "ok"}

        query = tiny_dataset.queries[0]
        status, payload = post(
            server,
            "/v1/expand",
            {"method": "stub", "query_id": query.query_id, "options": {"top_k": 5}},
        )
        assert status == 200
        assert payload["api_version"] == "v1"
        data = payload["data"]
        assert data["count"] == len(data["ranking"]) == 5
        assert data["total"] == 5
        assert data["offset"] == 0

    def test_v1_request_id_header_is_echoed(self, server):
        with urllib.request.urlopen(server.url + "/v1/healthz", timeout=10) as response:
            header = response.headers.get("X-Request-Id")
            payload = json.loads(response.read())
        assert header == payload["request_id"]

    def test_v1_errors_carry_the_taxonomy(self, server):
        status, payload = post(server, "/v1/expand", {"method": "nope", "query_id": "q"})
        assert status == 404
        error = payload["error"]
        assert set(error) == {"error", "code", "message", "details", "retryable"}
        assert error["code"] == "unknown_method"
        assert error["retryable"] is False

    def test_v1_methods_report_persistence_metadata(self, server):
        status, payload = get(server, "/v1/methods")
        assert status == 200
        (row,) = payload["data"]["methods"]
        assert row["method"] == "stub"
        assert row["supports_persistence"] is False
        assert row["state_version"] == 1
        assert row["store_artifact"] is None  # no store attached

    def test_v1_stats_include_job_counters(self, server):
        status, payload = get(server, "/v1/stats")
        assert status == 200
        assert {"service", "cache", "registry", "batcher", "jobs"} <= set(payload["data"])
        assert payload["data"]["jobs"]["submitted"] >= 0

    def test_post_to_unknown_or_get_only_v1_route_is_404_even_without_a_body(
        self, server
    ):
        """Routing must win over body validation: a 400 for an empty body on a
        route that does not exist would mislead clients probing paths."""
        import http.client

        host, port = server.address
        for path in ("/v1/nothing", "/v1/healthz"):
            connection = http.client.HTTPConnection(host, port, timeout=10)
            try:
                connection.request("POST", path)  # no body at all
                response = connection.getresponse()
                assert response.status == 404
                assert json.loads(response.read())["error"]["code"] == "not_found"
            finally:
                connection.close()

    def test_legacy_expand_accepts_truthy_use_cache(self, server, tiny_dataset):
        """The pre-v1 parser coerced use_cache with bool(); keep that exact
        behaviour on the deprecated route (v1 options stay strictly typed)."""
        status, payload = post(
            server,
            "/expand",
            {
                "method": "stub",
                "query_id": tiny_dataset.queries[0].query_id,
                "top_k": 5,
                "use_cache": 0,
            },
        )
        assert status == 200
        assert payload["cached"] is False

    def test_unknown_v1_route_is_an_enveloped_404(self, server):
        try:
            urllib.request.urlopen(server.url + "/v1/nothing", timeout=10)
            raise AssertionError("expected a 404")
        except urllib.error.HTTPError as error:
            assert error.code == 404
            payload = json.loads(error.read())
        assert payload["api_version"] == "v1"
        assert payload["error"]["code"] == "not_found"


def test_access_log_emits_structured_lines(tiny_dataset, caplog):
    """Satellite: per-request JSON access logging behind ServiceConfig.access_log."""
    service = ExpansionService(
        tiny_dataset,
        config=ServiceConfig(batch_wait_ms=0.0, port=0, access_log=True),
        factories={"stub": lambda _resources: StubExpander()},
    )
    query = tiny_dataset.queries[0]
    with caplog.at_level(logging.INFO, logger="repro.serve.access"):
        with ExpansionHTTPServer(service, port=0).start() as server:
            get(server, "/healthz")
            post(
                server,
                "/v1/expand",
                {"method": "stub", "query_id": query.query_id, "top_k": 5},
            )
    lines = [json.loads(record.getMessage()) for record in caplog.records
             if record.name == "repro.serve.access"]
    assert len(lines) == 2
    legacy, expand = lines
    for line in lines:
        assert set(line) == {
            "request_id", "method", "route", "status", "latency_ms",
            "cached", "deprecated",
        }
        assert line["request_id"].startswith("req-")
        assert line["status"] == 200
        assert line["latency_ms"] >= 0.0
    assert legacy["route"] == "/healthz"
    assert legacy["deprecated"] is True
    assert expand["route"] == "/v1/expand"
    assert expand["method"] == "POST"
    assert expand["cached"] is False


def test_access_log_is_off_by_default(tiny_dataset, caplog):
    service = ExpansionService(
        tiny_dataset,
        config=ServiceConfig(batch_wait_ms=0.0, port=0),
        factories={"stub": lambda _resources: StubExpander()},
    )
    with caplog.at_level(logging.INFO, logger="repro.serve.access"):
        with ExpansionHTTPServer(service, port=0).start() as server:
            get(server, "/healthz")
    assert not [r for r in caplog.records if r.name == "repro.serve.access"]


def test_server_shutdown_closes_the_service(tiny_dataset):
    service = ExpansionService(
        tiny_dataset,
        config=ServiceConfig(batch_wait_ms=0.0, port=0),
        factories={"stub": lambda _resources: StubExpander()},
    )
    server = ExpansionHTTPServer(service, port=0).start()
    assert get(server, "/healthz")[0] == 200
    server.shutdown()
    with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
        urllib.request.urlopen(server.url + "/healthz", timeout=1)
