"""HTTP round-trip tests for the serving front-end (ephemeral port)."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.config import ServiceConfig
from repro.core.base import Expander
from repro.serve import ExpansionHTTPServer, ExpansionService
from repro.types import ExpansionResult


class StubExpander(Expander):
    name = "stub"

    def _expand(self, query, top_k):
        scored = [(eid, 1.0 / (1.0 + eid)) for eid in self.candidate_ids(query)]
        return ExpansionResult.from_scores(query.query_id, scored)


@pytest.fixture(scope="module")
def server(tiny_dataset):
    service = ExpansionService(
        tiny_dataset,
        config=ServiceConfig(batch_wait_ms=0.0, port=0),
        factories={"stub": lambda _resources: StubExpander()},
    )
    server = ExpansionHTTPServer(service, port=0).start()
    yield server
    server.shutdown()


def get(server, path):
    with urllib.request.urlopen(server.url + path, timeout=10) as response:
        return response.status, json.loads(response.read())


def post(server, path, payload):
    body = json.dumps(payload).encode("utf-8") if not isinstance(payload, bytes) else payload
    request = urllib.request.Request(
        server.url + path, data=body, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestEndpoints:
    def test_healthz(self, server):
        status, payload = get(server, "/healthz")
        assert status == 200
        assert payload == {"status": "ok"}

    def test_methods_lists_the_registry(self, server):
        status, payload = get(server, "/methods")
        assert status == 200
        assert {row["method"] for row in payload["methods"]} == {"stub"}

    def test_expand_round_trip_and_cache_hit(self, server, tiny_dataset):
        query = tiny_dataset.queries[0]
        body = {"method": "stub", "query_id": query.query_id, "top_k": 10}

        status, first = post(server, "/expand", body)
        assert status == 200
        assert first["cached"] is False
        assert first["query_id"] == query.query_id
        assert len(first["ranking"]) == 10
        returned = {item["entity_id"] for item in first["ranking"]}
        assert not returned & set(query.seed_ids())

        hits_before = get(server, "/stats")[1]["cache"]["hits"]
        status, second = post(server, "/expand", body)
        assert status == 200
        assert second["cached"] is True
        assert [i["entity_id"] for i in second["ranking"]] == [
            i["entity_id"] for i in first["ranking"]
        ]
        assert get(server, "/stats")[1]["cache"]["hits"] == hits_before + 1

    def test_stats_shape(self, server):
        status, payload = get(server, "/stats")
        assert status == 200
        assert set(payload) == {"service", "cache", "registry", "batcher"}
        assert payload["service"]["requests"] >= 1

    def test_concurrent_http_clients(self, server, tiny_dataset):
        from concurrent.futures import ThreadPoolExecutor

        queries = tiny_dataset.queries[:6]
        with ThreadPoolExecutor(max_workers=6) as pool:
            results = list(
                pool.map(
                    lambda q: post(
                        server,
                        "/expand",
                        {"method": "stub", "query_id": q.query_id, "top_k": 5},
                    ),
                    queries,
                )
            )
        assert all(status == 200 for status, _ in results)
        assert {payload["query_id"] for _, payload in results} == {
            q.query_id for q in queries
        }


class TestErrorMapping:
    def test_unknown_method_is_404(self, server, tiny_dataset):
        status, payload = post(
            server,
            "/expand",
            {"method": "nope", "query_id": tiny_dataset.queries[0].query_id},
        )
        assert status == 404
        assert payload["error"] == "UnknownMethodError"

    def test_unknown_class_is_404(self, server):
        status, payload = post(
            server,
            "/expand",
            {"method": "stub", "class_id": "no-such-class", "positive_seed_ids": [0]},
        )
        assert status == 404
        assert payload["error"] == "DatasetError"

    def test_unknown_query_id_is_404(self, server):
        status, _ = post(server, "/expand", {"method": "stub", "query_id": "missing"})
        assert status == 404

    def test_malformed_json_is_400(self, server):
        status, payload = post(server, "/expand", b"{not json")
        assert status == 400
        assert "JSON" in payload["message"]

    def test_non_numeric_content_length_is_400(self, server):
        import http.client

        host, port = server.address
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            connection.putrequest("POST", "/expand")
            connection.putheader("Content-Length", "abc")
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 400
            assert json.loads(response.read())["message"].startswith("Content-Length")
        finally:
            connection.close()

    def test_error_responses_close_the_connection(self, server):
        status, _ = post(server, "/expand", b"{not json")
        assert status == 400
        # header check via a raw connection
        import http.client

        host, port = server.address
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            connection.request(
                "POST", "/expand", body=b"{broken", headers={"Content-Type": "application/json"}
            )
            response = connection.getresponse()
            assert response.status == 400
            assert response.getheader("Connection") == "close"
        finally:
            connection.close()

    def test_invalid_request_fields_are_400(self, server, tiny_dataset):
        status, _ = post(
            server,
            "/expand",
            {
                "method": "stub",
                "query_id": tiny_dataset.queries[0].query_id,
                "top_k": -3,
            },
        )
        assert status == 400

    def test_unknown_route_is_404(self, server):
        status, _ = post(server, "/elsewhere", {"method": "stub"})
        assert status == 404
        try:
            with urllib.request.urlopen(server.url + "/nothing", timeout=10) as response:
                status = response.status
        except urllib.error.HTTPError as error:
            status = error.code
        assert status == 404


def test_server_shutdown_closes_the_service(tiny_dataset):
    service = ExpansionService(
        tiny_dataset,
        config=ServiceConfig(batch_wait_ms=0.0, port=0),
        factories={"stub": lambda _resources: StubExpander()},
    )
    server = ExpansionHTTPServer(service, port=0).start()
    assert get(server, "/healthz")[0] == 200
    server.shutdown()
    with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
        urllib.request.urlopen(server.url + "/healthz", timeout=1)
