"""Tests for the experiment harness (registry, context, and light experiments).

The heavyweight experiments (Tables II-VIII) are exercised end-to-end by the
benchmark suite; here the context plumbing and the cheap experiments
(Table I, Figure 4, Figure 7) are verified on the tiny dataset.
"""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import EXPERIMENTS, ExperimentContext, experiment_by_id
from repro.experiments import figure4_heatmap, figure7_case_study, table1_dataset
from repro.experiments.runner import metric_rows
from repro.experiments.table2_main import METHODS as TABLE2_METHODS


@pytest.fixture(scope="module")
def context(tiny_dataset):
    return ExperimentContext(dataset=tiny_dataset, max_queries=8, genexpan_max_queries=4)


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        ids = {spec.experiment_id for spec in EXPERIMENTS}
        expected = {f"table{i}" for i in range(1, 9)} | {"figure4", "figure7"}
        assert ids == expected

    def test_every_spec_has_bench_target(self):
        for spec in EXPERIMENTS:
            assert spec.bench_target.startswith("benchmarks/")
            assert callable(spec.runner)

    def test_lookup_by_id(self):
        assert experiment_by_id("table2").title.startswith("Main results")

    def test_unknown_id_raises(self):
        with pytest.raises(ConfigurationError):
            experiment_by_id("table99")


class TestExperimentContext:
    def test_method_factory_covers_table2(self, context):
        for name in TABLE2_METHODS:
            expander = context.make_method(name)
            assert expander.name == name

    def test_unknown_method_rejected(self, context):
        with pytest.raises(ConfigurationError):
            context.make_method("FancyNewMethod")

    def test_budget_for_generation_methods_is_smaller(self, context):
        assert context.budget_for("GenExpan") == 4
        assert context.budget_for("RetExpan") == 8

    def test_evaluator_caching(self, context):
        assert context.evaluator(max_queries=8) is context.evaluator(max_queries=8)

    def test_query_filter_requires_key(self, context):
        with pytest.raises(ConfigurationError):
            context.evaluator(query_filter=lambda q: True)

    def test_report_caching(self, context):
        first = context.evaluate_method("GPT4")
        second = context.evaluate_method("GPT4")
        assert first is second

    def test_attribute_grouping_helpers(self, context, tiny_dataset):
        query = tiny_dataset.queries[0]
        assert context.attribute_equality_of(query) in {"same", "diff"}
        cardinality = context.attribute_cardinality_of(query)
        assert len(cardinality) == 2

    def test_metric_rows_structure(self, context):
        report = context.evaluate_method("GPT4")
        rows = metric_rows([report])
        assert len(rows) == 3  # pos / neg / comb
        assert {row["metric"] for row in rows} == {"Pos", "Neg", "Comb"}
        assert all("MAP@10" in row and "Avg" in row for row in rows)


class TestLightExperiments:
    def test_table1_rows(self, context):
        output = table1_dataset.run(context)
        assert output["experiment"] == "table1"
        assert any(row["dataset"] == "UltraWiki (paper)" for row in output["rows"])
        assert output["statistics"]["num_entities"] == context.dataset.num_entities
        assert "UltraWiki" in output["text"]

    def test_figure4_heatmap(self, context):
        output = figure4_heatmap.run(context, max_classes=10)
        assert output["experiment"] == "figure4"
        n = len(output["class_ids"])
        assert n > 1
        assert len(output["matrix"]) == n
        assert output["intra_class_similarity"] > output["inter_class_similarity"]

    def test_figure7_case_study(self, context, tiny_dataset):
        output = figure7_case_study.run(context, query=tiny_dataset.queries[0], top_k=10)
        assert output["experiment"] == "figure7"
        assert set(output["listings"]) == {"GenExpan", "GenExpan + CoT"}
        for listing in output["listings"].values():
            assert listing
            for item in listing:
                assert item["annotation"] in {"+++", "---", "!!!", "   "}
        assert "positive seeds" in output["text"]
