"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_build_dataset_defaults(self):
        args = build_parser().parse_args(["build-dataset"])
        assert args.profile == "small"
        assert args.seed == 13
        assert args.output is None

    def test_run_experiment_arguments(self):
        args = build_parser().parse_args(
            ["run-experiment", "table1", "--profile", "tiny", "--max-queries", "5"]
        )
        assert args.experiment_id == "table1"
        assert args.profile == "tiny"
        assert args.max_queries == 5

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["build-dataset", "--profile", "huge"])

    def test_serve_arguments(self):
        args = build_parser().parse_args(
            ["serve", "--profile", "tiny", "--port", "0", "--warm", "retexpan", "setexpan"]
        )
        assert args.profile == "tiny"
        assert args.port == 0
        assert args.warm == ["retexpan", "setexpan"]
        assert args.dataset is None

    def test_query_arguments(self):
        args = build_parser().parse_args(
            ["query", "--dataset", "./ds", "--method", "setexpan", "--top-k", "7"]
        )
        assert args.dataset == "./ds"
        assert args.method == "setexpan"
        assert args.top_k == 7
        assert args.query_id is None
        assert args.url is None
        assert args.offset == 0
        assert args.limit is None

    def test_serve_access_log_flag(self):
        args = build_parser().parse_args(["serve", "--profile", "tiny", "--access-log"])
        assert args.access_log is True
        assert build_parser().parse_args(["serve"]).access_log is False

    def test_serve_telemetry_export_arguments(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--exporter", "statsd",
                "--exporter-target", "127.0.0.1:8125",
                "--exporter-interval", "5",
                "--exporter-max-retries", "1",
                "--slow-query-log", "/tmp/slow.jsonl",
                "--slow-query-max-bytes", "4096",
            ]
        )
        assert args.exporter == "statsd"
        assert args.exporter_target == "127.0.0.1:8125"
        assert args.exporter_interval == 5.0
        assert args.exporter_max_retries == 1
        assert args.slow_query_log == "/tmp/slow.jsonl"
        assert args.slow_query_max_bytes == 4096
        assert build_parser().parse_args(["serve"]).exporter is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--exporter", "kafka"])

    def test_cluster_serve_gateway_exporter_arguments(self):
        args = build_parser().parse_args(
            [
                "cluster", "serve",
                "--gateway-exporter", "json",
                "--gateway-exporter-target", "http://collector:4318/v1/metrics",
            ]
        )
        assert args.gateway_exporter == "json"
        assert args.gateway_exporter_target == "http://collector:4318/v1/metrics"


class TestCommands:
    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        output = capsys.readouterr().out
        assert "table2" in output
        assert "figure7" in output
        assert "benchmarks/" in output

    def test_build_dataset_and_save(self, tmp_path, capsys):
        output_dir = tmp_path / "ds"
        code = main(
            ["build-dataset", "--profile", "tiny", "--seed", "7", "--output", str(output_dir)]
        )
        assert code == 0
        assert (output_dir / "dataset.json").exists()
        assert (output_dir / "corpus.jsonl").exists()
        assert "entities=" in capsys.readouterr().out

    def test_run_experiment_table1(self, tmp_path, capsys):
        json_path = tmp_path / "table1.json"
        code = main(
            [
                "run-experiment",
                "table1",
                "--profile",
                "tiny",
                "--max-queries",
                "6",
                "--genexpan-max-queries",
                "3",
                "--json",
                str(json_path),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "UltraWiki" in output
        payload = json.loads(json_path.read_text())
        assert payload["experiment"] == "table1"
        assert payload["rows"]

    def test_run_unknown_experiment_fails(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["run-experiment", "table42", "--profile", "tiny"])

    def test_query_command_round_trip(self, tmp_path, capsys):
        """``repro query`` serves one request through the full service stack."""
        dataset_dir = tmp_path / "ds"
        assert main(
            ["build-dataset", "--profile", "tiny", "--seed", "7", "--output", str(dataset_dir)]
        ) == 0
        json_path = tmp_path / "response.json"
        code = main(
            [
                "query",
                "--dataset",
                str(dataset_dir),
                "--method",
                "setexpan",
                "--top-k",
                "5",
                "--json",
                str(json_path),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "setexpan on" in output
        payload = json.loads(json_path.read_text())
        assert payload["method"] == "setexpan"
        assert payload["cached"] is False
        assert 1 <= len(payload["ranking"]) <= 5

    def test_query_command_over_http(self, tiny_dataset, capsys):
        """``repro query --url`` round-trips through the HTTP transport."""
        from repro.config import ServiceConfig
        from repro.core.base import Expander
        from repro.serve import ExpansionHTTPServer, ExpansionService
        from repro.types import ExpansionResult

        class StubExpander(Expander):
            name = "stub"

            def _expand(self, query, top_k):
                scored = [
                    (eid, 1.0 / (1.0 + eid)) for eid in self.candidate_ids(query)
                ]
                return ExpansionResult.from_scores(query.query_id, scored)

        service = ExpansionService(
            tiny_dataset,
            config=ServiceConfig(batch_wait_ms=0.0, port=0),
            factories={"stub": lambda _resources: StubExpander()},
        )
        query_id = tiny_dataset.queries[0].query_id
        with ExpansionHTTPServer(service, port=0).start() as server:
            code = main(
                [
                    "query",
                    "--url",
                    server.url,
                    "--method",
                    "stub",
                    "--query-id",
                    query_id,
                    "--top-k",
                    "5",
                ]
            )
        assert code == 0
        output = capsys.readouterr().out
        assert f"stub on {query_id}" in output

    def test_query_over_http_requires_query_id(self):
        with pytest.raises(SystemExit):
            main(["query", "--url", "http://127.0.0.1:1", "--method", "stub"])


class TestClusterTopCommand:
    def test_unreachable_gateway_exits_with_one_clean_line(self, capsys):
        import socket

        # grab a port with nothing listening on it.
        placeholder = socket.socket()
        placeholder.bind(("127.0.0.1", 0))
        port = placeholder.getsockname()[1]
        placeholder.close()

        url = f"http://127.0.0.1:{port}"
        code = main(["cluster", "top", "--url", url, "--once"])
        assert code == 1
        captured = capsys.readouterr()
        assert captured.err.strip() == f"gateway unreachable at {url}"
        assert captured.out == ""  # no traceback, no partial frame
