"""Fleet-level observability tests: /v1/dashboard, gateway /v1/metrics,
``repro cluster top`` rendering, and end-to-end request-id correlation.

Thread-backed workers (real :class:`ExpansionHTTPServer` instances on
ephemeral ports) behind a real :class:`ClusterGateway`, as in
``tests/test_cluster.py`` — both access logs land in this process, so one
client-supplied ``X-Request-Id`` can be followed through the gateway log,
the worker log, and the response envelope.
"""

from __future__ import annotations

import json
import logging
import socket
import time
import urllib.error
import urllib.request

import pytest

from repro.cluster import ClusterConfig, ClusterGateway
from repro.config import ServiceConfig
from repro.core.base import Expander
from repro.obs import PROMETHEUS_CONTENT_TYPE
from repro.obs.top import render_dashboard
from repro.serve import ExpansionHTTPServer, ExpansionService
from repro.types import ExpansionResult

#: enough methods that a 2-worker ring owns some on each shard.
STUB_METHODS = tuple(f"stub{letter}" for letter in "abcdef")


class DashStubExpander(Expander):
    def __init__(self, salt: str):
        super().__init__()
        self.name = salt
        self.salt = sum(ord(ch) for ch in salt)

    def _expand(self, query, top_k):
        scored = [
            (eid, 1.0 / (1.0 + ((eid * 2654435761 + self.salt) % 4093)))
            for eid in self.candidate_ids(query)
        ]
        return ExpansionResult.from_scores(query.query_id, scored)


class SlowFitStub(DashStubExpander):
    def _fit(self, dataset):
        time.sleep(0.5)


def make_worker(dataset, **config_kwargs) -> ExpansionHTTPServer:
    factories = {
        method: (lambda _res, m=method: DashStubExpander(m))
        for method in STUB_METHODS
    }
    factories["slowfit"] = lambda _res: SlowFitStub("slowfit")
    service = ExpansionService(
        dataset,
        config=ServiceConfig(batch_wait_ms=0.0, port=0, **config_kwargs),
        factories=factories,
    )
    return ExpansionHTTPServer(service, port=0).start()


def make_gateway(dataset, servers, **config_kwargs) -> ClusterGateway:
    config = ClusterConfig(
        failover_cooldown_seconds=0.2, proxy_timeout_seconds=30.0, **config_kwargs
    )
    return ClusterGateway(
        [(f"worker-{i}", server.url) for i, server in enumerate(servers)],
        config=config,
        fingerprint=dataset.fingerprint(),
        port=0,
    ).start()


def http_get(url: str, headers: dict | None = None):
    request = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, response.read(), dict(response.headers)


def http_post(url: str, payload: dict, headers: dict | None = None):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


@pytest.fixture()
def fleet(tiny_dataset):
    """Two workers + gateway (with access logs on both tiers)."""
    servers = [
        make_worker(tiny_dataset, access_log=True),
        make_worker(tiny_dataset, access_log=True),
    ]
    gateway = make_gateway(tiny_dataset, servers, gateway_access_log=True)
    yield gateway, servers
    gateway.shutdown()
    for server in servers:
        try:
            server.shutdown()
        except Exception:
            pass  # one worker is shut down mid-test by design


class TestDashboard:
    def test_dashboard_joins_the_fleet_and_degrades_cleanly(self, fleet, tiny_dataset):
        gateway, servers = fleet
        query_id = tiny_dataset.queries[0].query_id
        for method in STUB_METHODS[:4]:
            status, envelope, _ = http_post(
                gateway.url + "/v1/expand", {"method": method, "query_id": query_id}
            )
            assert status == 200

        status, body, _ = http_get(gateway.url + "/v1/dashboard")
        assert status == 200
        data = json.loads(body)["data"]
        assert data["fleet"] == {
            "status": "ok", "healthy_workers": 2, "total_workers": 2,
        }
        assert data["cluster"]["requests"] >= 4
        assert data["cluster"]["latency_ms"]["count"] >= 4
        assert set(data["workers"]) == {"worker-0", "worker-1"}
        for shard in data["workers"].values():
            assert shard["healthy"] is True
            assert "cache_hit_rate" in shard
            assert "substrates_resident" in shard
        fitted_somewhere = [
            method
            for shard in data["workers"].values()
            for method in shard["fitted"]
        ]
        assert set(fitted_somewhere) == set(STUB_METHODS[:4])
        assert data["gateway"]["proxied"] >= 4

        # one worker dies mid-test: the dashboard reports it degraded.
        servers[1].shutdown()
        status, body, _ = http_get(gateway.url + "/v1/dashboard")
        assert status == 200
        data = json.loads(body)["data"]
        assert data["fleet"]["status"] == "degraded"
        assert data["fleet"]["healthy_workers"] == 1
        assert data["workers"]["worker-1"]["healthy"] is False

        frame = render_dashboard(data)
        assert "fleet DEGRADED (1/2 workers healthy)" in frame
        assert "worker-1" in frame and "DOWN" in frame

    def test_dashboard_surfaces_live_fit_phases(self, fleet):
        gateway, _servers = fleet
        status, envelope, _ = http_post(
            gateway.url + "/v1/fits", {"method": "slowfit"}
        )
        assert status == 202
        deadline = time.monotonic() + 5.0
        seen = None
        while time.monotonic() < deadline:
            _, body, _ = http_get(gateway.url + "/v1/dashboard")
            data = json.loads(body)["data"]
            jobs = [
                job
                for shard in data["workers"].values()
                if shard.get("healthy")
                for job in shard.get("fit_jobs", [])
            ]
            if jobs:
                seen = jobs
                break
            time.sleep(0.02)
        assert seen, "the running fit never appeared on the dashboard"
        assert seen[0]["method"] == "slowfit"
        assert seen[0]["status"] in ("queued", "running")
        assert "progress" in seen[0]
        frame = render_dashboard(data)
        assert "slowfit:" in frame

    def test_dashboard_html_rendering_is_self_contained(self, fleet, tiny_dataset):
        gateway, _servers = fleet
        query_id = tiny_dataset.queries[0].query_id
        http_post(
            gateway.url + "/v1/expand",
            {"method": STUB_METHODS[0], "query_id": query_id},
        )
        status, body, headers = http_get(gateway.url + "/v1/dashboard?format=html")
        assert status == 200
        assert headers["Content-Type"].startswith("text/html")
        page = body.decode("utf-8")
        assert page.startswith("<!doctype html>")
        assert '<meta http-equiv="refresh"' in page
        assert "worker-0" in page and "worker-1" in page
        # self-contained: no external scripts, stylesheets, or fetches.
        for marker in ("<script src", "<link", "http://", "https://", "fetch("):
            assert marker not in page

        # the JSON rendering is untouched by the HTML one.
        status, body, headers = http_get(gateway.url + "/v1/dashboard")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        assert json.loads(body)["data"]["fleet"]["total_workers"] == 2


class TestGatewayMetrics:
    def test_gateway_metrics_render_prometheus_text(self, fleet, tiny_dataset):
        gateway, _servers = fleet
        query_id = tiny_dataset.queries[0].query_id
        http_post(
            gateway.url + "/v1/expand",
            {"method": STUB_METHODS[0], "query_id": query_id},
        )
        status, body, headers = http_get(gateway.url + "/v1/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        text = body.decode("utf-8")
        assert "# TYPE repro_gateway_requests_total counter" in text
        assert "# TYPE repro_gateway_routed_total counter" in text
        assert f'fingerprint="{tiny_dataset.fingerprint()}"' in text
        assert 'worker="worker-0"' in text
        assert 'worker="worker-1"' in text

    def test_gateway_stats_wire_shape_is_a_registry_view(self, fleet, tiny_dataset):
        gateway, _servers = fleet
        query_id = tiny_dataset.queries[0].query_id
        http_post(
            gateway.url + "/v1/expand",
            {"method": STUB_METHODS[0], "query_id": query_id},
        )
        stats = gateway.stats()
        assert set(stats) == {
            "workers", "fingerprint", "virtual_nodes", "requests", "proxied",
            "failovers", "backend_errors", "no_backend_available", "routed",
            "sidelined",
        }
        assert stats["requests"] >= 1
        assert stats["proxied"] >= 1
        assert set(stats["routed"]) == {"worker-0", "worker-1"}
        assert sum(stats["routed"].values()) == stats["proxied"]


class TestClusterTelemetryExport:
    def test_fleet_ships_statsd_flushes_end_to_end(self, tiny_dataset):
        """Workers and gateway both push to one UDP statsd stub while a
        request is served — the CI cluster-smoke path for the export
        pipeline (background flush, zero requests blocked)."""
        sink = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sink.bind(("127.0.0.1", 0))
        sink.settimeout(10.0)
        target = f"127.0.0.1:{sink.getsockname()[1]}"

        servers = [
            make_worker(
                tiny_dataset,
                exporter="statsd",
                exporter_target=target,
                exporter_interval_seconds=0.1,
            )
        ]
        gateway = make_gateway(
            tiny_dataset,
            servers,
            gateway_exporter="statsd",
            gateway_exporter_target=target,
            gateway_exporter_interval_seconds=0.1,
        )
        try:
            query_id = tiny_dataset.queries[0].query_id
            status, envelope, _ = http_post(
                gateway.url + "/v1/expand",
                {"method": STUB_METHODS[0], "query_id": query_id},
            )
            assert status == 200  # serving never waits on the exporter

            lines: list[str] = []
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                payload, _addr = sink.recvfrom(65535)
                lines.extend(payload.decode("utf-8").split("\n"))
                if any(
                    line.startswith("repro_gateway_requests_total:")
                    for line in lines
                ) and any(
                    line.startswith("repro_service_requests_total:")
                    for line in lines
                ):
                    break
            assert any(
                line.startswith("repro_gateway_requests_total:") for line in lines
            ), lines
            assert any(
                line.startswith("repro_service_requests_total:") for line in lines
            ), lines
            # the flush self-metric increments just after the datagram goes
            # out, on the exporter thread — give it a beat.
            flushes = gateway.metrics.counter("obs_exporter_flushes_total")
            deadline = time.monotonic() + 5.0
            while flushes.total() < 1 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert flushes.total() >= 1
        finally:
            gateway.shutdown()
            for server in servers:
                server.shutdown()
            sink.close()


def _await_log_lines(caplog, logger_name: str, request_id: str, timeout: float = 5.0):
    """JSON records from ``logger_name``, waiting until one carries
    ``request_id`` (access logs land just after the response does)."""
    deadline = time.monotonic() + timeout
    while True:
        lines = [
            json.loads(record.message)
            for record in caplog.records
            if record.name == logger_name
        ]
        if any(line.get("request_id") == request_id for line in lines):
            return lines
        if time.monotonic() >= deadline:
            return lines
        time.sleep(0.01)


class TestRequestIdCorrelation:
    def test_one_client_id_spans_gateway_log_worker_log_and_envelope(
        self, fleet, tiny_dataset, caplog
    ):
        gateway, _servers = fleet
        query_id = tiny_dataset.queries[0].query_id
        client_id = "e2e-correlate-42"
        with caplog.at_level(logging.INFO, logger="repro.serve.access"):
            with caplog.at_level(logging.INFO, logger="repro.cluster.access"):
                status, envelope, headers = http_post(
                    gateway.url + "/v1/expand",
                    {"method": STUB_METHODS[0], "query_id": query_id},
                    headers={"X-Request-Id": client_id},
                )
                # access logs land just after the response bytes do, on the
                # handler threads — wait for them inside the capture window.
                worker_lines = _await_log_lines(
                    caplog, "repro.serve.access", client_id
                )
                gateway_lines = _await_log_lines(
                    caplog, "repro.cluster.access", client_id
                )
        assert status == 200
        assert envelope["request_id"] == client_id
        assert headers["X-Request-Id"] == client_id
        assert any(line["request_id"] == client_id for line in worker_lines)
        assert any(line["request_id"] == client_id for line in gateway_lines)
        matched = [line for line in gateway_lines if line["request_id"] == client_id]
        assert matched[0]["route"] == "/v1/expand"
        assert matched[0]["worker"] in ("worker-0", "worker-1")

    def test_malformed_client_id_is_replaced_at_the_gateway(
        self, fleet, tiny_dataset
    ):
        gateway, _servers = fleet
        query_id = tiny_dataset.queries[0].query_id
        status, envelope, headers = http_post(
            gateway.url + "/v1/expand",
            {"method": STUB_METHODS[0], "query_id": query_id},
            headers={"X-Request-Id": "not ok\x01"},
        )
        assert status == 200
        assert envelope["request_id"].startswith("req-")
        assert headers["X-Request-Id"] == envelope["request_id"]

    def test_scattered_batches_carry_the_client_id_to_every_shard(
        self, fleet, tiny_dataset, caplog
    ):
        gateway, _servers = fleet
        query_id = tiny_dataset.queries[0].query_id
        client_id = "batch-correlate-7"
        requests = [
            {"method": method, "query_id": query_id} for method in STUB_METHODS
        ]
        with caplog.at_level(logging.INFO, logger="repro.serve.access"):
            status, envelope, _ = http_post(
                gateway.url + "/v1/expand/batch",
                {"requests": requests},
                headers={"X-Request-Id": client_id},
            )
            worker_lines = _await_log_lines(caplog, "repro.serve.access", client_id)
        assert status == 200
        assert envelope["request_id"] == client_id
        batch_lines = [
            line
            for line in worker_lines
            if line.get("route") == "/v1/expand/batch"
        ]
        assert batch_lines, "no worker served a sub-batch?"
        assert all(line["request_id"] == client_id for line in batch_lines)
