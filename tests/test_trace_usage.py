"""Tests for distributed-trace identity, the searchable trace store, and
billing-grade usage metering.

Covers the W3C-style ``traceparent`` round trip, span-id disambiguation of
duplicate sibling names (while the pinned ``debug.timings`` wire shape stays
id-free), :class:`TraceCollector` semantics (head sampling determinism under
a seeded RNG, always-keep for slow/errored requests, eviction, the query
surface, and concurrent offer/query under fan-out), :class:`UsageMeter`
semantics (batch-amortized execute shares that sum to the execute wall-time,
cache-cost billing, fit attribution, the tenant cardinality cap, the JSONL
ledger + :func:`read_ledger`), the worker HTTP surface (``/v1/traces``,
trace-id response headers, access-log correlation), and the
``repro usage report`` CLI.
"""

from __future__ import annotations

import json
import logging
import random
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.cli import main as cli_main
from repro.config import ServiceConfig
from repro.core.base import Expander
from repro.exceptions import DatasetError, ServiceError
from repro.obs import (
    ANONYMOUS_TENANT,
    OVERFLOW_TENANT,
    Trace,
    TraceCollector,
    TraceContext,
    UsageMeter,
    activate,
    format_traceparent,
    parse_traceparent,
    read_ledger,
    span,
    tenant_scope,
)
from repro.serve import (
    ExpandOptions,
    ExpandRequest,
    ExpansionHTTPServer,
    ExpansionService,
)
from repro.serve.batcher import MicroBatcher
from repro.types import ExpansionResult

# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


class TraceStubExpander(Expander):
    name = "stub"

    def _fit(self, dataset) -> None:
        pass

    def _expand(self, query, top_k) -> ExpansionResult:
        scored = [(eid, 1.0 / (1.0 + eid)) for eid in self.dataset.entity_ids()]
        return ExpansionResult.from_scores(query.query_id, scored)


def make_service(dataset, **config_kwargs) -> ExpansionService:
    config = ServiceConfig(batch_wait_ms=0.0, **config_kwargs)
    return ExpansionService(
        dataset, config=config, factories={"stub": lambda _res: TraceStubExpander()}
    )


def http_get(url: str, headers: dict | None = None):
    request = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, response.read(), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, error.read(), dict(error.headers)


def http_post(url: str, payload: dict, headers: dict | None = None):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


# ---------------------------------------------------------------------------
# traceparent + span identity
# ---------------------------------------------------------------------------


class TestTraceparent:
    def test_round_trip(self):
        trace = Trace()
        context = trace.context()
        header = format_traceparent(context)
        assert header == f"00-{trace.trace_id}-{trace.span_id}-01"
        parsed = parse_traceparent(header)
        assert parsed == TraceContext(trace.trace_id, trace.span_id, True, None)

    def test_unsampled_flag_round_trips(self):
        header = format_traceparent(
            TraceContext("ab" * 16, "cd" * 8, sampled=False)
        )
        assert header.endswith("-00")
        assert parse_traceparent(header).sampled is False

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "garbage",
            "00-short-abcdefabcdefabcd-01",
            "00-" + "g" * 32 + "-abcdefabcdefabcd-01",  # non-hex trace id
            "00-" + "0" * 32 + "-abcdefabcdefabcd-01",  # all-zero trace id
            "00-" + "ab" * 16 + "-" + "0" * 16 + "-01",  # all-zero span id
            "ff-" + "ab" * 16 + "-abcdefabcdefabcd-01",  # forbidden version
            "00-" + "ab" * 16 + "-abcdefabcdefabcd",  # missing flags
            "00-" + "ab" * 16 + "-abcdefabcdefabcd-zz",
        ],
    )
    def test_malformed_headers_parse_to_none(self, header):
        assert parse_traceparent(header) is None

    def test_duplicate_sibling_names_stay_unambiguous(self):
        """Two same-named siblings get distinct span_ids, both pointing at
        the *specific* parent span instance via parent_id."""
        trace = Trace()
        with activate(trace):
            with span("outer"):
                with span("score_candidates"):
                    pass
                with span("score_candidates"):
                    pass
        full = {entry["span_id"]: entry for entry in trace.to_span_dicts()}
        outer = next(e for e in full.values() if e["name"] == "outer")
        siblings = [e for e in full.values() if e["name"] == "score_candidates"]
        assert len(siblings) == 2
        assert siblings[0]["span_id"] != siblings[1]["span_id"]
        for entry in siblings:
            assert entry["parent"] == "outer"
            assert entry["parent_id"] == outer["span_id"]

    def test_debug_timings_wire_shape_is_pinned_id_free(self, tiny_dataset):
        """``debug.timings`` predates span ids; the ids live only in the
        trace-store serialization (``to_span_dicts``), never in the pinned
        response-debug shape."""
        service = make_service(tiny_dataset)
        with service:
            response = service.submit(
                ExpandRequest(
                    method="stub",
                    query_id=tiny_dataset.queries[0].query_id,
                    options=ExpandOptions(top_k=5, include_timings=True),
                )
            )
        for entry in response.to_v1_dict()["debug"]["timings"]:
            assert set(entry) <= {"name", "start_ms", "duration_ms", "parent", "meta"}
            assert "span_id" not in entry and "parent_id" not in entry

    def test_graft_remote_rebases_and_skips_malformed(self):
        trace = Trace()
        trace.graft_remote(
            [
                {"name": "execute", "start_ms": 1.0, "duration_ms": 2.0,
                 "span_id": "aa" * 8},
                {"duration_ms": 1.0},  # no name: skipped
                "not-a-dict",  # skipped
            ],
            base_ms=100.0,
            parent="proxy",
            parent_id="bb" * 8,
        )
        spans = trace.spans()
        assert len(spans) == 1
        assert spans[0].start_ms == pytest.approx(101.0)
        assert spans[0].duration_ms == pytest.approx(2.0)
        assert spans[0].parent == "proxy"
        assert spans[0].parent_id == "bb" * 8


# ---------------------------------------------------------------------------
# TraceCollector
# ---------------------------------------------------------------------------


def finished_trace(**annotations) -> Trace:
    trace = Trace(request_id="req-t")
    with activate(trace):
        with span("work"):
            pass
    if annotations:
        trace.annotate(**annotations)
    return trace


class TestTraceCollector:
    def test_sampling_is_deterministic_under_a_seed(self):
        verdicts = [
            [
                TraceCollector(sample_rate=0.5, rng=random.Random(7)).sample()
                for _ in range(1)
            ]
            for _ in range(2)
        ]
        a = TraceCollector(sample_rate=0.5, rng=random.Random(7))
        b = TraceCollector(sample_rate=0.5, rng=random.Random(7))
        assert [a.sample() for _ in range(64)] == [b.sample() for _ in range(64)]
        assert verdicts[0] == verdicts[1]

    def test_rate_zero_never_samples_and_rate_one_always_does(self):
        off = TraceCollector(sample_rate=0.0)
        assert not any(off.sample() for _ in range(32))
        on = TraceCollector(sample_rate=1.0)
        assert all(on.sample() for _ in range(32))

    def test_always_keep_slow_and_errored_traces(self):
        collector = TraceCollector(sample_rate=0.0, slow_ms=50.0)
        assert not collector.offer(finished_trace(), duration_ms=10.0)
        assert collector.offer(finished_trace(), duration_ms=60.0)
        assert collector.offer(
            finished_trace(), duration_ms=1.0, error="UnknownMethodError"
        )
        kinds = {record["kept"] for record in collector.query()}
        assert kinds == {"slow", "error"}
        assert collector.stats()["discarded"] == 1

    def test_ring_evicts_oldest_and_reoffer_replaces_in_place(self):
        collector = TraceCollector(capacity=2, sample_rate=1.0)
        traces = [finished_trace() for _ in range(3)]
        for trace in traces:
            collector.offer(trace, duration_ms=1.0, sampled=True)
        assert collector.get(traces[0].trace_id) is None  # evicted
        assert collector.stats()["evicted"] == 1
        # a re-offered id replaces its record instead of double-counting.
        collector.offer(traces[2], duration_ms=9.0, sampled=True)
        assert collector.stats()["stored"] == 2
        assert collector.get(traces[2].trace_id)["duration_ms"] == 9.0

    def test_query_filters_and_limit(self):
        collector = TraceCollector(sample_rate=1.0)
        for index in range(6):
            collector.offer(
                finished_trace(),
                duration_ms=float(index),
                method="stub" if index % 2 == 0 else "other",
                tenant="acme" if index < 3 else "generic",
                error="Boom" if index == 5 else None,
                sampled=True,
            )
        assert len(collector.query()) == 6
        assert len(collector.query(method="stub")) == 3
        assert len(collector.query(tenant="acme")) == 3
        assert len(collector.query(min_duration_ms=4.0)) == 2
        assert len(collector.query(error=True)) == 1
        assert len(collector.query(error=False)) == 5
        assert len(collector.query(limit=2)) == 2
        newest = collector.query(limit=1)[0]
        assert newest["duration_ms"] == 5.0  # newest first
        assert "spans" not in newest and newest["span_count"] == 1

    def test_concurrent_offer_and_query_under_fan_out(self):
        collector = TraceCollector(capacity=64, sample_rate=1.0)
        errors: list[BaseException] = []

        def offerer(worker: int):
            try:
                for index in range(50):
                    collector.offer(
                        finished_trace(),
                        duration_ms=float(index),
                        method=f"m{worker}",
                        sampled=True,
                    )
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        def reader():
            try:
                for _ in range(100):
                    collector.query(limit=10)
                    collector.stats()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=offerer, args=(i,)) for i in range(4)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = collector.stats()
        assert stats["kept"] == 200
        assert stats["stored"] == 64
        assert stats["evicted"] == 200 - 64


# ---------------------------------------------------------------------------
# UsageMeter
# ---------------------------------------------------------------------------


class TestUsageMeter:
    def test_batch_amortized_shares_sum_to_execute_wall_time(self, tiny_dataset):
        """The billing invariant: however a batch coalesces, the sum of the
        riders' compute-seconds equals the execute wall-time."""
        meter = UsageMeter()
        release = threading.Event()

        def execute(method, top_k, queries, retrieval=None):
            release.wait(timeout=5.0)
            time.sleep(0.03)
            return [
                ExpansionResult.from_scores(query.query_id, [(1, 1.0)])
                for query in queries
            ]

        batcher = MicroBatcher(execute, max_batch_size=2, max_wait_ms=50.0, usage=meter)
        queries = tiny_dataset.queries[:2]

        def call(index):
            with tenant_scope(f"tenant-{index}"):
                future = batcher.submit("stub", queries[index], 10)
                if index == 1:
                    release.set()
                return future.result(timeout=10)

        try:
            with ThreadPoolExecutor(max_workers=2) as pool:
                results = list(pool.map(call, range(2)))
        finally:
            release.set()
            batcher.shutdown()
        assert all(results)
        tenants = meter.summary()["tenants"]
        billed = sum(bucket["compute_seconds"] for bucket in tenants.values())
        assert billed >= 0.03
        # riders in one pass split it evenly; solo riders pay full fare —
        # either way each tenant was billed something.
        for index in range(2):
            assert tenants[f"tenant-{index}"]["compute_seconds"] > 0.0
            assert tenants[f"tenant-{index}"]["requests"] == 1

    def test_unkeyed_traffic_bills_to_the_anonymous_tenant(self):
        meter = UsageMeter()
        meter.charge_expand(None, 0.5)
        assert meter.summary()["tenants"][ANONYMOUS_TENANT]["compute_seconds"] == 0.5

    def test_tenant_cardinality_cap_overflows_to_one_bucket(self):
        meter = UsageMeter(max_tenants=4)
        for index in range(10):
            meter.charge_expand(f"tenant-{index}", 1.0)
        summary = meter.summary()
        # 4 real tenants plus the overflow bucket itself.
        assert summary["tracked"] == 5
        assert summary["dropped"] == 6  # tenants 4..9 aggregated
        overflow = summary["tenants"][OVERFLOW_TENANT]
        # nothing is lost: the overflow bucket absorbs the excess seconds.
        total = sum(b["compute_seconds"] for b in summary["tenants"].values())
        assert total == pytest.approx(10.0)
        assert overflow["compute_seconds"] > 0.0

    def test_ledger_rollup_and_read_back(self, tmp_path):
        ledger = tmp_path / "usage.jsonl"
        clock = [1000.0]
        meter = UsageMeter(
            ledger_path=str(ledger),
            rollup_interval_seconds=30.0,
            clock=lambda: clock[0],
        )
        meter.charge_expand("acme", 0.25)
        meter.charge_expand("acme", 0.25, cached=True)
        meter.charge_fit("generic", 2.0)
        assert not ledger.exists()  # interval not elapsed yet
        clock[0] += 31.0
        meter.charge_expand("acme", 0.5)
        assert ledger.exists()
        meter.charge_expand("generic", 1.0)
        meter.close()  # force-flushes the open window
        lines = [json.loads(line) for line in ledger.read_text().splitlines()]
        assert all(line["event"] == "usage" for line in lines)
        totals = read_ledger(str(ledger))
        assert totals["acme"]["requests"] == 3
        assert totals["acme"]["cache_hits"] == 1
        assert totals["acme"]["compute_seconds"] == pytest.approx(1.0)
        assert totals["generic"]["fits"] == 1
        assert totals["generic"]["fit_seconds"] == pytest.approx(2.0)
        assert totals["generic"]["compute_seconds"] == pytest.approx(3.0)

    def test_read_ledger_skips_malformed_lines(self, tmp_path):
        ledger = tmp_path / "usage.jsonl"
        ledger.write_text(
            "not json\n"
            '{"event": "other"}\n'
            '{"event": "usage", "tenant": 7}\n'
            '{"event": "usage", "tenant": "ok", "requests": 2, '
            '"compute_seconds": 1.5}\n'
        )
        totals = read_ledger(str(ledger))
        assert set(totals) == {"ok"}
        assert totals["ok"]["requests"] == 2


# ---------------------------------------------------------------------------
# service integration: tracing + metering through the serving path
# ---------------------------------------------------------------------------


class TestServiceIntegration:
    def test_sampled_request_lands_in_the_trace_store(self, tiny_dataset):
        service = make_service(
            tiny_dataset, trace_sample_rate=1.0, trace_sample_seed=7
        )
        query_id = tiny_dataset.queries[0].query_id
        with service:
            with tenant_scope("acme"):
                service.submit(ExpandRequest(method="stub", query_id=query_id))
            records = service.traces.query()
            assert len(records) == 1
            record = records[0]
            assert record["method"] == "stub"
            assert record["tenant"] == "acme"
            assert record["kept"] == "sampled"
            full = service.traces.get(record["trace_id"])
            names = {entry["name"] for entry in full["spans"]}
            assert {"cache_lookup", "batch", "execute"} <= names
            stats = service.stats()
            assert stats["traces"]["kept"] == 1

    def test_rate_zero_keeps_the_hot_path_trace_free(self, tiny_dataset):
        service = make_service(tiny_dataset, trace_sample_rate=0.0)
        query_id = tiny_dataset.queries[0].query_id
        with service:
            service.submit(ExpandRequest(method="stub", query_id=query_id))
            assert service.traces.stats()["stored"] == 0
            assert service.stats()["traces"]["sample_rate"] == 0.0

    def test_errored_requests_are_always_kept(self, tiny_dataset):
        service = make_service(tiny_dataset, trace_sample_rate=0.0, slow_query_ms=1e9)
        with service:
            with pytest.raises(Exception):
                service.submit(ExpandRequest(method="nope", query_id="missing"))
            kept = service.traces.query(error=True)
            assert len(kept) == 1
            assert kept[0]["kept"] == "error"

    def test_stats_omit_traces_and_usage_when_disabled(self, tiny_dataset):
        service = make_service(tiny_dataset)
        with service:
            stats = service.stats()
        assert "traces" not in stats
        assert "usage" not in stats

    def test_usage_meters_expands_cache_hits_and_fits(self, tiny_dataset):
        service = make_service(tiny_dataset, usage_metering=True)
        query_id = tiny_dataset.queries[0].query_id
        with service:
            with tenant_scope("acme"):
                service.submit(ExpandRequest(method="stub", query_id=query_id))
                service.submit(ExpandRequest(method="stub", query_id=query_id))
                job = service.start_fit("stub")
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if service.fit_job(job.job_id).status in ("succeeded", "failed"):
                    break
                time.sleep(0.01)
            usage = service.stats()["usage"]
        acme = usage["tenants"]["acme"]
        assert acme["requests"] == 2
        assert acme["cache_hits"] == 1  # second submit hit the result cache
        assert acme["fits"] == 1
        assert acme["compute_seconds"] > 0.0
        assert acme["fit_seconds"] >= 0.0

    def test_usage_ledger_sum_matches_in_memory_totals(
        self, tiny_dataset, tmp_path
    ):
        ledger = tmp_path / "usage.jsonl"
        service = make_service(tiny_dataset, usage_ledger=str(ledger))
        query_id = tiny_dataset.queries[0].query_id
        with service:
            with tenant_scope("acme"):
                for _ in range(3):
                    service.submit(
                        ExpandRequest(
                            method="stub",
                            query_id=query_id,
                            options=ExpandOptions(use_cache=False),
                        )
                    )
            in_memory = service.stats()["usage"]["tenants"]["acme"]
        # close() force-flushed the window; the ledger sums to the totals.
        totals = read_ledger(str(ledger))
        assert totals["acme"]["requests"] == 3
        assert totals["acme"]["compute_seconds"] == pytest.approx(
            in_memory["compute_seconds"], abs=1e-6
        )


# ---------------------------------------------------------------------------
# worker HTTP surface
# ---------------------------------------------------------------------------


class TestWorkerTraceSurface:
    @pytest.fixture()
    def server(self, tiny_dataset):
        service = make_service(
            tiny_dataset, trace_sample_rate=1.0, access_log=True
        )
        server = ExpansionHTTPServer(service, port=0).start()
        yield server
        server.shutdown()

    def test_traced_request_surfaces_id_and_is_fetchable(
        self, server, tiny_dataset, caplog
    ):
        query_id = tiny_dataset.queries[0].query_id
        with caplog.at_level(logging.INFO, logger="repro.serve.access"):
            status, _envelope, headers = http_post(
                server.url + "/v1/expand", {"method": "stub", "query_id": query_id}
            )
            assert status == 200
            trace_id = headers["X-Repro-Trace-Id"]
            # the access-log line lands just after the response bytes do, on
            # the handler thread — wait for it inside the capture window.
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                logged = [
                    json.loads(record.message)
                    for record in caplog.records
                    if record.name == "repro.serve.access"
                ]
                if any(line.get("trace_id") == trace_id for line in logged):
                    break
                time.sleep(0.01)
        assert len(trace_id) == 32
        assert any(line.get("trace_id") == trace_id for line in logged)

        status, body, _ = http_get(server.url + f"/v1/traces/{trace_id}")
        assert status == 200
        trace = json.loads(body)["data"]["trace"]
        assert trace["trace_id"] == trace_id
        names = {entry["name"] for entry in trace["spans"]}
        assert "execute" in names

        status, body, _ = http_get(server.url + "/v1/traces?method=stub&limit=5")
        assert status == 200
        rows = json.loads(body)["data"]["traces"]
        assert any(row["trace_id"] == trace_id for row in rows)

    def test_remote_context_is_continued_and_spans_returned(
        self, server, tiny_dataset
    ):
        query_id = tiny_dataset.queries[0].query_id
        upstream = Trace()
        header = format_traceparent(upstream.context())
        status, _envelope, headers = http_post(
            server.url + "/v1/expand",
            {"method": "stub", "query_id": query_id},
            headers={"traceparent": header},
        )
        assert status == 200
        assert headers["X-Repro-Trace-Id"] == upstream.trace_id
        fragment = json.loads(headers["X-Repro-Trace"])
        assert fragment["trace_id"] == upstream.trace_id
        assert any(entry["name"] == "execute" for entry in fragment["spans"])

    def test_unknown_trace_id_is_404_and_disabled_tracing_is_400(
        self, server, tiny_dataset
    ):
        status, body, _ = http_get(server.url + "/v1/traces/" + "ab" * 16)
        assert status == 404
        assert json.loads(body)["error"]["code"] == "not_found"

        service = make_service(tiny_dataset)
        bare = ExpansionHTTPServer(service, port=0).start()
        try:
            status, body, _ = http_get(bare.url + "/v1/traces")
            assert status == 400
            assert json.loads(body)["error"]["code"] == "invalid_request"
        finally:
            bare.shutdown()

    def test_malformed_trace_filters_are_400(self, server):
        for query in ("min_duration_ms=abc", "error=maybe", "limit=x"):
            status, body, _ = http_get(server.url + "/v1/traces?" + query)
            assert status == 400, query
            assert json.loads(body)["error"]["code"] == "invalid_request"


# ---------------------------------------------------------------------------
# client SDK accessors
# ---------------------------------------------------------------------------


class TestClientAccessors:
    def test_traces_and_usage_through_the_in_process_client(self, tiny_dataset):
        from repro.client import ExpansionClient

        service = make_service(
            tiny_dataset, trace_sample_rate=1.0, usage_metering=True
        )
        with service:
            client = ExpansionClient.in_process(service)
            client.expand("stub", query_id=tiny_dataset.queries[0].query_id)
            rows = client.traces(method="stub", limit=5)
            assert rows and rows[0]["method"] == "stub"
            tree = client.trace(rows[0]["trace_id"])
            assert tree["trace_id"] == rows[0]["trace_id"]
            assert tree["spans"]
            usage = client.usage()
            assert usage is not None and usage["tenants"]
            with pytest.raises(DatasetError):
                client.trace("ab" * 16)

    def test_usage_is_none_when_metering_is_off(self, tiny_dataset):
        from repro.client import ExpansionClient

        service = make_service(tiny_dataset)
        with service:
            client = ExpansionClient.in_process(service)
            assert client.usage() is None
            with pytest.raises(ServiceError):
                client.traces()


# ---------------------------------------------------------------------------
# repro usage report CLI
# ---------------------------------------------------------------------------


class TestUsageReportCli:
    def test_report_sums_ledgers_into_a_tenant_table(self, tmp_path, capsys):
        first = tmp_path / "usage.jsonl.8100"
        second = tmp_path / "usage.jsonl.8101"
        first.write_text(
            '{"event": "usage", "tenant": "acme", "requests": 2, "cache_hits": 1, '
            '"fits": 0, "compute_seconds": 1.5, "fit_seconds": 0.0}\n'
        )
        second.write_text(
            '{"event": "usage", "tenant": "acme", "requests": 1, "cache_hits": 0, '
            '"fits": 1, "compute_seconds": 0.5, "fit_seconds": 0.25}\n'
            '{"event": "usage", "tenant": "generic", "requests": 4, "cache_hits": 0, '
            '"fits": 0, "compute_seconds": 2.0, "fit_seconds": 0.0}\n'
        )
        code = cli_main(
            ["usage", "report", "--ledger", str(first), str(second)]
        )
        out = capsys.readouterr().out
        assert code == 0
        lines = out.splitlines()
        assert lines[0].startswith("TENANT")
        acme = next(line for line in lines if line.startswith("acme"))
        fields = acme.split()
        assert fields[1] == "3"  # requests
        assert fields[2] == "1"  # cached
        assert fields[3] == "1"  # fits
        assert float(fields[4]) == pytest.approx(2.0)  # compute seconds
        assert any(line.startswith("TOTAL") for line in lines)
        total_line = next(line for line in lines if line.startswith("TOTAL"))
        assert float(total_line.split()[-1]) == pytest.approx(4.0)

    def test_report_on_an_empty_ledger_is_clean(self, tmp_path, capsys):
        empty = tmp_path / "usage.jsonl"
        empty.write_text("")
        assert cli_main(["usage", "report", "--ledger", str(empty)]) == 0
        assert "no usage records" in capsys.readouterr().out

    def test_missing_ledger_is_an_error(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert cli_main(["usage", "report", "--ledger", str(missing)]) == 1
        assert "cannot read ledger" in capsys.readouterr().err
