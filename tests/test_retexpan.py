"""Tests for the RetExpan framework: expansion scoring, contrastive learning,
and the end-to-end pipeline."""

import numpy as np
import pytest

from repro.config import ContrastiveConfig, RetExpanConfig
from repro.eval.evaluator import Evaluator
from repro.exceptions import ExpansionError, ModelError
from repro.retexpan.contrastive import UltraContrastiveLearner
from repro.retexpan.expansion import positive_similarity_scores, top_k_expansion
from repro.retexpan.pipeline import RetExpan


class TestExpansionScoring:
    def test_scores_bounded_by_cosine_range(self):
        vectors = {i: np.random.default_rng(i).normal(size=8) for i in range(10)}
        scores = positive_similarity_scores(list(range(5)), [5, 6], vectors)
        assert all(-1.0 - 1e-9 <= s <= 1.0 + 1e-9 for s in scores.values())

    def test_identical_vector_scores_highest(self):
        vectors = {0: np.array([1.0, 0.0]), 1: np.array([1.0, 0.05]), 2: np.array([0.0, 1.0])}
        scores = positive_similarity_scores([1, 2], [0], vectors)
        assert scores[1] > scores[2]

    def test_missing_seed_representations_raise(self):
        with pytest.raises(ExpansionError):
            positive_similarity_scores([0], [99], {0: np.ones(4)})

    def test_missing_candidates_skipped(self):
        vectors = {0: np.ones(4), 1: np.ones(4)}
        scores = positive_similarity_scores([1, 7], [0], vectors)
        assert set(scores) == {1}

    def test_top_k_expansion_sorted_and_truncated(self):
        scores = {1: 0.3, 2: 0.9, 3: 0.5, 4: 0.9}
        top = top_k_expansion(scores, k=3)
        assert [eid for eid, _ in top] == [2, 4, 3]

    def test_top_k_invalid_k(self):
        with pytest.raises(ExpansionError):
            top_k_expansion({1: 0.5}, k=0)


class TestContrastiveLearner:
    def test_unfitted_projection_raises(self, tiny_dataset, sample_query):
        learner = UltraContrastiveLearner()
        with pytest.raises(ModelError):
            learner.project(0, sample_query)

    def test_fit_and_project(self, tiny_dataset, resources):
        config = ContrastiveConfig(epochs=1, mined_list_size=5, num_other_class_entities=10)
        learner = UltraContrastiveLearner(config).fit(
            tiny_dataset,
            resources.entity_representations(True),
            resources.oracle(),
            queries=tiny_dataset.queries[:6],
        )
        assert learner.is_fitted
        query = tiny_dataset.queries[0]
        entity_id = tiny_dataset.positive_targets(query).pop()
        vector = learner.project(entity_id, query)
        assert np.isclose(np.linalg.norm(vector), 1.0)
        assert vector.shape == (config.projection_dim,)

    def test_mined_lists_recorded_per_query(self, tiny_dataset, resources):
        config = ContrastiveConfig(epochs=1, mined_list_size=5, num_other_class_entities=10)
        queries = tiny_dataset.queries[:4]
        learner = UltraContrastiveLearner(config).fit(
            tiny_dataset, resources.entity_representations(True), resources.oracle(), queries
        )
        assert set(learner.mined) == {q.query_id for q in queries}
        for mined_pos, mined_neg in learner.mined.values():
            assert not set(mined_pos) & set(mined_neg)

    def test_projected_vectors_batch(self, tiny_dataset, resources):
        config = ContrastiveConfig(epochs=1, mined_list_size=5, num_other_class_entities=10)
        query = tiny_dataset.queries[0]
        learner = UltraContrastiveLearner(config).fit(
            tiny_dataset, resources.entity_representations(True), resources.oracle(), [query]
        )
        ids = tiny_dataset.entity_ids()[:20]
        projected = learner.projected_vectors(ids, query)
        assert set(projected) <= set(ids)
        assert all(np.isclose(np.linalg.norm(v), 1.0) for v in projected.values())


@pytest.fixture(scope="module")
def retexpan(tiny_dataset, resources):
    return RetExpan(resources=resources).fit(tiny_dataset)


class TestRetExpanPipeline:
    def test_name_reflects_configuration(self):
        assert RetExpan().name == "RetExpan"
        assert RetExpan(RetExpanConfig(use_contrastive=True)).name == "RetExpan + Contrast"
        assert RetExpan(name="custom").name == "custom"

    def test_unfitted_expand_raises(self, sample_query):
        with pytest.raises(ExpansionError):
            RetExpan().expand(sample_query)

    def test_expansion_excludes_seeds_and_respects_top_k(self, retexpan, sample_query):
        result = retexpan.expand(sample_query, top_k=50)
        assert len(result.ranking) == 50
        seeds = set(sample_query.positive_seed_ids) | set(sample_query.negative_seed_ids)
        assert not (set(result.entity_ids()) & seeds)

    def test_scores_monotonically_usable(self, retexpan, sample_query):
        result = retexpan.expand(sample_query, top_k=30)
        assert len(set(result.entity_ids())) == 30

    def test_expansion_finds_positive_targets(self, retexpan, tiny_dataset, sample_query):
        """Top-ranked entities should contain clearly more positives than expected by chance."""
        result = retexpan.expand(sample_query, top_k=20)
        positives = tiny_dataset.positive_targets(sample_query)
        hits = sum(1 for eid in result.entity_ids() if eid in positives)
        chance = 20 * len(positives) / tiny_dataset.num_entities
        assert hits > chance * 2

    def test_expansion_mostly_stays_in_fine_class(self, retexpan, tiny_dataset, sample_query):
        fine_class = tiny_dataset.ultra_class(sample_query.class_id).fine_class
        result = retexpan.expand(sample_query, top_k=20)
        same = sum(
            1
            for eid in result.entity_ids()
            if tiny_dataset.entity(eid).fine_class == fine_class
        )
        assert same >= 14

    def test_negative_rerank_reduces_negative_intrusion(self, tiny_dataset, resources):
        evaluator = Evaluator(tiny_dataset, max_queries=12)
        with_rerank = evaluator.evaluate(RetExpan(resources=resources).fit(tiny_dataset))
        without = evaluator.evaluate(
            RetExpan(
                RetExpanConfig(use_negative_rerank=False), resources=resources, name="no-rr"
            ).fit(tiny_dataset)
        )
        assert with_rerank.average("neg") <= without.average("neg") + 1e-9

    def test_entity_prediction_ablation_changes_representation(self, tiny_dataset, resources):
        """The "- Entity prediction" ablation must swap in the low-capacity
        pretrained representation (the quality gap itself is asserted on the
        benchmark-scale dataset, where the refined encoder has enough data)."""
        evaluator = Evaluator(tiny_dataset, max_queries=12)
        full = RetExpan(resources=resources).fit(tiny_dataset)
        ablated = RetExpan(
            RetExpanConfig(use_entity_prediction=False), resources=resources, name="no-ep"
        ).fit(tiny_dataset)
        sample_id = tiny_dataset.entity_ids()[0]
        assert (
            ablated.representations.hidden[sample_id].shape[0]
            < full.representations.hidden[sample_id].shape[0]
        )
        full_report = evaluator.evaluate(full)
        ablated_report = evaluator.evaluate(ablated)
        assert full_report.average("comb") > 40.0
        assert ablated_report.average("comb") > 40.0

    def test_contrastive_variant_runs_and_projects(self, tiny_dataset, resources):
        evaluator = Evaluator(tiny_dataset, max_queries=6)
        config = RetExpanConfig(
            use_contrastive=True,
            contrastive=ContrastiveConfig(epochs=1, mined_list_size=5, num_other_class_entities=10),
        )
        expander = RetExpan(
            config, resources=resources, contrastive_queries=evaluator.queries
        ).fit(tiny_dataset)
        assert expander.contrastive_learner is not None
        report = evaluator.evaluate(expander)
        assert report.average("comb") > 40.0

    def test_representations_property(self, retexpan, tiny_dataset):
        assert len(retexpan.representations.hidden) == tiny_dataset.num_entities

    def test_results_are_deterministic(self, retexpan, sample_query):
        first = retexpan.expand(sample_query, top_k=25).entity_ids()
        second = retexpan.expand(sample_query, top_k=25).entity_ids()
        assert first == second
