"""Tests for the masked-entity context encoder (BERT substitute)."""

import numpy as np
import pytest

from repro.config import EncoderConfig
from repro.exceptions import ModelError
from repro.lm.context_encoder import ContextEncoder, EntityRepresentations


@pytest.fixture(scope="module")
def trained_encoder(tiny_dataset):
    config = EncoderConfig(epochs=2, embedding_dim=32, hidden_dim=48, seed=5)
    return ContextEncoder(config).fit(
        tiny_dataset.corpus, tiny_dataset.entities(), pretrained=None, train=True
    )


class TestLifecycle:
    def test_unfitted_encoder_raises(self):
        encoder = ContextEncoder(EncoderConfig(epochs=0))
        with pytest.raises(ModelError):
            encoder.encode_masked_text("[MASK] is a phone brand")
        with pytest.raises(ModelError):
            encoder.predict_distribution("[MASK] is a phone brand")

    def test_fit_marks_fitted(self, trained_encoder):
        assert trained_encoder.is_fitted

    def test_hidden_dim_reflects_training(self, tiny_dataset):
        config = EncoderConfig(epochs=0, embedding_dim=32, hidden_dim=48)
        untrained = ContextEncoder(config).fit(
            tiny_dataset.corpus, tiny_dataset.entities(), train=False
        )
        assert untrained.hidden_dim == 32
        trained_dim = ContextEncoder(
            EncoderConfig(epochs=1, embedding_dim=32, hidden_dim=48)
        ).fit(tiny_dataset.corpus, tiny_dataset.entities()[:100]).hidden_dim
        assert trained_dim == 32 + 48


class TestEncoding:
    def test_encode_masked_text_shape(self, trained_encoder):
        vector = trained_encoder.encode_masked_text("[MASK] ships Android handsets.")
        assert vector.shape == (trained_encoder.hidden_dim,)
        assert np.isfinite(vector).all()

    def test_text_without_mask_still_encodes(self, trained_encoder):
        vector = trained_encoder.encode_masked_text("ships Android handsets.")
        assert np.isfinite(vector).all()

    def test_similar_contexts_have_similar_encodings(self, trained_encoder):
        android_a = trained_encoder.encode_masked_text(
            "[MASK] is a mobile phone brand that ships handsets running the Android operating system."
        )
        android_b = trained_encoder.encode_masked_text(
            "Reviewers note that [MASK] ships handsets running the Android operating system across its current lineup."
        )
        country = trained_encoder.encode_masked_text(
            "[MASK] is located on the African continent and maintains regional trade agreements."
        )

        def cos(a, b):
            return float(np.dot(a, b) / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-12))

        assert cos(android_a, android_b) > cos(android_a, country)

    def test_predict_distribution_is_probability(self, trained_encoder, tiny_dataset):
        probs = trained_encoder.predict_distribution("[MASK] ships Android handsets.")
        assert probs.shape == (tiny_dataset.num_entities,)
        assert probs.min() >= 0.0
        assert probs.sum() == pytest.approx(1.0, abs=1e-6)


class TestEntityRepresentations:
    def test_all_entities_represented(self, trained_encoder, tiny_dataset):
        reps = trained_encoder.entity_representations(
            tiny_dataset.corpus, tiny_dataset.entities(), with_distributions=False
        )
        assert len(reps.hidden) == tiny_dataset.num_entities

    def test_distribution_representations_optional(self, trained_encoder, tiny_dataset):
        entities = tiny_dataset.entities()[:30]
        with_dist = trained_encoder.entity_representations(tiny_dataset.corpus, entities)
        without = trained_encoder.entity_representations(
            tiny_dataset.corpus, entities, with_distributions=False
        )
        assert len(with_dist.distribution) == len(entities)
        assert len(without.distribution) == 0

    def test_representation_container_api(self, trained_encoder, tiny_dataset):
        entities = tiny_dataset.entities()[:10]
        reps = trained_encoder.entity_representations(tiny_dataset.corpus, entities)
        ids = reps.ids()
        assert ids == sorted(e.entity_id for e in entities)
        matrix = reps.matrix(ids)
        assert matrix.shape == (len(ids), trained_encoder.hidden_dim)
        assert reps.has(ids[0])
        with pytest.raises(ModelError):
            reps.vector(10**9)

    def test_entity_prediction_improves_attribute_separation(self, tiny_dataset, resources):
        """Trained representations should separate attribute values at least as
        well as the ablated (untrained) ones — the mechanism behind Table III."""
        trained = resources.entity_representations(trained=True)
        untrained = resources.entity_representations(trained=False)
        countries = [e for e in tiny_dataset.entities() if e.fine_class == "countries"][:60]

        def separation(reps: EntityRepresentations) -> float:
            same, diff = [], []
            for i, a in enumerate(countries):
                for b in countries[i + 1 : i + 5]:
                    va, vb = reps.hidden[a.entity_id], reps.hidden[b.entity_id]
                    sim = float(
                        np.dot(va, vb) / (np.linalg.norm(va) * np.linalg.norm(vb) + 1e-12)
                    )
                    if a.attributes["continent"] == b.attributes["continent"]:
                        same.append(sim)
                    else:
                        diff.append(sim)
            return float(np.mean(same) - np.mean(diff))

        assert separation(trained) >= separation(untrained) - 0.02

    def test_deterministic_given_seed(self, tiny_dataset):
        config = EncoderConfig(epochs=1, embedding_dim=24, hidden_dim=32, seed=3)
        entities = tiny_dataset.entities()[:80]
        a = ContextEncoder(config).fit(tiny_dataset.corpus, entities)
        b = ContextEncoder(config).fit(tiny_dataset.corpus, entities)
        rep_a = a.entity_representations(tiny_dataset.corpus, entities, with_distributions=False)
        rep_b = b.entity_representations(tiny_dataset.corpus, entities, with_distributions=False)
        sample = entities[0].entity_id
        assert np.allclose(rep_a.hidden[sample], rep_b.hidden[sample])
