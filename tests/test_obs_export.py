"""Tests for the telemetry export pipeline and fit-progress reporting.

Covers the push-exporter delta semantics, the failure modes the tentpole
promises (sink down at startup, sink dying mid-run, clean drain on
shutdown — always retry/backoff then drop-and-count, never block), the
statsd line protocol end-to-end over a real UDP socket, the OTLP-flavored
JSON document shape, the golden OpenMetrics exemplar rendering, slow-query
log rotation, :class:`ProgressReporter` composition, the causal-LM fit's
monotonic progress, and the ``FitJob`` wire document shape.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, HTTPServer

import pytest

from repro.api.jobs import JobManager
from repro.config import CausalLMConfig, ServiceConfig
from repro.lm.causal_lm import CausalEntityLM
from repro.obs import MetricsRegistry, build_exporter, request_scope
from repro.obs.export import (
    JsonHttpExporter,
    PushExporter,
    StatsdExporter,
    MAX_DATAGRAM_BYTES,
)
from repro.obs.progress import (
    NULL_PROGRESS,
    PHASE_WINDOWS,
    ProgressReporter,
    phase_window,
)
from repro.obs.slowlog import SlowQueryLog
from repro.serve import ExpandRequest, ExpansionService

# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


class RecordingExporter(PushExporter):
    """Captures shipped batches; optionally fails the next N ship attempts."""

    kind = "recording"

    def __init__(self, registry, **kwargs):
        kwargs.setdefault("backoff_seconds", 0.0)
        super().__init__(registry, **kwargs)
        self.batches: list[list[dict]] = []
        self.fail_attempts = 0
        self.ship_attempts = 0

    def _ship(self, batch):
        self.ship_attempts += 1
        if self.fail_attempts > 0:
            self.fail_attempts -= 1
            raise ConnectionError("sink is down")
        self.batches.append([dict(entry) for entry in batch])


def udp_sink():
    """A bound UDP socket standing in for a statsd server."""
    sink = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    sink.bind(("127.0.0.1", 0))
    sink.settimeout(5.0)
    return sink, sink.getsockname()[1]


def recv_lines(sink, datagrams: int = 1) -> list[str]:
    lines: list[str] = []
    for _ in range(datagrams):
        payload, _addr = sink.recvfrom(65535)
        lines.extend(payload.decode("utf-8").split("\n"))
    return lines


# ---------------------------------------------------------------------------
# delta semantics
# ---------------------------------------------------------------------------


class TestPushExporterDeltas:
    def test_counters_ship_positive_deltas_only(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_t_requests_total")
        exporter = RecordingExporter(registry)

        counter.inc(3, method="a")
        exporter.run_once()
        first = {e["name"]: e for e in exporter.batches[-1]}
        assert first["repro_t_requests_total"]["delta"] == 3

        counter.inc(2, method="a")
        exporter.run_once()
        second = {e["name"]: e for e in exporter.batches[-1]}
        assert second["repro_t_requests_total"]["delta"] == 2

    def test_unchanged_counters_do_not_reship(self):
        registry = MetricsRegistry()
        registry.counter("repro_t_hits_total").inc()
        exporter = RecordingExporter(registry)
        assert exporter.run_once() > 0
        exporter.run_once()
        # The counter didn't move, so it must not appear in later batches
        # (the exporter's own flush counters may).
        names = {e["name"] for batch in exporter.batches[1:] for e in batch}
        assert "repro_t_hits_total" not in names

    def test_gauges_ship_current_value_every_flush(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_t_resident")
        exporter = RecordingExporter(registry)
        gauge.set(4)
        exporter.run_once()
        exporter.run_once()
        for batch in exporter.batches:
            entry = next(e for e in batch if e["name"] == "repro_t_resident")
            assert entry["value"] == 4

    def test_histograms_ship_window_deltas(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_t_ms", buckets=(1.0, 10.0))
        exporter = RecordingExporter(registry)
        hist.observe(0.5)
        hist.observe(5.0)
        exporter.run_once()
        entry = next(
            e for e in exporter.batches[-1] if e["name"] == "repro_t_ms"
        )
        assert entry["delta_count"] == 2
        assert entry["delta_sum"] == pytest.approx(5.5)
        assert entry["buckets"] == [["1", 1], ["10", 2], ["+Inf", 2]]

        hist.observe(0.5)
        exporter.run_once()
        entry = next(
            e for e in exporter.batches[-1] if e["name"] == "repro_t_ms"
        )
        assert entry["delta_count"] == 1
        assert entry["delta_sum"] == pytest.approx(0.5)


# ---------------------------------------------------------------------------
# failure modes: retry, backoff, drop-and-count, drain
# ---------------------------------------------------------------------------


class TestExporterFailureModes:
    def test_sink_down_at_startup_drops_and_counts(self):
        registry = MetricsRegistry()
        registry.counter("repro_t_total").inc(7)
        exporter = RecordingExporter(registry, max_retries=2)
        exporter.fail_attempts = 10  # every attempt fails

        assert exporter.run_once() == 0
        # initial attempt + 2 retries, then the batch dropped.
        assert exporter.ship_attempts == 3
        assert registry.counter("obs_exporter_retries_total").total() == 2
        assert registry.counter("obs_exporter_dropped_series_total").total() == 1
        assert registry.counter("obs_exporter_flushes_total").total() == 0
        assert "ConnectionError" in exporter.last_error

    def test_dropped_window_is_lost_not_buffered(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_t_total")
        exporter = RecordingExporter(registry, max_retries=0)

        counter.inc(5)
        exporter.fail_attempts = 1
        exporter.run_once()  # the 5 is dropped, baseline still advances

        counter.inc(2)
        assert exporter.run_once() > 0
        entry = next(
            e for e in exporter.batches[-1] if e["name"] == "repro_t_total"
        )
        assert entry["delta"] == 2  # only the post-drop window ships

    def test_sink_dying_mid_run_recovers_on_next_flush(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_t_total")
        exporter = RecordingExporter(registry, max_retries=1)

        counter.inc()
        assert exporter.run_once() > 0  # healthy flush
        assert exporter.last_error is None

        counter.inc()
        exporter.fail_attempts = 10
        assert exporter.run_once() == 0  # sink died: retried, then dropped
        assert exporter.last_error is not None
        drops = registry.counter("obs_exporter_dropped_series_total").total()
        assert drops >= 1

        counter.inc()
        exporter.fail_attempts = 0
        assert exporter.run_once() > 0  # sink back: shipping resumes
        assert exporter.last_error is None

    def test_shutdown_drains_one_final_batch(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_t_total")
        exporter = RecordingExporter(registry, interval_seconds=3600.0)
        exporter.start()
        counter.inc(9)
        exporter.shutdown()
        assert exporter._thread is None
        entry = next(
            e
            for batch in exporter.batches
            for e in batch
            if e["name"] == "repro_t_total"
        )
        assert entry["delta"] == 9

    def test_retry_backoff_collapses_during_shutdown(self):
        registry = MetricsRegistry()
        registry.counter("repro_t_total").inc()
        exporter = RecordingExporter(
            registry, max_retries=3, backoff_seconds=30.0
        )
        exporter.fail_attempts = 10
        exporter._stop.set()  # as shutdown() would
        started = time.perf_counter()
        assert exporter.run_once() == 0
        assert time.perf_counter() - started < 5.0


# ---------------------------------------------------------------------------
# statsd
# ---------------------------------------------------------------------------


class TestStatsdExporter:
    def test_line_protocol_over_a_real_udp_socket(self):
        sink, port = udp_sink()
        try:
            registry = MetricsRegistry()
            registry.counter("repro_t_total").inc(3, method="a")
            registry.gauge("repro_t_resident").set(2.5)
            hist = registry.histogram("repro_t_ms", buckets=(10.0,))
            hist.observe(4.0)
            hist.observe(8.0)
            exporter = StatsdExporter(registry, "127.0.0.1", port)
            try:
                assert exporter.run_once() == 3  # counter + gauge + histogram
                lines = recv_lines(sink)
            finally:
                exporter.shutdown()
        finally:
            sink.close()
        assert "repro_t_total:3|c|#method:a" in lines
        assert "repro_t_resident:2.5|g" in lines
        assert "repro_t_ms:6|ms" in lines  # window mean of 4 and 8
        assert "repro_t_ms.count:2|c" in lines

    def test_datagrams_stay_under_the_mtu_budget(self):
        long_lines = [f"repro_t_{i}:{i}|c" + "x" * 100 for i in range(40)]
        datagrams = StatsdExporter._pack(long_lines)
        assert len(datagrams) > 1
        for datagram in datagrams:
            assert len(datagram) <= MAX_DATAGRAM_BYTES
        reassembled = b"\n".join(datagrams).decode("utf-8").split("\n")
        assert reassembled == long_lines

    def test_tags_render_sorted_dogstatsd_style(self):
        assert StatsdExporter._tags({}) == ""
        assert StatsdExporter._tags({"b": "2", "a": "1"}) == "|#a:1,b:2"


# ---------------------------------------------------------------------------
# json / OTLP
# ---------------------------------------------------------------------------


class _SinkHandler(BaseHTTPRequestHandler):
    def do_POST(self):  # noqa: N802 - http.server API
        length = int(self.headers.get("Content-Length", 0))
        self.server.received.append(json.loads(self.rfile.read(length)))
        self.send_response(200)
        self.end_headers()

    def log_message(self, *args):
        pass


class TestJsonHttpExporter:
    def test_document_shape(self):
        batch = [
            {"name": "c", "kind": "counter", "labels": {"m": "a"}, "delta": 2.0},
            {"name": "g", "kind": "gauge", "labels": {}, "value": 1.5},
            {
                "name": "h",
                "kind": "histogram",
                "labels": {},
                "delta_count": 2,
                "delta_sum": 3.0,
                "buckets": [["1", 1], ["+Inf", 2]],
            },
        ]
        document = JsonHttpExporter._document(batch)
        metrics = document["resourceMetrics"][0]["scopeMetrics"][0]["metrics"]
        by_name = {metric["name"]: metric for metric in metrics}

        counter = by_name["c"]["sum"]
        assert counter["aggregationTemporality"] == 1
        assert counter["isMonotonic"] is True
        assert counter["dataPoints"][0]["asDouble"] == 2.0
        assert counter["dataPoints"][0]["attributes"] == [
            {"key": "m", "value": {"stringValue": "a"}}
        ]

        assert by_name["g"]["gauge"]["dataPoints"][0]["asDouble"] == 1.5

        hist = by_name["h"]["histogram"]["dataPoints"][0]
        assert hist["count"] == 2
        assert hist["sum"] == 3.0
        assert hist["bucketCounts"] == [1, 2]
        assert hist["explicitBounds"] == [1.0]

    def test_posts_one_document_per_flush(self):
        server = HTTPServer(("127.0.0.1", 0), _SinkHandler)
        server.received = []
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            registry = MetricsRegistry()
            registry.counter("repro_t_total").inc(4)
            exporter = JsonHttpExporter(
                registry, f"http://127.0.0.1:{server.server_address[1]}/v1/metrics"
            )
            try:
                assert exporter.run_once() == 1
            finally:
                exporter.shutdown()
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5.0)
        assert len(server.received) >= 1
        metrics = server.received[0]["resourceMetrics"][0]["scopeMetrics"][0]["metrics"]
        assert metrics[0]["name"] == "repro_t_total"

    def test_unreachable_sink_never_blocks_serving(self):
        # grab a port with nothing listening on it.
        placeholder = socket.socket()
        placeholder.bind(("127.0.0.1", 0))
        port = placeholder.getsockname()[1]
        placeholder.close()

        registry = MetricsRegistry()
        registry.counter("repro_t_total").inc()
        exporter = JsonHttpExporter(
            registry,
            f"http://127.0.0.1:{port}/",
            timeout=0.5,
            max_retries=1,
            backoff_seconds=0.0,
        )
        assert exporter.run_once() == 0
        assert registry.counter("obs_exporter_dropped_series_total").total() == 1
        assert exporter.last_error is not None


class TestBuildExporter:
    def test_off_when_kind_is_falsy(self):
        registry = MetricsRegistry()
        assert build_exporter(registry, None, None) is None
        assert build_exporter(registry, "", "127.0.0.1:8125") is None

    def test_builds_each_kind(self):
        registry = MetricsRegistry()
        statsd = build_exporter(
            registry, "statsd", "127.0.0.1:8125", interval_seconds=1.0
        )
        assert isinstance(statsd, StatsdExporter)
        assert statsd.address == ("127.0.0.1", 8125)
        assert statsd.interval_seconds == 1.0
        statsd._close()
        json_exporter = build_exporter(
            registry, "json", "http://collector:4318/v1/metrics", max_retries=5
        )
        assert isinstance(json_exporter, JsonHttpExporter)
        assert json_exporter.max_retries == 5

    def test_rejects_bad_configuration(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="unknown exporter kind"):
            build_exporter(registry, "kafka", "somewhere")
        with pytest.raises(ValueError, match="needs a target"):
            build_exporter(registry, "statsd", None)
        with pytest.raises(ValueError, match="host:port"):
            build_exporter(registry, "statsd", "no-port")
        with pytest.raises(ValueError, match="http\\(s\\) URL"):
            build_exporter(registry, "json", "collector:4318")


# ---------------------------------------------------------------------------
# OpenMetrics exemplars
# ---------------------------------------------------------------------------


class TestExemplarRendering:
    def test_golden_exemplar_block(self):
        registry = MetricsRegistry(const_labels={"dataset": "fp"})
        hist = registry.histogram(
            "repro_t_ms", "Test latency.", buckets=(1.0, 2.0), exemplars=True
        )
        hist.observe(0.5)  # no request scope: no exemplar on this bucket
        with request_scope("req-abc"):
            hist.observe(1.5)
        assert registry.render_prometheus() == (
            "# HELP repro_t_ms Test latency.\n"
            "# TYPE repro_t_ms histogram\n"
            'repro_t_ms_bucket{dataset="fp",le="1"} 1\n'
            'repro_t_ms_bucket{dataset="fp",le="2"} 2 # {request_id="req-abc"} 1.5\n'
            'repro_t_ms_bucket{dataset="fp",le="+Inf"} 2\n'
            'repro_t_ms_sum{dataset="fp"} 2\n'
            'repro_t_ms_count{dataset="fp"} 2\n'
        )

    def test_latest_request_wins_per_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_t_ms", buckets=(10.0,), exemplars=True)
        with request_scope("req-old"):
            hist.observe(3.0)
        with request_scope("req-new"):
            hist.observe(4.0)
        rendered = registry.render_prometheus()
        assert 'request_id="req-new"' in rendered
        assert "req-old" not in rendered

    def test_exemplars_are_opt_in(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_t_ms", buckets=(10.0,))
        with request_scope("req-abc"):
            hist.observe(3.0)
        assert "#" not in registry.render_prometheus().split("# TYPE")[-1]


# ---------------------------------------------------------------------------
# slow-query log rotation
# ---------------------------------------------------------------------------


class TestSlowQueryLogRotation:
    def test_rotates_once_past_max_bytes(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(str(path), max_bytes=100)
        first = json.dumps({"event": "slow_query", "request_id": "req-1", "pad": "x" * 60})
        second = json.dumps({"event": "slow_query", "request_id": "req-2", "pad": "y" * 60})
        log.write(first)
        log.write(second)
        assert log.rotations == 1
        backup = tmp_path / "slow.jsonl.1"
        assert backup.read_text().strip() == first
        assert path.read_text().strip() == second

    def test_only_one_backup_ever_exists(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(str(path), max_bytes=40)
        for index in range(6):
            log.write(json.dumps({"request_id": f"req-{index}", "pad": "z" * 30}))
        assert log.rotations == 5
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "slow.jsonl",
            "slow.jsonl.1",
        ]

    def test_stats_and_validation(self, tmp_path):
        log = SlowQueryLog(str(tmp_path / "slow.jsonl"), max_bytes=1024)
        assert log.stats() == {
            "path": str(tmp_path / "slow.jsonl"),
            "max_bytes": 1024,
            "rotations": 0,
        }
        with pytest.raises(ValueError):
            SlowQueryLog(str(tmp_path / "bad.jsonl"), max_bytes=0)


# ---------------------------------------------------------------------------
# progress reporting
# ---------------------------------------------------------------------------


class TestProgressReporter:
    def test_step_clamps_and_forwards_epochs(self):
        steps = []
        reporter = ProgressReporter(
            on_step=lambda fraction, epoch, total: steps.append(
                (fraction, epoch, total)
            )
        )
        reporter.step(-0.5)
        reporter.step(1.5)
        reporter.step(0.25, epoch=2, total_epochs=4)
        assert steps == [(0.0, None, None), (1.0, None, None), (0.25, 2, 4)]

    def test_subrange_maps_child_fractions_onto_parent_slice(self):
        steps = []
        parent = ProgressReporter(on_step=lambda f, e, t: steps.append(f))
        child = parent.subrange(0.2, 0.6)
        child.step(0.0)
        child.step(0.5)
        child.step(1.0)
        assert steps == pytest.approx([0.2, 0.4, 0.6])

    def test_nested_subranges_compose(self):
        steps = []
        parent = ProgressReporter(on_step=lambda f, e, t: steps.append(f))
        grandchild = parent.subrange(0.0, 0.5).subrange(0.5, 1.0)
        grandchild.step(1.0)
        assert steps == pytest.approx([0.5])

    def test_subrange_shares_the_phase_sink(self):
        phases = []
        parent = ProgressReporter(on_phase=phases.append)
        parent.subrange(0.0, 0.5).phase("training")
        assert phases == ["training"]

    def test_adapt_accepts_all_legacy_shapes(self):
        assert ProgressReporter.adapt(None) is NULL_PROGRESS
        reporter = ProgressReporter()
        assert ProgressReporter.adapt(reporter) is reporter
        phases = []
        adapted = ProgressReporter.adapt(phases.append)
        adapted.phase("restoring")
        adapted.step(0.5)  # a phase-only callback never sees steps
        assert phases == ["restoring"]

    def test_null_progress_is_inert(self):
        NULL_PROGRESS.phase("anything")
        NULL_PROGRESS.step(0.5, epoch=1, total_epochs=2)

    def test_phase_windows_tile_the_unit_interval(self):
        ordered = ["restoring", "fitting_substrates", "training", "publishing"]
        assert list(PHASE_WINDOWS) == ordered
        previous_end = 0.0
        for phase in ordered:
            start, end = phase_window(phase)
            assert start == previous_end
            assert end > start
            previous_end = end
        assert previous_end == 1.0
        assert phase_window(None) == (0.0, 1.0)
        assert phase_window("mystery") == (0.0, 1.0)


class TestCausalLMProgress:
    def test_fit_reports_monotonic_progress_ending_at_one(self, tiny_dataset):
        fractions = []
        reporter = ProgressReporter(on_step=lambda f, e, t: fractions.append(f))
        config = CausalLMConfig(seed=3, embedding_dim=32)
        CausalEntityLM(config).fit(
            tiny_dataset.corpus, tiny_dataset.entities(), progress=reporter
        )
        assert len(fractions) > 2
        assert all(0.0 < fraction <= 1.0 for fraction in fractions)
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0


# ---------------------------------------------------------------------------
# fit jobs: progress folding and the wire document
# ---------------------------------------------------------------------------

#: every key a v1 fit-job document carries — the client SDK and the gateway
#: dashboard read these; adding is fine, renaming or dropping is a break.
FIT_JOB_DOCUMENT_KEYS = [
    "job_id",
    "method",
    "pin",
    "status",
    "created_at",
    "started_at",
    "finished_at",
    "duration_ms",
    "outcome",
    "phase",
    "phase_seconds",
    "progress",
    "error",
]


class _ScriptedRegistry:
    """An ExpanderRegistry stand-in that drives a scripted progress tape."""

    def __init__(self, manager_box, observed):
        self._manager_box = manager_box
        self._observed = observed
        self._fit_seconds = {}

    def ensure_known(self, method):
        pass

    def is_fitted(self, method):
        return False

    def stats(self):
        return {
            "fit_seconds": dict(self._fit_seconds),
            "restore_seconds": {},
        }

    def _record(self):
        manager = self._manager_box[0]
        job = manager.list()[0]
        self._observed.append(
            (job.progress, job.epoch, job.total_epochs)
        )

    def get(self, method, progress=None):
        progress = ProgressReporter.adapt(progress)
        progress.phase("restoring")
        self._record()
        progress.step(1.0)
        self._record()
        progress.phase("fitting_substrates")
        progress.step(0.5)
        self._record()
        progress.step(0.25)  # a later substrate restarting its local count
        self._record()
        progress.phase("training")
        self._record()
        progress.step(0.5, epoch=2, total_epochs=4)
        self._record()
        progress.phase("publishing")
        self._record()
        self._fit_seconds[method] = 1.0

    def pin(self, method, progress=None):
        self.get(method, progress=progress)


class TestFitJobProgress:
    def run_scripted_job(self):
        manager_box = []
        observed = []
        registry = _ScriptedRegistry(manager_box, observed)
        manager = JobManager(registry)
        manager_box.append(manager)
        try:
            job = manager.submit("stub")
            manager.wait(job.job_id, timeout=30.0)
        finally:
            manager.shutdown()
        return job, observed

    def test_phase_windows_fold_into_one_monotonic_fraction(self):
        job, observed = self.run_scripted_job()
        fractions = [fraction for fraction, _e, _t in observed]
        assert fractions == pytest.approx(
            [
                0.0,   # entering "restoring"
                0.05,  # restore done -> start of fitting_substrates window
                0.35,  # 0.05 + 0.6 * 0.5
                0.35,  # local fraction went backwards; overall bar held
                0.65,  # entering "training"
                0.8,   # 0.65 + 0.3 * 0.5
                0.95,  # entering "publishing"
            ]
        )
        assert job.progress == 1.0  # pinned on success
        assert job.status == "succeeded"

    def test_epochs_are_carried_through(self):
        _job, observed = self.run_scripted_job()
        assert (0.8, 2, 4) in [
            (round(fraction, 6), epoch, total)
            for fraction, epoch, total in observed
        ]

    def test_job_document_shape_is_pinned(self):
        job, _observed = self.run_scripted_job()
        document = job.to_dict()
        assert list(document) == FIT_JOB_DOCUMENT_KEYS
        assert document["progress"] == {
            "fraction": 1.0,
            "epoch": 2,
            "total_epochs": 4,
        }
        assert document["error"] is None
        assert document["duration_ms"] is not None

    def test_queued_job_reports_null_progress(self):
        from repro.api.jobs import FitJob

        queued = FitJob(job_id="fit-x", method="stub")
        document = queued.to_dict()
        assert list(document) == FIT_JOB_DOCUMENT_KEYS
        assert document["progress"] is None


# ---------------------------------------------------------------------------
# service wiring: config -> exporter lifecycle
# ---------------------------------------------------------------------------


class TestServiceExportWiring:
    def make_service(self, dataset, **config_kwargs):
        from repro.core.base import Expander
        from repro.types import ExpansionResult

        class StubExpander(Expander):
            name = "stub"

            def _fit(self, dataset) -> None:
                pass

            def _expand(self, query, top_k) -> ExpansionResult:
                scored = [
                    (eid, 1.0 / (1.0 + eid)) for eid in self.dataset.entity_ids()
                ]
                return ExpansionResult.from_scores(query.query_id, scored)

        config = ServiceConfig(batch_wait_ms=0.0, **config_kwargs)
        return ExpansionService(
            dataset, config=config, factories={"stub": lambda _res: StubExpander()}
        )

    def test_statsd_export_end_to_end_with_drain_on_close(
        self, tiny_dataset, sample_query
    ):
        sink, port = udp_sink()
        try:
            service = self.make_service(
                tiny_dataset,
                exporter="statsd",
                exporter_target=f"127.0.0.1:{port}",
                exporter_interval_seconds=3600.0,  # only the drain flushes
            )
            assert service.exporter is not None
            assert "exporter" in service.stats()
            service.submit(ExpandRequest(method="stub", query_id=sample_query.query_id))
            service.close()  # drains one final batch
            lines = recv_lines(sink)
        finally:
            sink.close()
        assert any(
            line.startswith("repro_service_requests_total:") and "|c" in line
            for line in lines
        ), lines
        flushes = service.metrics.counter("obs_exporter_flushes_total").total()
        assert flushes >= 1

    def test_export_disabled_by_default(self, tiny_dataset):
        service = self.make_service(tiny_dataset)
        try:
            assert service.exporter is None
            assert "exporter" not in service.stats()
        finally:
            service.close()
