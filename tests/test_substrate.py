"""Tests for the shared substrate layer (:mod:`repro.substrate`).

Covers substrate identity (keys, params hashing, content addresses), the
provider's fit-once/restore/write-through behaviour, content-addressed
substrate artifacts in the store with method-manifest back-references,
reference-aware GC (the regression satellite: GC never deletes a substrate a
surviving method manifest references, and never strands an orphan), the
fit-once acceptance criterion for embeddings-backed methods, and the
per-phase fit-job progress satellite.
"""

from __future__ import annotations

import pytest

from repro.core.resources import SharedResources
from repro.exceptions import (
    ArtifactCorruptError,
    StoreError,
    SubstrateError,
)
from repro.lm.causal_lm import CausalEntityLM
from repro.lm.context_encoder import ContextEncoder
from repro.lm.embeddings import CooccurrenceEmbeddings
from repro.serve import ExpanderRegistry
from repro.store import ArtifactStore
from repro.substrate import (
    COOCCURRENCE_EMBEDDINGS,
    ENTITY_REPRESENTATIONS,
    SubstrateKey,
    SubstrateProvider,
    hash_params,
)


def _count_fits(monkeypatch, cls=CooccurrenceEmbeddings):
    """Wrap ``cls.fit`` with an invocation counter."""
    calls = []
    original = cls.fit

    def counting_fit(self, *args, **kwargs):
        calls.append(type(self).__name__)
        return original(self, *args, **kwargs)

    monkeypatch.setattr(cls, "fit", counting_fit)
    return calls


def _forbid_fits(monkeypatch):
    def boom(*args, **kwargs):  # pragma: no cover - only hit on failure
        raise AssertionError("a restore path invoked an expensive fit")

    monkeypatch.setattr(ContextEncoder, "fit", boom)
    monkeypatch.setattr(CausalEntityLM, "fit", boom)
    monkeypatch.setattr(CooccurrenceEmbeddings, "fit", boom)


class TestSubstrateIdentity:
    def test_params_hash_is_order_independent(self):
        assert hash_params({"a": 1, "b": 2}) == hash_params({"b": 2, "a": 1})
        assert hash_params({"a": 1}) != hash_params({"a": 2})

    def test_params_must_be_json_native(self):
        with pytest.raises(SubstrateError):
            hash_params({"bad": object()})

    def test_content_hash_separates_kind_dataset_and_params(self):
        base = SubstrateKey("cooccurrence_embeddings", "fp", "p")
        assert base.content_hash != SubstrateKey("causal_lm", "fp", "p").content_hash
        assert base.content_hash != SubstrateKey(base.kind, "fp2", "p").content_hash
        assert base.content_hash != SubstrateKey(base.kind, "fp", "p2").content_hash
        assert base.to_ref() == {
            "kind": base.kind,
            "content_hash": base.content_hash,
            "params_hash": "p",
        }

    def test_unknown_kind_is_rejected(self, tiny_dataset):
        provider = SubstrateProvider(tiny_dataset)
        with pytest.raises(SubstrateError):
            provider.key("teleporter", {})


class TestProviderSharing:
    def test_get_builds_once_and_shares_the_instance(self, tiny_dataset, monkeypatch):
        calls = _count_fits(monkeypatch)
        resources = SharedResources(tiny_dataset)
        first = resources.cooccurrence_embeddings()
        second = resources.cooccurrence_embeddings()
        assert first is second
        assert calls == ["CooccurrenceEmbeddings"]
        stats = resources.provider.stats()
        assert stats["fits"] == 1 and stats["hits"] >= 1
        assert stats["resident"] == 1

    def test_adopt_never_replaces_resident_state(self, tiny_dataset):
        resources = SharedResources(tiny_dataset)
        built = resources.cooccurrence_embeddings()
        other = CooccurrenceEmbeddings(dim=resources.encoder_config.embedding_dim)
        resources.provider.adopt(
            COOCCURRENCE_EMBEDDINGS, resources.cooccurrence_params(), other
        )
        assert resources.cooccurrence_embeddings() is built

    def test_write_through_then_restore_without_refit(
        self, tiny_dataset, tmp_path, monkeypatch
    ):
        store = ArtifactStore(tmp_path)
        producer = SharedResources(tiny_dataset, store=store)
        fitted = producer.cooccurrence_embeddings()
        assert store.stats()["substrates"] == 1

        _forbid_fits(monkeypatch)
        consumer = SharedResources(tiny_dataset, store=store)
        restored = consumer.cooccurrence_embeddings()
        assert restored is not fitted
        stats = consumer.provider.stats()
        assert stats["fits"] == 0 and stats["restores"] == 1
        # The restored copy is bitwise identical to the fitted one.
        import numpy as np

        for eid, vector in fitted.entity_vectors().items():
            assert np.array_equal(vector, restored.entity_vector(eid))

    def test_corrupt_substrate_artifact_refits_and_republishes(
        self, tiny_dataset, tmp_path
    ):
        store = ArtifactStore(tmp_path)
        producer = SharedResources(tiny_dataset, store=store)
        producer.cooccurrence_embeddings()
        info = store.ls_substrates()[0]
        # Tamper with a state file so the checksum verification fails.
        state_dir = store.substrate_dir(info.kind, info.content_hash) / "state"
        (state_dir / "token_vectors.npy").write_bytes(b"garbage")

        consumer = SharedResources(tiny_dataset, store=store)
        consumer.cooccurrence_embeddings()
        stats = consumer.provider.stats()
        assert stats["store_errors"] == 1
        assert stats["fits"] == 1 and stats["publishes"] == 1
        # The refit republished a good artifact.
        store.verify_substrate(info.kind, info.content_hash)

    def test_single_process_fit_lock_counters(self, tiny_dataset, tmp_path):
        store = ArtifactStore(tmp_path)
        resources = SharedResources(tiny_dataset, store=store)
        resources.cooccurrence_embeddings()
        lock_stats = resources.provider.stats()["fit_lock"]
        assert lock_stats["enabled"] is True
        assert lock_stats["acquires"] == 1 and lock_stats["timeouts"] == 0


class TestStoreSubstrateArtifacts:
    def test_save_substrate_is_idempotent(self, tmp_path):
        store = ArtifactStore(tmp_path)
        writes = []

        def writer(state_dir):
            writes.append(1)
            (state_dir / "payload.json").write_text("{}")

        first = store.save_substrate("cooccurrence_embeddings", "a" * 16, "fp", "ph", writer)
        second = store.save_substrate("cooccurrence_embeddings", "a" * 16, "fp", "ph", writer)
        assert writes == [1]
        assert first.content_hash == second.content_hash
        assert store.contains_substrate("cooccurrence_embeddings", "a" * 16)
        assert len(store.ls_substrates()) == 1

    def test_invalid_substrate_names_are_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(StoreError):
            store.substrate_dir("../escape", "a" * 16)
        with pytest.raises(StoreError):
            store.substrate_dir("cooccurrence_embeddings", "../../escape")

    def test_method_manifest_references_substrate_by_content_hash(
        self, tiny_dataset, tmp_path
    ):
        store = ArtifactStore(tmp_path)
        registry = ExpanderRegistry(tiny_dataset, store=store)
        registry.get("cgexpan")
        [info] = store.ls()
        assert info.method == "cgexpan"
        # v3 fits reference the embeddings AND the ANN index built over them.
        assert len(info.substrates) == 2
        by_kind = {ref["kind"]: ref for ref in info.substrates}
        assert set(by_kind) == {COOCCURRENCE_EMBEDDINGS, "ann_index"}
        substrates = {s.kind: s for s in store.ls_substrates()}
        assert set(substrates) == {COOCCURRENCE_EMBEDDINGS, "ann_index"}
        for kind, ref in by_kind.items():
            assert ref["content_hash"] == substrates[kind].content_hash
        references = store.substrate_references()
        embeddings = substrates[COOCCURRENCE_EMBEDDINGS]
        assert references[(embeddings.kind, embeddings.content_hash)] == [
            f"cgexpan/{tiny_dataset.fingerprint()}"
        ]

    def test_restore_with_missing_substrate_is_corruption(
        self, tiny_dataset, tmp_path
    ):
        from repro.baselines import CGExpan

        store = ArtifactStore(tmp_path)
        registry = ExpanderRegistry(tiny_dataset, store=store)
        registry.get("cgexpan")
        substrate = next(
            s for s in store.ls_substrates() if s.kind == "cooccurrence_embeddings"
        )
        assert store.evict_substrate(substrate.kind, substrate.content_hash, force=True)
        fresh = CGExpan(resources=SharedResources(tiny_dataset))
        with pytest.raises(ArtifactCorruptError):
            store.restore("cgexpan", tiny_dataset.fingerprint(), fresh, tiny_dataset)

    def test_failed_substrate_publication_never_writes_a_dangling_manifest(
        self, tiny_dataset, tmp_path, monkeypatch
    ):
        """If the substrate cannot be made durable, the method save must
        fail (the registry skips persistence) rather than publish a
        manifest whose reference can never resolve."""
        store = ArtifactStore(tmp_path)
        monkeypatch.setattr(
            ArtifactStore,
            "save_substrate",
            lambda *a, **k: (_ for _ in ()).throw(StoreError("disk full")),
        )
        registry = ExpanderRegistry(tiny_dataset, store=store)
        expander = registry.get("cgexpan")  # fit succeeds, write-through skipped
        assert expander.is_fitted
        assert registry.stats()["store"]["errors"] == 1
        assert store.ls() == [], "no method manifest may reference a missing substrate"

    def test_restore_refuses_substrate_params_mismatch(self, tiny_dataset, tmp_path):
        """Method-private state was trained against the referenced
        substrate; restoring under a different encoder config must be a
        version-style refusal, not a silent refit of a different substrate."""
        from repro.baselines import CGExpan
        from repro.config import EncoderConfig
        from repro.exceptions import ArtifactVersionError

        store = ArtifactStore(tmp_path)
        registry = ExpanderRegistry(tiny_dataset, store=store)
        registry.get("cgexpan")
        mismatched = CGExpan(
            resources=SharedResources(
                tiny_dataset, encoder_config=EncoderConfig(embedding_dim=32)
            )
        )
        with pytest.raises(ArtifactVersionError):
            store.restore("cgexpan", tiny_dataset.fingerprint(), mismatched, tiny_dataset)
        assert not mismatched.is_fitted

    def test_evict_substrate_refuses_while_referenced(self, tiny_dataset, tmp_path):
        store = ArtifactStore(tmp_path)
        registry = ExpanderRegistry(tiny_dataset, store=store)
        registry.get("cgexpan")
        substrate = next(
            s for s in store.ls_substrates() if s.kind == "cooccurrence_embeddings"
        )
        with pytest.raises(StoreError, match="referenced"):
            store.evict_substrate(substrate.kind, substrate.content_hash)
        store.evict("cgexpan", tiny_dataset.fingerprint())
        assert store.evict_substrate(substrate.kind, substrate.content_hash)


@pytest.fixture()
def embeddings_backed_store(tiny_dataset, tmp_path):
    """CGExpan + CaSE fitted through one registry into one store: two method
    artifacts referencing one shared co-occurrence substrate."""
    store = ArtifactStore(tmp_path)
    registry = ExpanderRegistry(tiny_dataset, store=store)
    registry.get("cgexpan")
    registry.get("case")
    return store, registry


@pytest.fixture()
def no_orphan_grace(monkeypatch):
    """Fresh orphans are normally protected by a publication grace period;
    these tests create and orphan substrates within one run, so disable it."""
    import repro.store.artifact as artifact_module

    monkeypatch.setattr(artifact_module, "_ORPHAN_GRACE_SECONDS", 0.0)


class TestReferenceAwareGC:
    """Satellite regression: GC must honour the method->substrate references."""

    def test_budget_gc_never_deletes_a_referenced_substrate(
        self, embeddings_backed_store
    ):
        store, _registry = embeddings_backed_store
        methods = store.ls()
        substrates = store.ls_substrates()
        total = sum(i.total_bytes for i in methods) + sum(
            s.total_bytes for s in substrates
        )
        # A budget that forces evictions but can be met by dropping method
        # artifacts alone: the substrates (still referenced by the survivor)
        # must be untouched even though they are the oldest entries.
        budget = total - min(i.total_bytes for i in methods)
        removed = store.gc_to_budget(budget)
        assert removed, "the budget must have forced at least one eviction"
        for substrate in substrates:
            assert store.contains_substrate(substrate.kind, substrate.content_hash)
        assert store.ls(), "at least one referencing method must survive"

    def test_budget_gc_collects_orphaned_substrates_instead_of_stranding(
        self, embeddings_backed_store, no_orphan_grace
    ):
        store, _registry = embeddings_backed_store
        removed = store.gc_to_budget(0)
        assert store.ls() == [] and store.ls_substrates() == []
        # Both methods and the (then orphaned) substrate were swept.
        kinds = {getattr(info, "kind", None) for info in removed}
        assert COOCCURRENCE_EMBEDDINGS in kinds

    def test_filter_gc_keeps_referenced_substrates_and_sweeps_orphans(
        self, embeddings_backed_store, tiny_dataset, no_orphan_grace
    ):
        store, _registry = embeddings_backed_store
        fingerprint = tiny_dataset.fingerprint()
        # Keeping the live fingerprint keeps the methods and their substrates
        # (the shared embeddings plus the ANN index over them).
        assert store.gc(keep_fingerprints={fingerprint}) == []
        assert store.stats()["substrates"] == 2
        # Dropping every method orphans the substrates; the same filter now
        # sweeps them instead of stranding their bytes forever.
        store.evict("cgexpan", fingerprint)
        store.evict("case", fingerprint)
        removed = store.gc(keep_fingerprints=set())
        assert {getattr(info, "kind", None) for info in removed} == {
            COOCCURRENCE_EMBEDDINGS,
            "ann_index",
        }
        assert store.ls_substrates() == []

    def test_fresh_orphans_are_protected_by_the_publication_grace(
        self, embeddings_backed_store, tiny_dataset
    ):
        """A just-published substrate with no referencing manifest yet (a
        save in flight, or a --substrates-only prefit) must survive GC."""
        store, _registry = embeddings_backed_store
        fingerprint = tiny_dataset.fingerprint()
        store.evict("cgexpan", fingerprint)
        store.evict("case", fingerprint)
        # Orphaned, but younger than the grace period: both the filter sweep
        # and the budget pass must leave it alone.
        assert store.gc(keep_fingerprints=set()) == []
        assert store.gc_to_budget(0) == []
        assert store.stats()["substrates"] == 2


class TestFitOnceAcceptance:
    """Issue acceptance: CGExpan then CaSE fit the embeddings exactly once,
    and the store holds each substrate exactly once, referenced by hash."""

    def test_second_embeddings_backed_method_reuses_the_substrate(
        self, tiny_dataset, tmp_path, monkeypatch
    ):
        calls = _count_fits(monkeypatch)
        store = ArtifactStore(tmp_path)
        registry = ExpanderRegistry(tiny_dataset, store=store)
        registry.get("cgexpan")
        assert calls == ["CooccurrenceEmbeddings"]
        registry.get("case")
        assert calls == ["CooccurrenceEmbeddings"], "CaSE must not refit the substrate"
        provider_stats = registry.stats()["substrates"]
        # Two fits total: the embeddings, then the shared ANN index over them
        # (same params for both methods, so it too is fitted exactly once).
        assert provider_stats["fits"] == 2
        assert provider_stats["hits"] >= 1
        # The store holds each substrate exactly once; both manifests point
        # at the same content hashes.
        substrates = store.ls_substrates()
        assert len(substrates) == 2
        hashes = {
            ref["content_hash"] for info in store.ls() for ref in info.substrates
        }
        assert hashes == {s.content_hash for s in substrates}
        all_references = store.substrate_references()
        for substrate in substrates:
            references = all_references[(substrate.kind, substrate.content_hash)]
            assert sorted(label.split("/")[0] for label in references) == [
                "case",
                "cgexpan",
            ]


class TestFitJobPhases:
    """Satellite: per-phase fit progress through the registry and job API."""

    def test_registry_reports_phases_in_order(self, tiny_dataset, tmp_path):
        phases = []
        registry = ExpanderRegistry(
            tiny_dataset, store=ArtifactStore(tmp_path)
        )
        registry.get("cgexpan", progress=phases.append)
        assert phases == ["restoring", "fitting_substrates", "training", "publishing"]
        # A registry hit reports nothing.
        registry.get("cgexpan", progress=phases.append)
        assert phases == ["restoring", "fitting_substrates", "training", "publishing"]

    def test_restore_path_stops_at_restoring(self, tiny_dataset, tmp_path):
        store = ArtifactStore(tmp_path)
        ExpanderRegistry(tiny_dataset, store=store).get("cgexpan")
        phases = []
        fresh = ExpanderRegistry(tiny_dataset, store=store)
        fresh.get("cgexpan", progress=phases.append)
        assert phases == ["restoring"]

    def test_fit_job_surfaces_phase(self, tiny_dataset):
        from repro.config import ServiceConfig
        from repro.serve import ExpansionService

        config = ServiceConfig(batch_wait_ms=0.0)
        with ExpansionService(tiny_dataset, config=config) as service:
            job = service.start_fit("setexpan")
            # The background worker may already be running: the phase is
            # either still unset (queued) or one of the known phases.
            assert job.phase in (None, "restoring", "training", "publishing")
            finished = service.jobs.wait(job.job_id, timeout=120.0)
            assert finished.status == "succeeded"
            # SetExpan has no substrates: the last phase is the write-through.
            assert finished.phase == "publishing"
            assert finished.to_dict()["phase"] == "publishing"
