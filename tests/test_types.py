"""Tests for the core data types."""

import pytest

from repro.exceptions import DatasetError
from repro.types import (
    Entity,
    ExpansionResult,
    FineGrainedClass,
    Query,
    RankedEntity,
    Sentence,
    UltraFineGrainedClass,
)


def make_entity(**overrides):
    payload = {
        "entity_id": 1,
        "name": "Vexo Mobile",
        "fine_class": "mobile_phone_brands",
        "attributes": {"os": "android", "listed": "public"},
        "popularity": 0.8,
    }
    payload.update(overrides)
    return Entity(**payload)


class TestEntity:
    def test_get_existing_attribute(self):
        assert make_entity().get("os") == "android"

    def test_get_missing_attribute_returns_none(self):
        assert make_entity().get("colour") is None

    def test_matches_full_assignment(self):
        assert make_entity().matches({"os": "android"})
        assert make_entity().matches({"os": "android", "listed": "public"})

    def test_matches_rejects_wrong_value(self):
        assert not make_entity().matches({"os": "ios"})

    def test_matches_rejects_unknown_attribute(self):
        assert not make_entity().matches({"colour": "red"})

    def test_matches_empty_assignment_is_true(self):
        assert make_entity().matches({})

    def test_dict_roundtrip(self):
        entity = make_entity()
        assert Entity.from_dict(entity.to_dict()) == entity

    def test_distractor_has_no_class(self):
        distractor = Entity(entity_id=9, name="Harbor Bridge")
        assert distractor.fine_class is None
        assert distractor.attributes == {}


class TestSentence:
    def test_dict_roundtrip(self):
        sentence = Sentence(sentence_id=3, text="Vexo Mobile ships phones.", entity_ids=(1,))
        assert Sentence.from_dict(sentence.to_dict()) == sentence

    def test_entity_ids_are_tuple(self):
        sentence = Sentence.from_dict(
            {"sentence_id": 1, "text": "x", "entity_ids": [4, 5]}
        )
        assert sentence.entity_ids == (4, 5)


class TestFineGrainedClass:
    def test_attribute_names(self):
        fc = FineGrainedClass("c", "desc", {"os": ("a", "b"), "region": ("x",)})
        assert fc.attribute_names() == ("os", "region")

    def test_values_of_known_attribute(self):
        fc = FineGrainedClass("c", "desc", {"os": ("a", "b")})
        assert fc.values_of("os") == ("a", "b")

    def test_values_of_unknown_attribute_raises(self):
        fc = FineGrainedClass("c", "desc", {"os": ("a",)})
        with pytest.raises(DatasetError):
            fc.values_of("missing")

    def test_dict_roundtrip(self):
        fc = FineGrainedClass("c", "desc", {"os": ("a", "b")})
        restored = FineGrainedClass.from_dict(fc.to_dict())
        assert restored.name == fc.name
        assert restored.attributes == fc.attributes


class TestUltraFineGrainedClass:
    def make(self, pos=None, neg=None):
        return UltraFineGrainedClass(
            class_id="c#000",
            fine_class="c",
            positive_assignment=pos or {"os": "android"},
            negative_assignment=neg or {"os": "ios"},
            positive_entity_ids=(1, 2, 3),
            negative_entity_ids=(4, 5),
        )

    def test_same_attributes_true_for_identical_keys(self):
        assert self.make().same_attributes

    def test_same_attributes_false_for_different_keys(self):
        ultra = self.make(neg={"region": "asia"})
        assert not ultra.same_attributes

    def test_attribute_cardinality(self):
        ultra = self.make(pos={"os": "android"}, neg={"region": "asia", "listed": "yes"})
        assert ultra.attribute_cardinality == (1, 2)

    def test_dict_roundtrip(self):
        ultra = self.make()
        restored = UltraFineGrainedClass.from_dict(ultra.to_dict())
        assert restored == ultra


class TestQuery:
    def test_overlapping_seeds_rejected(self):
        with pytest.raises(DatasetError):
            Query(
                query_id="q",
                class_id="c",
                positive_seed_ids=(1, 2),
                negative_seed_ids=(2, 3),
            )

    def test_dict_roundtrip(self):
        query = Query("q", "c", (1, 2, 3), (4, 5))
        assert Query.from_dict(query.to_dict()) == query


class TestExpansionResult:
    def test_from_scores_sorted_descending(self):
        result = ExpansionResult.from_scores("q", [(1, 0.2), (2, 0.9), (3, 0.5)])
        assert result.entity_ids() == [2, 3, 1]

    def test_ties_broken_by_entity_id(self):
        result = ExpansionResult.from_scores("q", [(5, 0.5), (1, 0.5), (3, 0.5)])
        assert result.entity_ids() == [1, 3, 5]

    def test_top_k(self):
        result = ExpansionResult.from_scores("q", [(i, -i) for i in range(10)])
        assert result.top(3) == [0, 1, 2]

    def test_empty_result(self):
        result = ExpansionResult(query_id="q", ranking=())
        assert result.entity_ids() == []
        assert result.top(5) == []

    def test_ranked_entity_to_dict(self):
        assert RankedEntity(3, 0.5).to_dict() == {"entity_id": 3, "score": 0.5}
