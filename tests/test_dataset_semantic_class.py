"""Tests for negative-aware semantic class generation (pipeline step 4)."""

import pytest

from repro.dataset.semantic_class import SemanticClassGenerator
from repro.exceptions import DatasetError
from repro.kb.generator import EntityGenerator
from repro.kb.schema import schema_by_name
from repro.utils.rng import RandomState


@pytest.fixture(scope="module")
def phone_setup():
    schema = schema_by_name("mobile_phone_brands")
    entities = EntityGenerator(RandomState(21)).generate_class_entities(schema, 150)
    return schema, entities


class TestSemanticClassGenerator:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(DatasetError):
            SemanticClassGenerator(RandomState(0), min_targets=0)
        with pytest.raises(DatasetError):
            SemanticClassGenerator(RandomState(0), max_classes_per_fine_class=0)

    def test_generates_classes(self, phone_setup):
        schema, entities = phone_setup
        generator = SemanticClassGenerator(RandomState(1), max_classes_per_fine_class=20)
        classes = generator.generate(schema, entities)
        assert 1 <= len(classes) <= 20 + 3  # quota rounding can add a couple

    def test_every_class_meets_minimum_targets(self, phone_setup):
        schema, entities = phone_setup
        generator = SemanticClassGenerator(RandomState(1), min_targets=6)
        for ultra in generator.generate(schema, entities):
            assert len(ultra.positive_entity_ids) >= 6
            assert len(ultra.negative_entity_ids) >= 6

    def test_target_sets_match_assignments(self, phone_setup):
        schema, entities = phone_setup
        by_id = {e.entity_id: e for e in entities}
        generator = SemanticClassGenerator(RandomState(1))
        for ultra in generator.generate(schema, entities):
            for eid in ultra.positive_entity_ids:
                assert by_id[eid].matches(ultra.positive_assignment)
            for eid in ultra.negative_entity_ids:
                assert by_id[eid].matches(ultra.negative_assignment)

    def test_non_overlapping_core_exists(self, phone_setup):
        """P - N and N - P must both be large enough to seed queries."""
        schema, entities = phone_setup
        generator = SemanticClassGenerator(RandomState(1), min_targets=6)
        for ultra in generator.generate(schema, entities):
            pos, neg = set(ultra.positive_entity_ids), set(ultra.negative_entity_ids)
            assert len(pos - neg) >= 6
            assert len(neg - pos) >= 6

    def test_positive_differs_from_negative_assignment(self, phone_setup):
        schema, entities = phone_setup
        generator = SemanticClassGenerator(RandomState(1))
        for ultra in generator.generate(schema, entities):
            assert dict(ultra.positive_assignment) != dict(ultra.negative_assignment)

    def test_configuration_uniqueness(self, phone_setup):
        schema, entities = phone_setup
        generator = SemanticClassGenerator(RandomState(1))
        seen = set()
        for ultra in generator.generate(schema, entities):
            key = (
                tuple(sorted(ultra.positive_assignment.items())),
                tuple(sorted(ultra.negative_assignment.items())),
            )
            assert key not in seen
            seen.add(key)

    def test_cardinality_mix_present(self, phone_setup):
        schema, entities = phone_setup
        generator = SemanticClassGenerator(
            RandomState(1), max_classes_per_fine_class=30
        )
        cardinalities = {u.attribute_cardinality for u in generator.generate(schema, entities)}
        assert (1, 1) in cardinalities
        # Multi-attribute configurations should appear for 3-attribute schemas.
        assert (1, 2) in cardinalities or (2, 1) in cardinalities

    def test_same_and_different_attribute_regimes_present(self, phone_setup):
        schema, entities = phone_setup
        generator = SemanticClassGenerator(
            RandomState(1), max_classes_per_fine_class=30
        )
        classes = generator.generate(schema, entities)
        assert any(u.same_attributes for u in classes)
        assert any(not u.same_attributes for u in classes)

    def test_respects_max_classes_budget(self, phone_setup):
        schema, entities = phone_setup
        generator = SemanticClassGenerator(RandomState(1), max_classes_per_fine_class=5)
        assert len(generator.generate(schema, entities)) <= 8

    def test_deterministic_given_seed(self, phone_setup):
        schema, entities = phone_setup
        a = SemanticClassGenerator(RandomState(4)).generate(schema, entities)
        b = SemanticClassGenerator(RandomState(4)).generate(schema, entities)
        assert [u.class_id for u in a] == [u.class_id for u in b]
        assert [u.positive_assignment for u in a] == [u.positive_assignment for u in b]

    def test_class_ids_namespaced_by_fine_class(self, phone_setup):
        schema, entities = phone_setup
        for ultra in SemanticClassGenerator(RandomState(1)).generate(schema, entities):
            assert ultra.class_id.startswith(schema.name + "#")

    def test_too_few_entities_yields_no_classes(self):
        schema = schema_by_name("mobile_phone_brands")
        entities = EntityGenerator(RandomState(2)).generate_class_entities(schema, 20)
        generator = SemanticClassGenerator(RandomState(1), min_targets=15)
        assert generator.generate(schema, entities) == []
