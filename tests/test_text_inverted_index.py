"""Tests for the inverted index."""

from repro.text.inverted_index import InvertedIndex


def build_index():
    index = InvertedIndex()
    index.add_document(1, ["android", "phone", "brand"])
    index.add_document(2, ["ios", "phone", "brand", "brand"])
    index.add_document(3, ["country", "europe"])
    return index


class TestInvertedIndex:
    def test_document_frequency(self):
        index = build_index()
        assert index.document_frequency("phone") == 2
        assert index.document_frequency("europe") == 1
        assert index.document_frequency("missing") == 0

    def test_postings_contain_term_frequencies(self):
        index = build_index()
        assert index.postings("brand") == {1: 1, 2: 2}

    def test_documents_containing(self):
        index = build_index()
        assert index.documents_containing("phone") == {1, 2}

    def test_documents_containing_all(self):
        index = build_index()
        assert index.documents_containing_all(["phone", "android"]) == {1}
        assert index.documents_containing_all(["phone", "europe"]) == set()

    def test_documents_containing_all_empty_query(self):
        assert build_index().documents_containing_all([]) == set()

    def test_document_length(self):
        index = build_index()
        assert index.document_length(2) == 4
        assert index.document_length(99) == 0

    def test_average_document_length(self):
        index = build_index()
        assert index.average_document_length == (3 + 4 + 2) / 3

    def test_average_length_empty_index(self):
        assert InvertedIndex().average_document_length == 0.0

    def test_num_documents(self):
        assert build_index().num_documents == 3

    def test_remove_document(self):
        index = build_index()
        index.remove_document(2)
        assert index.num_documents == 2
        assert index.documents_containing("ios") == set()
        assert index.document_frequency("phone") == 1

    def test_remove_missing_document_is_noop(self):
        index = build_index()
        index.remove_document(42)
        assert index.num_documents == 3

    def test_readding_document_overwrites(self):
        index = build_index()
        index.add_document(1, ["new", "tokens"])
        assert index.documents_containing("android") == set()
        assert index.documents_containing("new") == {1}
        assert index.num_documents == 3

    def test_vocabulary(self):
        assert "android" in build_index().vocabulary()
