"""Tests for table formatting."""

from repro.eval.evaluator import Evaluator
from repro.eval.reporting import format_metric_report, format_table, metric_row
from repro.baselines.gpt4 import GPT4Expander


class TestFormatTable:
    def test_empty_rows(self):
        assert format_table([]) == "(empty table)"

    def test_contains_headers_and_values(self):
        text = format_table([{"method": "RetExpan", "MAP@10": 41.73}])
        assert "method" in text
        assert "RetExpan" in text
        assert "41.73" in text

    def test_column_subset_and_order(self):
        text = format_table(
            [{"a": 1, "b": 2, "c": 3}], columns=["c", "a"]
        )
        header = text.splitlines()[0]
        assert header.index("c") < header.index("a")
        assert "b" not in header

    def test_missing_cell_rendered_empty(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert text  # should not raise

    def test_boolean_rendering(self):
        text = format_table([{"flag": True}, {"flag": False}])
        assert "yes" in text and "no" in text

    def test_alignment_consistent_width(self):
        text = format_table([{"m": "x", "v": 1.0}, {"m": "longer-name", "v": 22.5}])
        lines = text.splitlines()
        assert len(set(len(line) for line in lines if line)) == 1


class TestMetricReportFormatting:
    def test_metric_row_and_report(self, tiny_dataset, resources):
        evaluator = Evaluator(tiny_dataset, max_queries=4)
        report = evaluator.evaluate(GPT4Expander(resources=resources).fit(tiny_dataset))
        row = metric_row(report, "comb")
        assert row["method"] == "GPT4"
        assert "MAP@10" in row and "P@100" in row and "Avg" in row

        text = format_metric_report({"GPT4": report})
        assert "GPT4" in text
        assert "Pos" in text and "Neg" in text and "Comb" in text
