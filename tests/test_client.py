"""Client SDK tests: transport parity, retries, error mapping, back-compat.

The same :class:`ExpansionService` is served to an in-process client and,
through :class:`ExpansionHTTPServer`, to an HTTP client — the two must be
indistinguishable: same responses, same exception classes, same envelopes.
A separate flaky stdlib server exercises the HTTP transport's bounded
retry-on-retryable behaviour, and the legacy ``POST /expand`` wire shape is
pinned exactly so pre-v1 callers keep working.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.client import ExpansionClient, HttpTransport
from repro.config import ServiceConfig
from repro.core.base import Expander
from repro.exceptions import (
    DatasetError,
    JobConflictError,
    JobError,
    ServiceError,
    TransportError,
    UnknownMethodError,
)
from repro.serve import ExpandOptions, ExpandRequest, ExpansionHTTPServer, ExpansionService
from repro.types import ExpansionResult


class StubExpander(Expander):
    name = "stub"
    supports_persistence = False

    def _expand(self, query, top_k):
        scored = [(eid, 1.0 / (1.0 + eid)) for eid in self.candidate_ids(query)]
        return ExpansionResult.from_scores(query.query_id, scored)


class SlowFitExpander(StubExpander):
    name = "slowstub"

    def _fit(self, dataset):
        import time

        time.sleep(0.2)


@pytest.fixture(scope="module")
def service(tiny_dataset):
    service = ExpansionService(
        tiny_dataset,
        config=ServiceConfig(batch_wait_ms=0.0, port=0),
        factories={
            "stub": lambda _resources: StubExpander(),
            "slowstub": lambda _resources: SlowFitExpander(),
            # reserved for the conflict test: never fitted elsewhere, so its
            # first fit job reliably outlives the conflicting submission.
            "slowstub2": lambda _resources: SlowFitExpander(),
        },
    )
    yield service
    service.close()


@pytest.fixture(scope="module")
def server(service):
    server = ExpansionHTTPServer(service, port=0).start()
    yield server
    server._httpd.shutdown()  # keep the shared service alive for other tests
    server._httpd.server_close()


@pytest.fixture(scope="module")
def http_client(server):
    return ExpansionClient.connect(server.url)


@pytest.fixture(scope="module")
def inproc_client(service):
    return ExpansionClient.in_process(service)


@pytest.fixture(scope="module", params=["in_process", "http"])
def client(request, http_client, inproc_client):
    """Every test using this fixture runs once per transport."""
    return http_client if request.param == "http" else inproc_client


class TestTransportParity:
    def test_expand_is_identical_across_transports(
        self, http_client, inproc_client, tiny_dataset
    ):
        qid = tiny_dataset.queries[0].query_id
        options = ExpandOptions(top_k=10, use_cache=False)
        via_http = http_client.expand("stub", query_id=qid, options=options)
        via_inproc = inproc_client.expand("stub", query_id=qid, options=options)
        assert via_http.entity_ids() == via_inproc.entity_ids()
        assert [i.name for i in via_http.ranking] == [i.name for i in via_inproc.ranking]
        assert via_http.top_k == via_inproc.top_k == 10
        assert via_http.total == via_inproc.total

    def test_methods_and_stats_shapes_match(self, http_client, inproc_client):
        assert http_client.methods() == inproc_client.methods()
        assert set(http_client.stats()) == set(inproc_client.stats())
        assert http_client.healthz() == inproc_client.healthz() == {"status": "ok"}

    def test_both_transports_assign_request_ids(self, client):
        client.healthz()
        assert client.last_request_id is not None
        assert client.last_request_id.startswith("req-")

    def test_error_classes_match_across_transports(
        self, http_client, inproc_client, tiny_dataset
    ):
        qid = tiny_dataset.queries[0].query_id
        for make_call in (
            lambda c: c.expand("nope", query_id=qid),
            lambda c: c.expand("stub", query_id="no-such-query"),
            lambda c: c.expand("stub", class_id="no-such-class", positive_seed_ids=[0]),
            lambda c: c.expand("stub"),
        ):
            with pytest.raises(Exception) as http_exc:
                make_call(http_client)
            with pytest.raises(Exception) as inproc_exc:
                make_call(inproc_client)
            assert type(http_exc.value) is type(inproc_exc.value)
            assert str(http_exc.value) == str(inproc_exc.value)


class TestClientSurface:
    def test_expand_kwargs_build_options(self, client, tiny_dataset):
        qid = tiny_dataset.queries[0].query_id
        response = client.expand("stub", query_id=qid, top_k=8, offset=2, limit=3)
        assert response.total == 8
        assert response.offset == 2
        assert len(response.ranking) == 3

    def test_options_object_and_kwargs_are_exclusive(self, client):
        with pytest.raises(ServiceError):
            client.expand(
                "stub", query_id="q", options=ExpandOptions(top_k=5), top_k=5
            )

    def test_return_names_false_yields_nameless_ranking(self, client, tiny_dataset):
        qid = tiny_dataset.queries[0].query_id
        response = client.expand("stub", query_id=qid, top_k=5, return_names=False)
        assert response.names_resolved is False
        assert all(item.name is None for item in response.ranking)

    def test_expand_batch_mixes_successes_and_errors(self, client, tiny_dataset):
        qid = tiny_dataset.queries[0].query_id
        results = client.expand_batch(
            [
                ExpandRequest(
                    method="stub", query_id=qid, options=ExpandOptions(top_k=5)
                ),
                {"method": "nope", "query_id": qid},
            ]
        )
        assert len(results[0].ranking) == 5
        assert isinstance(results[1], UnknownMethodError)

    def test_fit_workflow_round_trip(self, client):
        job = client.start_fit("slowstub")
        assert job["status"] in ("queued", "running")
        final = client.wait_for_fit(job["job_id"], timeout=30.0)
        assert final["status"] == "succeeded"
        assert final["outcome"] in ("fitted", "already_fitted")
        assert any(j["job_id"] == job["job_id"] for j in client.fit_jobs())
        # a second fit of a fitted method completes as a no-op
        job2 = client.start_fit("slowstub")
        assert client.wait_for_fit(job2["job_id"])["outcome"] == "already_fitted"

    def test_conflicting_fits_raise_job_conflict(self, http_client, inproc_client):
        # slowstub2 is fitted nowhere else, so its first job (0.2 s fit) is
        # still active when the conflicting submission arrives.
        first = inproc_client.start_fit("slowstub2")
        try:
            with pytest.raises(JobConflictError):
                http_client.start_fit("slowstub2")
        finally:
            inproc_client.wait_for_fit(first["job_id"], timeout=30.0)


class TestHttpErrorMapping:
    """Pinned status-code -> exception mapping over real HTTP."""

    def test_400_maps_to_service_error(self, http_client, tiny_dataset):
        with pytest.raises(ServiceError) as exc:
            http_client.expand("stub", query_id=tiny_dataset.queries[0].query_id, top_k=0)
        assert not isinstance(exc.value, (UnknownMethodError, DatasetError))

    def test_404_maps_to_unknown_method_and_dataset_errors(self, http_client):
        with pytest.raises(UnknownMethodError):
            http_client.expand("nope", query_id="whatever")
        with pytest.raises(DatasetError):
            http_client.expand("stub", query_id="no-such-query")

    def test_409_maps_to_job_conflict(self):
        script = _FlakyScript([(409, _error_body("conflict", retryable=False))])
        transport, shutdown = script.start()
        try:
            with pytest.raises(JobConflictError):
                ExpansionClient(transport).start_fit("stub")
            assert transport.attempts == 1
        finally:
            shutdown()

    def test_500_maps_to_service_error_after_retries(self):
        script = _FlakyScript(
            [(500, _error_body("internal", retryable=True))] * 3
        )
        transport, shutdown = script.start()
        try:
            client = ExpansionClient(transport)
            with pytest.raises(ServiceError):
                client.healthz()
            assert transport.attempts == 3  # initial + max_retries(2)
        finally:
            shutdown()


def _error_body(code: str, retryable: bool) -> dict:
    return {
        "api_version": "v1",
        "request_id": "req-flaky",
        "error": {
            "error": "ServerScripted",
            "code": code,
            "message": f"scripted {code}",
            "details": {},
            "retryable": retryable,
        },
    }


class _FlakyScript:
    """A real stdlib HTTP server answering from a scripted response list;
    once the script is exhausted it answers a healthy v1 envelope."""

    def __init__(self, responses: list[tuple[int, dict]]):
        self.responses = list(responses)

    def start(self, max_retries: int = 2):
        script = self.responses
        lock = threading.Lock()

        class Handler(BaseHTTPRequestHandler):
            def _answer(self):
                with lock:
                    if script:
                        status, body = script.pop(0)
                    else:
                        status, body = 200, {
                            "api_version": "v1",
                            "request_id": "req-ok",
                            "data": {"status": "ok", "job": {"job_id": "fit-x"}},
                        }
                encoded = json.dumps(body).encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(encoded)))
                self.end_headers()
                self.wfile.write(encoded)

            do_GET = do_POST = _answer

            def log_message(self, *args):
                pass

        httpd = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        host, port = httpd.server_address[:2]
        transport = HttpTransport(
            f"http://{host}:{port}",
            timeout=5.0,
            max_retries=max_retries,
            sleep=lambda _seconds: None,  # skip real backoff in tests
        )

        def shutdown():
            httpd.shutdown()
            httpd.server_close()

        return transport, shutdown


class TestHttpRetries:
    def test_retryable_responses_are_retried_until_success(self):
        script = _FlakyScript([(503, _error_body("unavailable", retryable=True))] * 2)
        transport, shutdown = script.start(max_retries=3)
        try:
            client = ExpansionClient(transport)
            assert client.healthz()["status"] == "ok"
            assert transport.attempts == 3  # two 503s, then the success
        finally:
            shutdown()

    def test_non_retryable_errors_are_not_retried(self):
        script = _FlakyScript([(404, _error_body("unknown_method", retryable=False))])
        transport, shutdown = script.start(max_retries=3)
        try:
            client = ExpansionClient(transport)
            with pytest.raises(UnknownMethodError):
                client.healthz()
            assert transport.attempts == 1
        finally:
            shutdown()

    def test_connection_failures_exhaust_into_transport_error(self):
        transport = HttpTransport(
            "http://127.0.0.1:9",  # discard port: nothing listens
            timeout=0.2,
            max_retries=1,
            sleep=lambda _seconds: None,
        )
        with pytest.raises(TransportError):
            transport.request("GET", "/v1/healthz")
        assert transport.attempts == 2

    def test_post_is_not_replayed_after_connection_failure(self):
        """A POST that may have reached the server must not be re-sent blindly
        (re-POSTing /v1/fits would duplicate the job and surface a 409)."""
        transport = HttpTransport(
            "http://127.0.0.1:9",
            timeout=0.2,
            max_retries=3,
            sleep=lambda _seconds: None,
        )
        with pytest.raises(TransportError):
            transport.request("POST", "/v1/fits", {"method": "stub"})
        assert transport.attempts == 1


class TestKeepAlive:
    """Satellite: connection pooling on the HTTP transport."""

    def test_connections_are_reused_across_requests(self, server):
        transport = HttpTransport(server.url, timeout=10.0)
        try:
            for _ in range(3):
                status, _body = transport.request("GET", "/v1/healthz")
                assert status == 200
            assert transport.connections_opened == 1
            assert transport.stale_reconnects == 0
        finally:
            transport.close()

    def test_stale_pooled_connection_is_replayed_on_a_fresh_one(self, server):
        """A keep-alive socket the server closed while idle must not surface
        an error: the request replays once on a fresh connection."""
        import socket as socket_module

        transport = HttpTransport(server.url, timeout=10.0)
        try:
            assert transport.request("GET", "/v1/healthz")[0] == 200
            assert len(transport._idle) == 1
            # simulate the server dropping the idle keep-alive socket
            transport._idle[0].sock.shutdown(socket_module.SHUT_RDWR)
            status, body = transport.request("GET", "/v1/healthz")
            assert status == 200
            assert body["data"] == {"status": "ok"}
            assert transport.stale_reconnects == 1
            assert transport.attempts == 2  # two requests, no outer retries
        finally:
            transport.close()

    def test_replay_bypasses_a_pool_full_of_stale_sockets(self, server):
        """After e.g. a server restart every idle pooled socket is dead; the
        one-shot replay must use a genuinely fresh connection, not pop the
        next stale socket from the pool and give up."""
        import socket as socket_module

        transport = HttpTransport(server.url, timeout=10.0)
        try:
            assert transport.request("GET", "/v1/healthz")[0] == 200
            # hand-craft a second pooled connection, then kill both sockets
            extra = transport._fresh_connection()
            extra.request("GET", "/v1/healthz")
            extra.getresponse().read()
            transport._checkin(extra)
            assert len(transport._idle) == 2
            for connection in transport._idle:
                connection.sock.shutdown(socket_module.SHUT_RDWR)
            status, body = transport.request("GET", "/v1/healthz")
            assert status == 200
            assert body["data"] == {"status": "ok"}
            assert transport.stale_reconnects == 1
        finally:
            transport.close()

    def test_keep_alive_can_be_disabled(self, server):
        transport = HttpTransport(server.url, timeout=10.0, keep_alive=False)
        try:
            for _ in range(2):
                assert transport.request("GET", "/v1/healthz")[0] == 200
            assert transport.connections_opened == 2
            assert transport._idle == []
        finally:
            transport.close()

    def test_error_responses_do_not_poison_the_pool(self, server):
        """The server closes the connection on errors; the transport must not
        pool the dead socket (and the next call just opens a fresh one)."""
        transport = HttpTransport(server.url, timeout=10.0)
        try:
            status, _body = transport.request(
                "POST", "/v1/expand", {"method": "nope", "query_id": "q"}
            )
            assert status == 404
            assert transport._idle == []  # Connection: close honoured
            assert transport.request("GET", "/v1/healthz")[0] == 200
        finally:
            transport.close()


class TestFitCancellation:
    """Satellite: DELETE /v1/fits/<id> for queued jobs, 409 otherwise."""

    @pytest.fixture()
    def cancel_client(self, tiny_dataset):
        service = ExpansionService(
            tiny_dataset,
            config=ServiceConfig(batch_wait_ms=0.0, port=0),
            factories={
                "slowx": lambda _resources: SlowFitExpander(),
                "slowy": lambda _resources: SlowFitExpander(),
            },
        )
        client = ExpansionClient.in_process(service)
        yield client
        service.close()

    def test_cancel_queued_job(self, cancel_client):
        running = cancel_client.start_fit("slowx")  # occupies the single worker
        queued = cancel_client.start_fit("slowy")
        cancelled = cancel_client.cancel_fit(queued["job_id"])
        assert cancelled["status"] == "cancelled"
        assert cancelled["finished_at"] is not None
        assert cancel_client.fit_status(queued["job_id"])["status"] == "cancelled"
        with pytest.raises(JobError):
            cancel_client.wait_for_fit(queued["job_id"], timeout=5.0)
        # the method slot is free again immediately after cancellation
        resubmitted = cancel_client.start_fit("slowy")
        assert resubmitted["job_id"] != queued["job_id"]
        cancel_client.wait_for_fit(running["job_id"], timeout=30.0)
        cancel_client.wait_for_fit(resubmitted["job_id"], timeout=30.0)

    def test_cancel_running_or_finished_job_conflicts(self, cancel_client):
        job = cancel_client.start_fit("slowx")
        # the job leaves "queued" almost immediately (single worker, empty
        # queue); poll until it does, then cancellation must conflict.
        deadline = time.monotonic() + 10.0
        while (
            cancel_client.fit_status(job["job_id"])["status"] == "queued"
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        with pytest.raises(JobConflictError) as exc:
            cancel_client.cancel_fit(job["job_id"])
        assert exc.value.details["job_id"] == job["job_id"]
        final = cancel_client.wait_for_fit(job["job_id"], timeout=30.0)
        assert final["status"] == "succeeded"
        with pytest.raises(JobConflictError):
            cancel_client.cancel_fit(job["job_id"])

    def test_cancel_unknown_job_is_not_found(self, cancel_client):
        from repro.exceptions import JobNotFoundError

        with pytest.raises(JobNotFoundError):
            cancel_client.cancel_fit("fit-nope")

    def test_cancel_over_http_maps_the_same_errors(self, http_client):
        from repro.exceptions import JobNotFoundError

        with pytest.raises(JobNotFoundError):
            http_client.cancel_fit("fit-nope")


class TestLegacyBackCompat:
    """Pin the pre-v1 wire shapes so existing callers keep working."""

    def test_legacy_expand_wire_shape_is_pinned(self, server, tiny_dataset):
        query = tiny_dataset.queries[0]
        body = json.dumps(
            {"method": "stub", "query_id": query.query_id, "top_k": 5}
        ).encode("utf-8")
        request = urllib.request.Request(
            server.url + "/expand",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.status == 200
            assert response.headers.get("Deprecation") == "true"
            payload = json.loads(response.read())
        # exact pre-v1 shape: no envelope, these keys and only these keys.
        assert set(payload) == {
            "method", "query_id", "top_k", "ranking", "cached", "latency_ms",
        }
        assert payload["method"] == "stub"
        assert payload["top_k"] == 5
        assert len(payload["ranking"]) == 5
        assert all(
            set(item) == {"entity_id", "name", "score"} for item in payload["ranking"]
        )
        assert isinstance(payload["cached"], bool)

    def test_legacy_error_shape_is_pinned(self, server):
        request = urllib.request.Request(
            server.url + "/expand",
            data=json.dumps({"method": "nope", "query_id": "q"}).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(request, timeout=10)
        assert exc.value.code == 404
        payload = json.loads(exc.value.read())
        assert set(payload) == {"error", "message"}
        assert payload["error"] == "UnknownMethodError"

    def test_legacy_get_routes_delegate_to_v1(self, server):
        for path in ("/healthz", "/methods", "/stats"):
            with urllib.request.urlopen(server.url + path, timeout=10) as response:
                assert response.status == 200
                assert response.headers.get("Deprecation") == "true"
                payload = json.loads(response.read())
            assert "api_version" not in payload
