"""Tests for the JSON / JSON-lines IO helpers."""

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.types import RankedEntity
from repro.utils.iox import read_json, read_jsonl, to_jsonable, write_json, write_jsonl


class TestToJsonable:
    def test_scalars_pass_through(self):
        for value in (None, True, 3, 2.5, "x"):
            assert to_jsonable(value) == value

    def test_dataclasses_and_to_dict_objects(self):
        @dataclass
        class Point:
            x: int
            tags: tuple

        assert to_jsonable(Point(1, ("a", "b"))) == {"x": 1, "tags": ["a", "b"]}
        assert to_jsonable(RankedEntity(7, 0.5)) == {"entity_id": 7, "score": 0.5}

    def test_containers_recurse(self):
        payload = {"rows": [(1, 2), {3, 4}], 5: "five", "path": Path("/tmp/x")}
        assert to_jsonable(payload) == {
            "rows": [[1, 2], [3, 4]],
            "5": "five",
            "path": "/tmp/x",
        }

    def test_numpy_values_reduce(self):
        converted = to_jsonable(
            {"scalar": np.float64(0.25), "vec": np.array([1, 2]), "i": np.int64(3)}
        )
        assert converted == {"scalar": 0.25, "vec": [1, 2], "i": 3}
        json.dumps(converted)  # actually serialisable

    def test_unknown_objects_fall_back_to_str(self):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        assert to_jsonable(Opaque()) == "<opaque>"


class TestJson:
    def test_roundtrip(self, tmp_path):
        payload = {"a": 1, "b": [1, 2, 3], "c": {"nested": True}}
        path = tmp_path / "data.json"
        write_json(path, payload)
        assert read_json(path) == payload

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "data.json"
        write_json(path, {"x": 1})
        assert read_json(path) == {"x": 1}

    def test_unicode_preserved(self, tmp_path):
        path = tmp_path / "data.json"
        write_json(path, {"name": "Zürich — 北京"})
        assert read_json(path)["name"] == "Zürich — 北京"


class TestJsonl:
    def test_roundtrip(self, tmp_path):
        rows = [{"i": i} for i in range(5)]
        path = tmp_path / "rows.jsonl"
        count = write_jsonl(path, rows)
        assert count == 5
        assert list(read_jsonl(path)) == rows

    def test_empty_iterable(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert write_jsonl(path, []) == 0
        assert list(read_jsonl(path)) == []

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        path.write_text('{"a": 1}\n\n{"a": 2}\n', encoding="utf-8")
        assert list(read_jsonl(path)) == [{"a": 1}, {"a": 2}]

    def test_generator_input(self, tmp_path):
        path = tmp_path / "gen.jsonl"
        count = write_jsonl(path, ({"i": i} for i in range(3)))
        assert count == 3
