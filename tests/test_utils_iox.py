"""Tests for the JSON / JSON-lines IO helpers."""

from repro.utils.iox import read_json, read_jsonl, write_json, write_jsonl


class TestJson:
    def test_roundtrip(self, tmp_path):
        payload = {"a": 1, "b": [1, 2, 3], "c": {"nested": True}}
        path = tmp_path / "data.json"
        write_json(path, payload)
        assert read_json(path) == payload

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "data.json"
        write_json(path, {"x": 1})
        assert read_json(path) == {"x": 1}

    def test_unicode_preserved(self, tmp_path):
        path = tmp_path / "data.json"
        write_json(path, {"name": "Zürich — 北京"})
        assert read_json(path)["name"] == "Zürich — 北京"


class TestJsonl:
    def test_roundtrip(self, tmp_path):
        rows = [{"i": i} for i in range(5)]
        path = tmp_path / "rows.jsonl"
        count = write_jsonl(path, rows)
        assert count == 5
        assert list(read_jsonl(path)) == rows

    def test_empty_iterable(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert write_jsonl(path, []) == 0
        assert list(read_jsonl(path)) == []

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        path.write_text('{"a": 1}\n\n{"a": 2}\n', encoding="utf-8")
        assert list(read_jsonl(path)) == [{"a": 1}, {"a": 2}]

    def test_generator_input(self, tmp_path):
        path = tmp_path / "gen.jsonl"
        count = write_jsonl(path, ({"i": i} for i in range(3)))
        assert count == 3
