"""The multi-tenant front door: quotas, keyfiles, admission, and the wire.

Unit tests drive the token buckets and the admission controller on an
injected clock so the math is exact; the wire tests run a real
keyfile-configured :class:`ExpansionHTTPServer` on an ephemeral port and
assert the 401/429 envelope shapes, the ``Retry-After`` header, and the
exempt routes.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.config import ServiceConfig
from repro.core.base import Expander
from repro.exceptions import (
    AuthenticationError,
    ConfigurationError,
    OverloadedError,
    RateLimitedError,
)
from repro.gate import (
    ANONYMOUS_TENANT,
    API_KEY_HEADER,
    AdmissionController,
    Gate,
    QuotaSpec,
    RateLimiter,
    TENANT_HEADER,
    TenantDirectory,
    TokenBucket,
    hash_key,
    is_valid_tenant_id,
    operation_for,
    retry_after_header,
)
from repro.serve import ExpansionHTTPServer, ExpansionService
from repro.types import ExpansionResult


def wait_until(predicate, timeout=5.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not reached in time")


# -- quota parsing ---------------------------------------------------------------------
class TestQuotaSpec:
    def test_parse_forms(self):
        assert QuotaSpec.parse(10) == QuotaSpec(rate=10.0, burst=10.0)
        assert QuotaSpec.parse(0.5) == QuotaSpec(rate=0.5, burst=1.0)
        assert QuotaSpec.parse("10") == QuotaSpec(rate=10.0, burst=10.0)
        assert QuotaSpec.parse("10:25") == QuotaSpec(rate=10.0, burst=25.0)
        assert QuotaSpec.parse({"rate": 3}) == QuotaSpec(rate=3.0, burst=3.0)
        assert QuotaSpec.parse({"rate": 3, "burst": 9}) == QuotaSpec(rate=3.0, burst=9.0)
        spec = QuotaSpec(rate=2.0, burst=4.0)
        assert QuotaSpec.parse(spec) is spec

    @pytest.mark.parametrize(
        "bad", [0, -1, "0", "nope", "1:0", {"burst": 5}, {"rate": 1, "x": 2}, True, None]
    )
    def test_parse_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            QuotaSpec.parse(bad)

    def test_round_trips_through_dict(self):
        spec = QuotaSpec(rate=7.0, burst=11.0)
        assert QuotaSpec.parse(spec.to_dict()) == spec


# -- token bucket ----------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_then_refill_math(self):
        now = [100.0]
        bucket = TokenBucket(rate=2.0, burst=4.0, clock=lambda: now[0])
        # a fresh bucket holds its full burst.
        assert [bucket.try_acquire() for _ in range(4)] == [0.0] * 4
        wait = bucket.try_acquire()
        assert wait == pytest.approx(0.5)  # 1 token at 2/s
        now[0] += 0.5
        assert bucket.try_acquire() == 0.0
        # refill never exceeds the burst cap.
        now[0] += 1000.0
        assert bucket.level() == pytest.approx(4.0)

    def test_refund_restores_a_token(self):
        now = [0.0]
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=lambda: now[0])
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0
        bucket.refund()
        assert bucket.try_acquire() == 0.0

    def test_concurrent_acquire_never_over_grants(self):
        # frozen clock: exactly `burst` grants can ever succeed.
        bucket = TokenBucket(rate=1000.0, burst=50.0, clock=lambda: 0.0)
        grants = []

        def hammer():
            for _ in range(20):
                if bucket.try_acquire() == 0.0:
                    grants.append(1)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(grants) == 50


class TestRateLimiter:
    def test_method_bucket_refusal_refunds_the_tenant_token(self):
        now = [0.0]
        limiter = RateLimiter(clock=lambda: now[0])
        quota = QuotaSpec(rate=1.0, burst=10.0)
        fit_quota = QuotaSpec(rate=0.1, burst=1.0)
        assert limiter.check("acme", quota, "fit", fit_quota) == 0.0
        # the fit bucket is dry, but the tenant bucket must not be charged.
        wait = limiter.check("acme", quota, "fit", fit_quota)
        assert wait == pytest.approx(10.0)
        for _ in range(9):
            assert limiter.check("acme", quota, "read", None) == 0.0
        assert limiter.check("acme", quota, "read", None) > 0.0

    def test_overflow_shares_one_bucket_past_the_cap(self):
        limiter = RateLimiter(clock=lambda: 0.0, max_buckets=2)
        quota = QuotaSpec(rate=1.0, burst=1.0)
        assert limiter.check("t1", quota) == 0.0
        assert limiter.check("t2", quota) == 0.0
        # t3 and t4 land on the shared overflow bucket: one token between them.
        assert limiter.check("t3", quota) == 0.0
        assert limiter.check("t4", quota) > 0.0
        assert limiter.stats()["buckets"] == 3  # t1, t2, overflow

    def test_changed_quota_replaces_the_bucket(self):
        now = [0.0]
        limiter = RateLimiter(clock=lambda: now[0])
        assert limiter.check("acme", QuotaSpec(rate=1.0, burst=1.0)) == 0.0
        assert limiter.check("acme", QuotaSpec(rate=1.0, burst=1.0)) > 0.0
        # a keyfile reload that raises the quota takes effect immediately.
        assert limiter.check("acme", QuotaSpec(rate=1.0, burst=5.0)) == 0.0


# -- tenant directory ------------------------------------------------------------------
def write_keyfile(path, payload):
    path.write_text(json.dumps(payload), encoding="utf-8")


class TestTenantDirectory:
    def test_resolves_plaintext_and_hashed_keys(self, tmp_path):
        path = tmp_path / "keys.json"
        write_keyfile(
            path,
            {
                "tenants": [
                    {"tenant": "acme", "key": "s3cret", "quota": "10:20"},
                    {
                        "tenant": "beta",
                        "key_sha256": hash_key("other").upper(),
                        "method_quotas": {"fit": "1:1"},
                    },
                ]
            },
        )
        directory = TenantDirectory(str(path))
        acme = directory.resolve("s3cret")
        assert acme.tenant_id == "acme"
        assert acme.quota == QuotaSpec(rate=10.0, burst=20.0)
        beta = directory.resolve("other")
        assert beta.tenant_id == "beta"
        assert beta.method_quota("fit") == QuotaSpec(rate=1.0, burst=1.0)
        assert beta.method_quota("expand") is None
        assert directory.resolve("wrong") is None
        assert directory.resolve(None) is None  # no anonymous entry
        assert not directory.allows_anonymous
        assert directory.tenant_ids() == ["acme", "beta"]

    def test_anonymous_entry_admits_keyless_callers(self, tmp_path):
        path = tmp_path / "keys.json"
        write_keyfile(path, {"anonymous": {"quota": 5}, "tenants": []})
        directory = TenantDirectory(str(path))
        anonymous = directory.resolve(None)
        assert anonymous.tenant_id == ANONYMOUS_TENANT
        assert directory.allows_anonymous

    def test_hot_reload_swaps_the_table(self, tmp_path):
        path = tmp_path / "keys.json"
        write_keyfile(path, {"tenants": [{"tenant": "acme", "key": "a"}]})
        directory = TenantDirectory(str(path), reload_interval_seconds=0.0)
        assert directory.resolve("a").tenant_id == "acme"
        write_keyfile(path, {"tenants": [{"tenant": "newco", "key": "b"}]})
        wait_until(lambda: directory.resolve("b") is not None)
        assert directory.resolve("a") is None
        assert directory.stats()["reloads"] == 1

    def test_bad_reload_keeps_the_last_good_table(self, tmp_path):
        path = tmp_path / "keys.json"
        write_keyfile(path, {"tenants": [{"tenant": "acme", "key": "a"}]})
        directory = TenantDirectory(str(path), reload_interval_seconds=0.0)
        path.write_text("{not json", encoding="utf-8")
        # resolve() is what triggers the reload attempt; it must keep
        # serving the old table while counting the failure.
        wait_until(
            lambda: directory.resolve("a") is not None
            and directory.stats()["reload_errors"] >= 1
        )
        assert directory.resolve("a").tenant_id == "acme"

    def test_bad_keyfile_at_boot_raises(self, tmp_path):
        path = tmp_path / "keys.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigurationError):
            TenantDirectory(str(path))

    def test_duplicate_keys_are_rejected(self, tmp_path):
        path = tmp_path / "keys.json"
        write_keyfile(
            path,
            {
                "tenants": [
                    {"tenant": "a", "key": "same"},
                    {"tenant": "b", "key": "same"},
                ]
            },
        )
        with pytest.raises(ConfigurationError, match="reuses the key"):
            TenantDirectory(str(path))


# -- the gate --------------------------------------------------------------------------
class TestGate:
    def test_no_directory_shares_the_default_quota(self):
        now = [0.0]
        gate = Gate(default_quota=QuotaSpec(rate=1.0, burst=2.0), clock=lambda: now[0])
        assert gate.check(None, "expand") == ANONYMOUS_TENANT
        assert gate.check("ignored-key", "expand") == ANONYMOUS_TENANT
        with pytest.raises(RateLimitedError) as excinfo:
            gate.check(None, "expand")
        assert excinfo.value.details["retry_after"] == pytest.approx(1.0)
        now[0] += 1.0
        assert gate.check(None, "expand") == ANONYMOUS_TENANT

    def test_unknown_and_missing_keys_raise_authentication_error(self, tmp_path):
        path = tmp_path / "keys.json"
        write_keyfile(path, {"tenants": [{"tenant": "acme", "key": "good"}]})
        gate = Gate(directory=TenantDirectory(str(path)))
        assert gate.check("good", "read") == "acme"
        with pytest.raises(AuthenticationError):
            gate.check("bad", "read")
        with pytest.raises(AuthenticationError):
            gate.check(None, "read")
        assert gate.stats()["auth_failures"] == 2

    def test_tenant_summary_rows(self):
        now = [0.0]
        gate = Gate(default_quota=QuotaSpec(rate=1.0, burst=1.0), clock=lambda: now[0])
        gate.check(None, "expand")
        with pytest.raises(RateLimitedError):
            gate.check(None, "expand")
        assert gate.tenant_summary() == [
            {"tenant": ANONYMOUS_TENANT, "requests": 1, "throttled": 1}
        ]


# -- admission control -----------------------------------------------------------------
class TestAdmission:
    def test_full_queue_sheds_immediately_with_retry_after(self):
        controller = AdmissionController(max_concurrent=1, queue_depth=0)
        controller.acquire("interactive")
        with pytest.raises(OverloadedError) as excinfo:
            controller.acquire("interactive")
        assert excinfo.value.details["retry_after"] == pytest.approx(1.0)
        assert excinfo.value.details["lane"] == "interactive"
        controller.release()
        assert controller.stats()["shed"]["interactive"] == 1

    def test_wait_timeout_sheds(self):
        controller = AdmissionController(
            max_concurrent=1, queue_depth=8, timeout_seconds=0.05
        )
        controller.acquire("batch")
        started = time.monotonic()
        with pytest.raises(OverloadedError):
            controller.acquire("batch")
        assert time.monotonic() - started < 5.0
        controller.release()
        assert controller.stats()["timeouts"]["batch"] == 1

    def test_interactive_preempts_waiting_batch(self):
        controller = AdmissionController(max_concurrent=1, queue_depth=8)
        controller.acquire("interactive")  # hold the only slot
        order = []

        def run(lane):
            with controller.admit(lane):
                order.append(lane)

        batch = threading.Thread(target=run, args=("batch",))
        batch.start()
        wait_until(lambda: controller.stats()["waiting"]["batch"] == 1)
        interactive = threading.Thread(target=run, args=("interactive",))
        interactive.start()
        wait_until(lambda: controller.stats()["waiting"]["interactive"] == 1)

        controller.release()  # one slot frees: interactive must win it
        interactive.join(timeout=5.0)
        batch.join(timeout=5.0)
        assert order == ["interactive", "batch"]
        stats = controller.stats()
        assert stats["active"] == 0
        assert stats["admitted"] == {"interactive": 2, "batch": 1}

    def test_unsheddable_callers_wait_out_the_queue(self):
        controller = AdmissionController(
            max_concurrent=1, queue_depth=0, timeout_seconds=0.01
        )
        controller.acquire("batch")
        done = threading.Event()

        def fit_job():
            # queue_depth=0 would shed instantly; shed=False holds its place.
            with controller.admit("batch", shed=False):
                done.set()

        thread = threading.Thread(target=fit_job)
        thread.start()
        wait_until(lambda: controller.stats()["waiting"]["batch"] == 1)
        assert not done.is_set()
        controller.release()
        thread.join(timeout=5.0)
        assert done.is_set()

    def test_unknown_lane_is_rejected(self):
        controller = AdmissionController(max_concurrent=1)
        with pytest.raises(ValueError):
            controller.acquire("vip")


# -- helpers and wire-level tests ------------------------------------------------------
class TestHelpers:
    def test_operation_classification(self):
        assert operation_for("POST", "/v1/expand") == "expand"
        assert operation_for("POST", "/expand") == "expand"
        assert operation_for("POST", "/v1/expand/batch") == "expand_batch"
        assert operation_for("POST", "/v1/fits") == "fit"
        assert operation_for("GET", "/v1/fits") == "read"
        assert operation_for("GET", "/v1/stats") == "read"

    def test_retry_after_header_rounds_up(self):
        assert retry_after_header(0.001) == "1"
        assert retry_after_header(1.2) == "2"
        assert retry_after_header(30.0) == "30"

    def test_tenant_id_shape(self):
        assert is_valid_tenant_id("acme-prod_1.eu")
        assert not is_valid_tenant_id("")
        assert not is_valid_tenant_id("bad tenant")
        assert not is_valid_tenant_id("x" * 65)
        assert not is_valid_tenant_id(None)


class StubExpander(Expander):
    name = "stub"

    def _expand(self, query, top_k):
        scored = [(eid, 1.0 / (1.0 + eid)) for eid in self.candidate_ids(query)]
        return ExpansionResult.from_scores(query.query_id, scored)


ACME_KEY = "acme-front-door-key"
TINY_KEY = "tiny-front-door-key"


@pytest.fixture(scope="module")
def gated_server(tiny_dataset, tmp_path_factory):
    keyfile = tmp_path_factory.mktemp("gate") / "keys.json"
    write_keyfile(
        keyfile,
        {
            "tenants": [
                {"tenant": "acme", "key": ACME_KEY, "quota": "1000:1000"},
                {"tenant": "tiny", "key": TINY_KEY, "quota": "0.001:2"},
            ]
        },
    )
    service = ExpansionService(
        tiny_dataset,
        config=ServiceConfig(batch_wait_ms=0.0, port=0, keyfile=str(keyfile)),
        factories={"stub": lambda _resources: StubExpander()},
    )
    server = ExpansionHTTPServer(service, port=0).start()
    yield server
    server.shutdown()


def http(server, verb, path, payload=None, headers=None):
    body = json.dumps(payload).encode("utf-8") if payload is not None else None
    request = urllib.request.Request(
        server.url + path,
        data=body,
        method=verb,
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


class TestGatedServer:
    def test_missing_key_is_401(self, gated_server):
        status, body, _ = http(gated_server, "GET", "/v1/methods")
        assert status == 401
        assert body["error"]["code"] == "unauthenticated"
        assert body["error"]["retryable"] is False

    def test_unknown_key_is_401(self, gated_server):
        status, body, _ = http(
            gated_server, "GET", "/v1/methods", headers={API_KEY_HEADER: "nope"}
        )
        assert status == 401
        assert "unknown API key" in body["error"]["message"]

    def test_good_key_serves_normally(self, gated_server, tiny_dataset):
        status, body, _ = http(
            gated_server,
            "POST",
            "/v1/expand",
            {"method": "stub", "query_id": tiny_dataset.queries[0].query_id, "top_k": 5},
            headers={API_KEY_HEADER: ACME_KEY},
        )
        assert status == 200
        assert len(body["data"]["ranking"]) == 5

    def test_healthz_and_metrics_stay_exempt(self, gated_server):
        status, body, _ = http(gated_server, "GET", "/v1/healthz")
        assert (status, body["data"]) == (200, {"status": "ok"})
        request = urllib.request.Request(gated_server.url + "/v1/metrics")
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.status == 200

    def test_over_quota_is_429_with_retry_after(self, gated_server):
        # burst 2 at 0.001/s: the third request inside the window must throttle.
        statuses, last_body, last_headers = [], None, None
        for _ in range(3):
            status, body, headers = http(
                gated_server, "GET", "/v1/methods", headers={API_KEY_HEADER: TINY_KEY}
            )
            statuses.append(status)
            if status == 429:
                last_body, last_headers = body, headers
        assert statuses[:2] == [200, 200]
        assert statuses[2] == 429
        error = last_body["error"]
        assert error["code"] == "rate_limited"
        assert error["retryable"] is True
        assert error["details"]["retry_after"] > 0
        header = int(last_headers["Retry-After"])
        assert header >= 1
        # the header is the ceiling of the exact hint in details.
        assert header - 1 < error["details"]["retry_after"] <= header

    def test_stats_grow_a_gate_section(self, gated_server):
        status, body, _ = http(
            gated_server, "GET", "/v1/stats", headers={API_KEY_HEADER: ACME_KEY}
        )
        assert status == 200
        gate = body["data"]["gate"]
        assert gate["requests"]["acme"] >= 1
        assert gate["throttled"]["tiny"] >= 1
        assert gate["directory"]["tenants"] == 2

    def test_throttled_requests_spend_no_quota(self, gated_server):
        before = http(
            gated_server, "GET", "/v1/stats", headers={API_KEY_HEADER: ACME_KEY}
        )[1]["data"]["gate"]["throttled"].get("tiny", 0)
        for _ in range(5):
            status, _, _ = http(
                gated_server, "GET", "/v1/methods", headers={API_KEY_HEADER: TINY_KEY}
            )
            assert status == 429
        after = http(
            gated_server, "GET", "/v1/stats", headers={API_KEY_HEADER: ACME_KEY}
        )[1]["data"]["gate"]["throttled"]["tiny"]
        assert after == before + 5


@pytest.fixture(scope="module")
def open_server(tiny_dataset):
    """No keyfile, no quota: a worker running open behind a cluster gateway."""
    service = ExpansionService(
        tiny_dataset,
        config=ServiceConfig(batch_wait_ms=0.0, port=0),
        factories={"stub": lambda _resources: StubExpander()},
    )
    server = ExpansionHTTPServer(service, port=0).start()
    yield server
    server.shutdown()


class TestOpenWorkerTenantHint:
    def test_forwarded_tenant_labels_worker_metrics(self, open_server, tiny_dataset):
        status, _, _ = http(
            open_server,
            "POST",
            "/v1/expand",
            {"method": "stub", "query_id": tiny_dataset.queries[1].query_id},
            headers={TENANT_HEADER: "hinted-tenant"},
        )
        assert status == 200
        request = urllib.request.Request(open_server.url + "/v1/metrics")
        with urllib.request.urlopen(request, timeout=10) as response:
            text = response.read().decode("utf-8")
        assert 'tenant="hinted-tenant"' in text

    def test_malformed_hint_is_ignored(self, open_server, tiny_dataset):
        status, _, _ = http(
            open_server,
            "POST",
            "/v1/expand",
            {"method": "stub", "query_id": tiny_dataset.queries[2].query_id},
            headers={TENANT_HEADER: "bad tenant//"},
        )
        assert status == 200
        request = urllib.request.Request(open_server.url + "/v1/metrics")
        with urllib.request.urlopen(request, timeout=10) as response:
            text = response.read().decode("utf-8")
        assert "bad tenant" not in text


# -- client retry behaviour ------------------------------------------------------------
class TestTransportRetryAfter:
    def _transport(self, responses, sleeps):
        from repro.client.transport import HttpTransport

        transport = HttpTransport(
            "http://127.0.0.1:9", max_retries=3, sleep=sleeps.append
        )
        queue = list(responses)
        transport._request_once = lambda verb, path, payload: queue.pop(0)
        return transport

    @staticmethod
    def _throttled_body(retry_after=None):
        details = {} if retry_after is None else {"retry_after": retry_after}
        return {
            "error": {
                "error": "RateLimitedError",
                "code": "rate_limited",
                "message": "over quota",
                "details": details,
                "retryable": True,
            }
        }

    def test_retry_after_details_beat_exponential_backoff(self):
        sleeps = []
        transport = self._transport(
            [
                (429, self._throttled_body(0.7), "1"),
                (200, {"data": {"ok": True}}, None),
            ],
            sleeps,
        )
        status, body = transport.request("POST", "/v1/expand", {})
        assert status == 200
        assert sleeps == [pytest.approx(0.7)]

    def test_header_is_the_fallback_hint(self):
        sleeps = []
        transport = self._transport(
            [
                (429, self._throttled_body(), "2"),
                (200, {"data": {}}, None),
            ],
            sleeps,
        )
        transport.request("GET", "/v1/methods", None)
        assert sleeps == [pytest.approx(2.0)]

    def test_hostile_hints_are_capped(self):
        from repro.client.transport import MAX_RETRY_AFTER_SECONDS

        sleeps = []
        transport = self._transport(
            [
                (429, self._throttled_body(9999.0), "9999"),
                (200, {"data": {}}, None),
            ],
            sleeps,
        )
        transport.request("GET", "/v1/methods", None)
        assert sleeps == [pytest.approx(MAX_RETRY_AFTER_SECONDS)]

    def test_missing_hint_keeps_exponential_backoff(self):
        sleeps = []
        transport = self._transport(
            [
                (503, {"error": {"code": "unavailable", "retryable": True,
                                 "details": {}, "message": "x", "error": "E"}}, None),
                (200, {"data": {}}, None),
            ],
            sleeps,
        )
        transport.request("GET", "/v1/methods", None)
        assert sleeps == [pytest.approx(0.1)]
