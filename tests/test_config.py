"""Tests for configuration validation."""

import pytest

from repro.config import (
    CausalLMConfig,
    ContrastiveConfig,
    DatasetConfig,
    EncoderConfig,
    EvaluationConfig,
    GenExpanConfig,
    OracleConfig,
    RetExpanConfig,
)
from repro.exceptions import ConfigurationError


class TestDatasetConfig:
    def test_defaults_valid(self):
        DatasetConfig().validate()

    def test_profiles_valid(self):
        DatasetConfig.tiny().validate()
        DatasetConfig.small().validate()
        DatasetConfig.default().validate()

    def test_profile_sizes_increase(self):
        tiny, small, default = DatasetConfig.tiny(), DatasetConfig.small(), DatasetConfig.default()
        assert tiny.entities_per_class < small.entities_per_class < default.entities_per_class

    def test_too_many_fine_classes_rejected(self):
        config = DatasetConfig(num_fine_classes=11)
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_too_few_entities_rejected(self):
        config = DatasetConfig(entities_per_class=5)
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_bad_seed_range_rejected(self):
        config = DatasetConfig(min_seeds=5, max_seeds=3)
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_min_targets_must_exceed_max_seeds(self):
        config = DatasetConfig(min_seeds=3, max_seeds=5, min_targets=5)
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ConfigurationError):
            DatasetConfig(long_tail_fraction=1.5).validate()
        with pytest.raises(ConfigurationError):
            DatasetConfig(wikidata_coverage=-0.1).validate()

    def test_to_dict_contains_seed(self):
        assert DatasetConfig(seed=99).to_dict()["seed"] == 99


class TestEncoderConfig:
    def test_defaults_valid(self):
        EncoderConfig().validate()

    def test_negative_dimension_rejected(self):
        with pytest.raises(ConfigurationError):
            EncoderConfig(embedding_dim=0).validate()

    def test_label_smoothing_bounds(self):
        with pytest.raises(ConfigurationError):
            EncoderConfig(label_smoothing=1.0).validate()
        EncoderConfig(label_smoothing=0.0).validate()

    def test_hidden_weight_bounds(self):
        with pytest.raises(ConfigurationError):
            EncoderConfig(hidden_weight=1.5).validate()

    def test_zero_epochs_allowed(self):
        EncoderConfig(epochs=0).validate()


class TestContrastiveConfig:
    def test_defaults_valid(self):
        ContrastiveConfig().validate()

    def test_non_positive_temperature_rejected(self):
        with pytest.raises(ConfigurationError):
            ContrastiveConfig(temperature=0.0).validate()

    def test_non_positive_mined_list_rejected(self):
        with pytest.raises(ConfigurationError):
            ContrastiveConfig(mined_list_size=0).validate()


class TestCausalLMConfig:
    def test_defaults_valid(self):
        CausalLMConfig().validate()

    def test_order_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            CausalLMConfig(ngram_order=0).validate()

    def test_affinity_weight_bounds(self):
        with pytest.raises(ConfigurationError):
            CausalLMConfig(affinity_weight=1.2).validate()


class TestOracleConfig:
    def test_defaults_valid(self):
        OracleConfig().validate()

    def test_rates_must_be_probabilities(self):
        with pytest.raises(ConfigurationError):
            OracleConfig(hallucination_rate=1.5).validate()
        with pytest.raises(ConfigurationError):
            OracleConfig(base_error_rate=-0.1).validate()


class TestRetExpanConfig:
    def test_defaults_valid(self):
        RetExpanConfig().validate()

    def test_nested_configs_validated(self):
        config = RetExpanConfig(encoder=EncoderConfig(embedding_dim=-1))
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_invalid_segment_length_rejected(self):
        with pytest.raises(ConfigurationError):
            RetExpanConfig(segment_length=0).validate()

    def test_negative_contrastive_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            RetExpanConfig(contrastive_weight=-0.5).validate()


class TestGenExpanConfig:
    def test_defaults_valid(self):
        GenExpanConfig().validate()

    def test_all_cot_modes_valid(self):
        for mode in GenExpanConfig.VALID_COT_MODES:
            GenExpanConfig(cot_mode=mode).validate()

    def test_unknown_cot_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            GenExpanConfig(cot_mode="banana").validate()

    def test_non_positive_iterations_rejected(self):
        with pytest.raises(ConfigurationError):
            GenExpanConfig(num_iterations=0).validate()


class TestEvaluationConfig:
    def test_defaults_valid(self):
        EvaluationConfig().validate()

    def test_paper_cutoffs(self):
        assert EvaluationConfig().cutoffs == (10, 20, 50, 100)

    def test_empty_cutoffs_rejected(self):
        with pytest.raises(ConfigurationError):
            EvaluationConfig(cutoffs=()).validate()

    def test_negative_cutoff_rejected(self):
        with pytest.raises(ConfigurationError):
            EvaluationConfig(cutoffs=(10, -5)).validate()
