"""Tests for the word tokenizer."""

from repro.text.tokenizer import MASK_TOKEN, WordTokenizer


class TestWordTokenizer:
    def setup_method(self):
        self.tokenizer = WordTokenizer()

    def test_lowercases_words(self):
        assert self.tokenizer.tokenize("Vexo Mobile ships Phones") == [
            "vexo",
            "mobile",
            "ships",
            "phones",
        ]

    def test_mask_token_preserved(self):
        tokens = self.tokenizer.tokenize(f"{MASK_TOKEN} ships phones.")
        assert tokens[0] == MASK_TOKEN

    def test_mask_token_case_sensitive(self):
        # Only the exact [MASK] spelling is special.
        tokens = self.tokenizer.tokenize("[mask] ships")
        assert MASK_TOKEN not in tokens

    def test_punctuation_dropped_by_default(self):
        assert self.tokenizer.tokenize("Hello, world!") == ["hello", "world"]

    def test_punctuation_kept_when_requested(self):
        tokenizer = WordTokenizer(keep_punctuation=True)
        assert "," in tokenizer.tokenize("Hello, world!")

    def test_numbers_kept(self):
        assert self.tokenizer.tokenize("Founded in 1998") == ["founded", "in", "1998"]

    def test_apostrophes_kept_in_word(self):
        assert self.tokenizer.tokenize("the brand's phones") == ["the", "brand's", "phones"]

    def test_empty_string(self):
        assert self.tokenizer.tokenize("") == []

    def test_whitespace_only(self):
        assert self.tokenizer.tokenize("   \n\t ") == []

    def test_entity_name_tokenization_strips_mask(self):
        assert self.tokenizer.tokenize_entity_name("Vexo [MASK] Mobile") == ["vexo", "mobile"]

    def test_hyphenated_names_split(self):
        assert self.tokenizer.tokenize("Saint-Pierre") == ["saint", "pierre"]
