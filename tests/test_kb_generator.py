"""Tests for the synthetic entity generator."""

import pytest

from repro.exceptions import DatasetError
from repro.kb.generator import EntityGenerator
from repro.kb.schema import schema_by_name
from repro.utils.rng import RandomState


@pytest.fixture()
def generator():
    return EntityGenerator(RandomState(7))


class TestClassEntityGeneration:
    def test_count_respected(self, generator):
        schema = schema_by_name("countries")
        assert len(generator.generate_class_entities(schema, 50)) == 50

    def test_zero_count_rejected(self, generator):
        with pytest.raises(DatasetError):
            generator.generate_class_entities(schema_by_name("countries"), 0)

    def test_unique_ids_and_names(self, generator):
        schema = schema_by_name("mobile_phone_brands")
        entities = generator.generate_class_entities(schema, 120)
        assert len({e.entity_id for e in entities}) == 120
        assert len({e.name for e in entities}) == 120

    def test_all_attributes_assigned_valid_values(self, generator):
        schema = schema_by_name("chemical_elements")
        for entity in generator.generate_class_entities(schema, 60):
            assert set(entity.attributes) == set(schema.attributes)
            for attribute, value in entity.attributes.items():
                assert value in schema.attributes[attribute]

    def test_every_attribute_value_is_represented(self, generator):
        # With enough entities, each value of each attribute should appear,
        # which the negative-aware class generation relies on.
        schema = schema_by_name("countries")
        entities = generator.generate_class_entities(schema, 150)
        for attribute, values in schema.attributes.items():
            observed = {e.attributes[attribute] for e in entities}
            assert observed == set(values)

    def test_fine_class_recorded(self, generator):
        schema = schema_by_name("us_airports")
        assert all(
            e.fine_class == "us_airports"
            for e in generator.generate_class_entities(schema, 30)
        )

    def test_popularity_within_unit_interval(self, generator):
        schema = schema_by_name("countries")
        for entity in generator.generate_class_entities(schema, 80):
            assert 0.0 < entity.popularity <= 1.0

    def test_long_tail_fraction_controls_skew(self):
        schema = schema_by_name("countries")
        none_tail = EntityGenerator(RandomState(7)).generate_class_entities(
            schema, 100, long_tail_fraction=0.0
        )
        heavy_tail = EntityGenerator(RandomState(7)).generate_class_entities(
            schema, 100, long_tail_fraction=0.9
        )
        assert sum(e.popularity < 0.35 for e in none_tail) == 0
        assert sum(e.popularity < 0.35 for e in heavy_tail) > 50

    def test_ids_continue_across_classes(self, generator):
        first = generator.generate_class_entities(schema_by_name("countries"), 10)
        second = generator.generate_class_entities(schema_by_name("china_cities"), 10)
        assert max(e.entity_id for e in first) < min(e.entity_id for e in second)

    def test_determinism_for_same_seed(self):
        schema = schema_by_name("countries")
        a = EntityGenerator(RandomState(3)).generate_class_entities(schema, 20)
        b = EntityGenerator(RandomState(3)).generate_class_entities(schema, 20)
        assert [e.name for e in a] == [e.name for e in b]
        assert [e.attributes for e in a] == [e.attributes for e in b]


class TestDistractorGeneration:
    def test_count_respected(self, generator):
        assert len(generator.generate_distractors(40)) == 40

    def test_negative_count_rejected(self, generator):
        with pytest.raises(DatasetError):
            generator.generate_distractors(-1)

    def test_zero_count_allowed(self, generator):
        assert generator.generate_distractors(0) == []

    def test_distractors_have_no_class_or_attributes(self, generator):
        for distractor in generator.generate_distractors(25):
            assert distractor.fine_class is None
            assert distractor.attributes == {}

    def test_distractor_names_unique_and_disjoint_from_class_entities(self, generator):
        entities = generator.generate_class_entities(schema_by_name("countries"), 50)
        distractors = generator.generate_distractors(50)
        names = {e.name for e in entities} | {d.name for d in distractors}
        assert len(names) == 100
