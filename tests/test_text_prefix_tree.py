"""Tests for the prefix tree used by constrained decoding."""

import pytest

from repro.text.prefix_tree import PrefixTree
from repro.text.tokenizer import WordTokenizer


def build_tree():
    tree = PrefixTree()
    tree.insert(["vexo", "mobile"], "Vexo Mobile")
    tree.insert(["vexo", "wireless"], "Vexo Wireless")
    tree.insert(["nuvia"], "Nuvia")
    tree.insert(["nuvia", "telecom"], "Nuvia Telecom")
    return tree


class TestPrefixTree:
    def test_len_counts_entities(self):
        assert len(build_tree()) == 4

    def test_insert_empty_tokens_raises(self):
        with pytest.raises(ValueError):
            PrefixTree().insert([], "x")

    def test_allowed_next_from_root(self):
        assert build_tree().allowed_next([]) == ["nuvia", "vexo"]

    def test_allowed_next_mid_path(self):
        assert build_tree().allowed_next(["vexo"]) == ["mobile", "wireless"]

    def test_allowed_next_invalid_prefix_empty(self):
        assert build_tree().allowed_next(["zzz"]) == []

    def test_is_complete_at_leaf(self):
        tree = build_tree()
        assert tree.is_complete(["vexo", "mobile"])
        assert not tree.is_complete(["vexo"])

    def test_prefix_entity_also_complete(self):
        # "nuvia" is both a complete entity and a prefix of "nuvia telecom".
        tree = build_tree()
        assert tree.is_complete(["nuvia"])
        assert tree.is_complete(["nuvia", "telecom"])

    def test_entity_at(self):
        tree = build_tree()
        assert tree.entity_at(["vexo", "wireless"]) == "Vexo Wireless"
        assert tree.entity_at(["vexo"]) is None
        assert tree.entity_at(["missing"]) is None

    def test_contains_prefix(self):
        tree = build_tree()
        assert tree.contains_prefix(["vexo"])
        assert not tree.contains_prefix(["vexo", "phone"])

    def test_contains_dunder_checks_complete(self):
        tree = build_tree()
        assert ["nuvia"] in tree
        assert ["vexo"] not in tree

    def test_entities_with_prefix(self):
        tree = build_tree()
        assert tree.entities_with_prefix(["vexo"]) == ["Vexo Mobile", "Vexo Wireless"]
        assert tree.entities_with_prefix([]) == [
            "Nuvia",
            "Nuvia Telecom",
            "Vexo Mobile",
            "Vexo Wireless",
        ]

    def test_entities_with_invalid_prefix_empty(self):
        assert build_tree().entities_with_prefix(["qqq"]) == []

    def test_reinsert_same_path_does_not_double_count(self):
        tree = build_tree()
        tree.insert(["nuvia"], "Nuvia")
        assert len(tree) == 4

    def test_from_entities_uses_tokenizer(self):
        tree = PrefixTree.from_entities(["Vexo Mobile", "Nuvia"], WordTokenizer())
        assert tree.is_complete(["vexo", "mobile"])
        assert tree.is_complete(["nuvia"])

    def test_every_root_to_leaf_path_is_an_entity(self):
        tree = build_tree()
        for name in tree.entities_with_prefix([]):
            tokens = name.lower().split()
            assert tree.entity_at(tokens) == name
