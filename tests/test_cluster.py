"""Cluster subsystem tests: ring, fit lock, gateway, worker pool.

The gateway tests run against *thread-backed* workers (real
:class:`ExpansionHTTPServer` instances on ephemeral ports) so routing,
failover, and scatter-gather are exercised over real sockets without
subprocess startup cost; the subprocess path is covered by
``tests/test_cluster_smoke.py``.  The fit-lock tests simulate two worker
processes with two independent registries sharing one store directory —
the lock file is the only coordination channel either has, exactly as in
a real fleet.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import sys
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.client import ExpansionClient
from repro.cluster import (
    WORKER_HEADER,
    ClusterConfig,
    ClusterGateway,
    HashRing,
    WorkerPool,
    WorkerSpec,
    shard_key,
)
from repro.config import ServiceConfig
from repro.core.base import Expander
from repro.exceptions import JobConflictError, ServiceError
from repro.serve import ExpansionHTTPServer, ExpansionService
from repro.serve.registry import ExpanderRegistry
from repro.store import ArtifactStore, FitLock
from repro.store.serialization import read_json_state, write_json_state
from repro.types import ExpansionResult

# ---------------------------------------------------------------------------
# shared stubs
# ---------------------------------------------------------------------------

#: enough method names that a 2-worker ring deterministically owns some on
#: each shard (the assignment is a pure function of ids + fingerprint).
STUB_METHODS = tuple(f"stub{letter}" for letter in "abcdef")
SLOW_METHODS = tuple(f"slow{letter}" for letter in "abcdef")


class ShardStubExpander(Expander):
    """Deterministic ranking: same dataset + query => same scores anywhere."""

    def __init__(self, salt: str):
        super().__init__()
        self.name = salt
        self.salt = sum(ord(ch) for ch in salt)

    def _expand(self, query, top_k):
        scored = [
            (eid, 1.0 / (1.0 + ((eid * 2654435761 + self.salt) % 4093)))
            for eid in self.candidate_ids(query)
        ]
        return ExpansionResult.from_scores(query.query_id, scored)


class SlowFitStub(ShardStubExpander):
    def _fit(self, dataset):
        time.sleep(0.4)


def stub_factories():
    factories = {
        method: (lambda _res, m=method: ShardStubExpander(m))
        for method in STUB_METHODS
    }
    factories.update(
        {
            method: (lambda _res, m=method: SlowFitStub(m))
            for method in SLOW_METHODS
        }
    )
    return factories


def make_worker(dataset, **config_kwargs) -> ExpansionHTTPServer:
    service = ExpansionService(
        dataset,
        config=ServiceConfig(batch_wait_ms=0.0, port=0, **config_kwargs),
        factories=stub_factories(),
    )
    return ExpansionHTTPServer(service, port=0).start()


def make_gateway(dataset, servers, **config_kwargs) -> ClusterGateway:
    config = ClusterConfig(
        failover_cooldown_seconds=config_kwargs.pop("failover_cooldown_seconds", 0.2),
        proxy_timeout_seconds=30.0,
        **config_kwargs,
    )
    return ClusterGateway(
        [(f"worker-{i}", server.url) for i, server in enumerate(servers)],
        config=config,
        fingerprint=dataset.fingerprint(),
        port=0,
    ).start()


def gateway_post(gateway, path, payload):
    request = urllib.request.Request(
        gateway.url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


# ---------------------------------------------------------------------------
# hash ring
# ---------------------------------------------------------------------------


class TestHashRing:
    def test_routing_is_deterministic_across_instances(self):
        keys = [shard_key(m, "fp") for m in STUB_METHODS]
        ring_a = HashRing(["w0", "w1", "w2"])
        ring_b = HashRing(["w2", "w0", "w1"])  # construction order is irrelevant
        assert [ring_a.route(k) for k in keys] == [ring_b.route(k) for k in keys]

    def test_every_node_owns_some_keys(self):
        ring = HashRing(["w0", "w1", "w2"])
        owners = {ring.route(f"method-{i}|fp") for i in range(200)}
        assert owners == {"w0", "w1", "w2"}

    def test_preference_is_a_permutation_starting_at_the_owner(self):
        ring = HashRing(["w0", "w1", "w2"])
        for i in range(20):
            preference = ring.preference(f"key-{i}")
            assert preference[0] == ring.route(f"key-{i}")
            assert sorted(preference) == ["w0", "w1", "w2"]

    def test_removing_a_node_only_moves_its_own_keys(self):
        ring = HashRing(["w0", "w1", "w2"])
        keys = [f"method-{i}|fp" for i in range(300)]
        before = {key: ring.route(key) for key in keys}
        smaller = ring.without("w1")
        for key in keys:
            if before[key] != "w1":
                assert smaller.route(key) == before[key]

    def test_empty_ring_is_rejected(self):
        with pytest.raises(ServiceError):
            HashRing([])


# ---------------------------------------------------------------------------
# fit lock
# ---------------------------------------------------------------------------


class TestFitLock:
    def test_exclusive_acquire_and_release(self, tmp_path):
        first = FitLock(tmp_path, "m", "fp")
        second = FitLock(tmp_path, "m", "fp")
        assert first.try_acquire() is True
        assert second.try_acquire() is False
        holder = second.holder()
        assert holder is not None and holder["pid"] == os.getpid()
        first.release()
        assert second.try_acquire() is True
        second.release()

    def test_different_keys_do_not_contend(self, tmp_path):
        first = FitLock(tmp_path, "m1", "fp")
        second = FitLock(tmp_path, "m2", "fp")
        assert first.try_acquire() and second.try_acquire()
        first.release()
        second.release()

    def test_stale_lock_is_broken(self, tmp_path):
        abandoned = FitLock(tmp_path, "m", "fp", stale_after=5.0)
        assert abandoned.try_acquire()
        abandoned._stop_heartbeat.set()  # simulate a dead leader: no heartbeat
        abandoned._heartbeat_thread.join(timeout=2.0)
        old = time.time() - 60.0
        os.utime(abandoned.path, (old, old))
        taker = FitLock(tmp_path, "m", "fp", stale_after=5.0)
        assert taker.try_acquire() is True
        taker.release()

    def test_wait_returns_when_released(self, tmp_path):
        lock = FitLock(tmp_path, "m", "fp")
        assert lock.try_acquire()
        waiter = FitLock(tmp_path, "m", "fp")
        released = threading.Event()

        def hold_briefly():
            time.sleep(0.2)
            lock.release()
            released.set()

        threading.Thread(target=hold_briefly).start()
        assert waiter.wait(timeout=5.0) is True
        assert released.is_set()

    def test_wait_times_out_under_a_live_leader(self, tmp_path):
        lock = FitLock(tmp_path, "m", "fp", heartbeat_interval=0.05)
        assert lock.try_acquire()
        try:
            assert FitLock(tmp_path, "m", "fp").wait(timeout=0.3) is False
        finally:
            lock.release()


class CountingPersistentExpander(Expander):
    """A persistable expander whose fits are counted across 'processes'."""

    name = "counting"
    supports_persistence = True
    state_version = 1

    def __init__(self, fit_log: list):
        super().__init__()
        self.fit_log = fit_log
        self.payload: int | None = None

    def _fit(self, dataset):
        time.sleep(0.3)  # wide window so concurrent fitters genuinely race
        self.fit_log.append(id(self))
        self.payload = 42

    def _expand(self, query, top_k):
        scored = [(eid, 1.0 / (1.0 + eid)) for eid in self.candidate_ids(query)]
        return ExpansionResult.from_scores(query.query_id, scored)

    def _save_state(self, directory: Path) -> None:
        write_json_state(directory / "state.json", {"payload": self.payload})

    def _load_state(self, directory: Path, dataset) -> None:
        self.payload = read_json_state(directory / "state.json")["payload"]


class TestFitLockSinglePayer:
    def _registry(self, dataset, resources, store, fit_log) -> ExpanderRegistry:
        return ExpanderRegistry(
            dataset,
            resources=resources,
            factories={"counting": lambda _res: CountingPersistentExpander(fit_log)},
            store=store,
            fit_lock=True,
        )

    def test_concurrent_cold_fits_are_paid_exactly_once(
        self, tiny_dataset, resources, tmp_path
    ):
        """Two registries sharing a store (= two worker processes) race one
        cold fit: exactly one trains, the other restores the artifact."""
        fit_log: list = []
        registries = [
            self._registry(tiny_dataset, resources, ArtifactStore(tmp_path), fit_log)
            for _ in range(2)
        ]
        barrier = threading.Barrier(2)
        expanders: dict[int, object] = {}

        def race(index: int):
            barrier.wait()
            expanders[index] = registries[index].get("counting")

        threads = [threading.Thread(target=race, args=(i,)) for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)

        assert len(fit_log) == 1, "both workers paid the cold fit"
        assert all(expanders[i].payload == 42 for i in range(2))
        merged = [registry.stats() for registry in registries]
        assert sum(stats["fits"] for stats in merged) == 1
        assert sum(stats["fit_lock"]["acquires"] for stats in merged) == 1
        assert sum(stats["fit_lock"]["restores_after_wait"] for stats in merged) == 1
        assert sum(stats["store"]["restore_hits"] for stats in merged) == 1

    def test_lock_disabled_pays_twice(self, tiny_dataset, resources, tmp_path):
        """Control for the test above: without the lock, the same race costs
        two fits (each worker misses, then trains)."""
        fit_log: list = []
        store = ArtifactStore(tmp_path)
        registries = [
            ExpanderRegistry(
                tiny_dataset,
                resources=resources,
                factories={
                    "counting": lambda _res: CountingPersistentExpander(fit_log)
                },
                store=store,
                fit_lock=False,
            )
            for _ in range(2)
        ]
        barrier = threading.Barrier(2)

        def race(registry):
            barrier.wait()
            registry.get("counting")

        threads = [threading.Thread(target=race, args=(r,)) for r in registries]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert len(fit_log) == 2

    def test_waiter_fits_locally_when_leader_never_publishes(
        self, tiny_dataset, resources, tmp_path
    ):
        """A leader that dies without publishing must not wedge the waiter:
        past the wait budget (or a stale lock) the waiter fits itself."""
        fit_log: list = []
        store = ArtifactStore(tmp_path)
        registry = ExpanderRegistry(
            tiny_dataset,
            resources=resources,
            factories={"counting": lambda _res: CountingPersistentExpander(fit_log)},
            store=store,
            fit_lock=True,
            fit_lock_wait_seconds=0.5,
            fit_lock_stale_seconds=600.0,
        )
        # a foreign (dead) leader holds the lock and never heartbeats again
        foreign = FitLock(tmp_path, "counting", tiny_dataset.fingerprint())
        assert foreign.try_acquire()
        foreign._stop_heartbeat.set()
        foreign._heartbeat_thread.join(timeout=2.0)

        expander = registry.get("counting")
        assert expander.payload == 42
        assert len(fit_log) == 1
        assert registry.stats()["fit_lock"]["timeouts"] == 1


# ---------------------------------------------------------------------------
# store GC (janitor policy)
# ---------------------------------------------------------------------------


class TestStoreBudgetGc:
    def _populate(self, store, dataset, methods):
        for method in methods:
            expander = CountingPersistentExpander([])
            expander.fit(dataset)
            store.save(method, dataset.fingerprint(), expander)

    def test_gc_to_budget_evicts_least_recently_restored_first(
        self, tiny_dataset, tmp_path
    ):
        store = ArtifactStore(tmp_path)
        self._populate(store, tiny_dataset, ["m1", "m2", "m3"])
        # restore m2 so it is the hottest artifact
        hot = CountingPersistentExpander([])
        store.restore("m2", tiny_dataset.fingerprint(), hot, tiny_dataset)
        sizes = {info.method: info.total_bytes for info in store.ls()}
        budget = sizes["m2"]  # room for exactly one artifact
        removed = store.gc_to_budget(budget)
        assert {info.method for info in removed} == {"m1", "m3"}
        assert [info.method for info in store.ls()] == ["m2"]

    def test_gc_to_budget_is_a_no_op_under_budget(self, tiny_dataset, tmp_path):
        store = ArtifactStore(tmp_path)
        self._populate(store, tiny_dataset, ["m1"])
        assert store.gc_to_budget(10**9) == []
        assert len(store.ls()) == 1

    def test_service_janitor_enforces_the_budget(self, tiny_dataset, tmp_path):
        store = ArtifactStore(tmp_path)
        self._populate(store, tiny_dataset, ["m1", "m2"])
        service = ExpansionService(
            tiny_dataset,
            config=ServiceConfig(
                batch_wait_ms=0.0,
                port=0,
                store_dir=str(tmp_path),
                store_gc_interval_seconds=3600.0,  # tick manually below
                store_max_bytes=0,
            ),
        )
        try:
            service._janitor.run_once()
            stats = service.stats()["store_gc"]
            assert stats["ticks"] == 1
            assert stats["artifacts_removed"] == 2
            assert store.ls() == []
        finally:
            service.close()


# ---------------------------------------------------------------------------
# gateway over thread-backed workers
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def cluster(tiny_dataset):
    servers = [make_worker(tiny_dataset) for _ in range(2)]
    gateway = make_gateway(tiny_dataset, servers)
    yield gateway, servers
    gateway.shutdown()
    for server in servers:
        server.shutdown()


def _strip_volatile(envelope: dict) -> dict:
    """Drop the per-request fields the acceptance criteria exempt."""
    cleaned = dict(envelope)
    cleaned.pop("request_id", None)
    data = dict(cleaned.get("data") or {})
    data.pop("latency_ms", None)
    data.pop("cached", None)
    cleaned["data"] = data
    return cleaned


class TestGatewayRouting:
    def test_method_routing_is_deterministic(self, cluster, tiny_dataset):
        gateway, _servers = cluster
        query_id = tiny_dataset.queries[0].query_id
        for method in STUB_METHODS[:3]:
            owners = set()
            for _ in range(3):
                status, _payload, headers = gateway_post(
                    gateway,
                    "/v1/expand",
                    {"method": method, "query_id": query_id, "options": {"top_k": 5}},
                )
                assert status == 200
                owners.add(headers.get(WORKER_HEADER))
            assert owners == {gateway.owner(method)}

    def test_both_shards_receive_traffic(self, cluster):
        gateway, _servers = cluster
        assert {gateway.owner(method) for method in STUB_METHODS} == {
            "worker-0",
            "worker-1",
        }

    def test_expand_parity_with_single_process(self, cluster, tiny_dataset):
        """A gateway answer is the owning worker's answer verbatim — equal,
        modulo request_id/latency, to a single-process server's envelope."""
        gateway, servers = cluster
        single = make_worker(tiny_dataset)  # fresh single-process reference
        try:
            for method in STUB_METHODS[:3]:
                body = {
                    "method": method,
                    "query_id": tiny_dataset.queries[1].query_id,
                    "options": {"top_k": 20, "use_cache": False},
                }
                status_g, via_gateway, _ = gateway_post(gateway, "/v1/expand", body)
                request = urllib.request.Request(
                    single.url + "/v1/expand",
                    data=json.dumps(body).encode("utf-8"),
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(request, timeout=30) as response:
                    via_single = json.loads(response.read())
                assert status_g == 200
                assert _strip_volatile(via_gateway) == _strip_volatile(via_single)
        finally:
            single.shutdown()

    def test_client_sdk_works_against_the_gateway_unchanged(
        self, cluster, tiny_dataset
    ):
        gateway, _servers = cluster
        with ExpansionClient.connect(gateway.url) as client:
            assert client.healthz()["status"] in ("ok", "degraded")
            response = client.expand(
                STUB_METHODS[0], query_id=tiny_dataset.queries[0].query_id, top_k=7
            )
            assert len(response.ranking) == 7
            methods = {info.method for info in client.methods()}
            assert set(STUB_METHODS) <= methods

    def test_batch_scatter_gather_parity_and_error_isolation(
        self, cluster, tiny_dataset
    ):
        gateway, _servers = cluster
        queries = tiny_dataset.queries[:4]
        items = [
            {
                "method": STUB_METHODS[i % 3],
                "query_id": query.query_id,
                "options": {"top_k": 10, "use_cache": False},
            }
            for i, query in enumerate(queries)
        ]
        items.insert(2, {"method": "nope", "query_id": queries[0].query_id})
        status, payload, _ = gateway_post(
            gateway, "/v1/expand/batch", {"requests": items}
        )
        assert status == 200
        slots = payload["data"]["responses"]
        assert payload["data"]["count"] == len(items) == len(slots)
        assert slots[2]["error"]["code"] == "unknown_method"

        # per-item parity with a single-process service
        single = ExpansionService(
            tiny_dataset,
            config=ServiceConfig(batch_wait_ms=0.0, port=0),
            factories=stub_factories(),
        )
        try:
            client = ExpansionClient.in_process(single)
            for slot, item in zip(slots, items):
                if "error" in slot:
                    continue
                reference = client.expand(
                    item["method"],
                    query_id=item["query_id"],
                    top_k=10,
                    use_cache=False,
                )
                assert slot["response"]["ranking"] == [
                    {"entity_id": v.entity_id, "name": v.name, "score": v.score}
                    for v in reference.ranking
                ]
        finally:
            single.close()

    def test_malformed_batch_items_fail_in_place(self, cluster, tiny_dataset):
        gateway, _servers = cluster
        status, payload, _ = gateway_post(
            gateway,
            "/v1/expand/batch",
            {
                "requests": [
                    "not-an-object",
                    {
                        "method": STUB_METHODS[0],
                        "query_id": tiny_dataset.queries[0].query_id,
                    },
                ]
            },
        )
        assert status == 200
        slots = payload["data"]["responses"]
        assert slots[0]["error"]["code"] == "invalid_request"
        assert "response" in slots[1]

    def test_aggregated_healthz_and_stats(self, cluster):
        gateway, _servers = cluster
        with urllib.request.urlopen(gateway.url + "/v1/healthz", timeout=10) as response:
            health = json.loads(response.read())
        assert health["data"]["status"] == "ok"
        assert health["data"]["healthy_workers"] == 2
        assert {w["worker_id"] for w in health["data"]["workers"]} == {
            "worker-0",
            "worker-1",
        }
        with urllib.request.urlopen(gateway.url + "/v1/stats", timeout=10) as response:
            stats = json.loads(response.read())["data"]
        assert set(stats) == {"gateway", "cluster", "workers"}
        assert stats["cluster"]["requests"] >= 1
        assert set(stats["workers"]) == {"worker-0", "worker-1"}
        assert stats["gateway"]["proxied"] >= 1

    def test_fit_jobs_route_and_resolve_across_the_fleet(self, cluster):
        gateway, _servers = cluster
        with ExpansionClient.connect(gateway.url) as client:
            job = client.start_fit(SLOW_METHODS[0])
            final = client.wait_for_fit(job["job_id"], timeout=30.0)
            assert final["status"] == "succeeded"
            merged = client.fit_jobs()
            mine = [j for j in merged if j["job_id"] == job["job_id"]]
            assert mine and mine[0]["worker_id"] == gateway.owner(SLOW_METHODS[0])

    def test_cancel_through_the_gateway(self, cluster):
        """DELETE /v1/fits/<id> routes like GET: cancel a queued job on the
        owning worker; cancelling it again (now terminal) conflicts."""
        gateway, _servers = cluster
        by_owner: dict[str, list[str]] = {}
        for method in SLOW_METHODS[1:]:  # [0] was fitted by an earlier test
            by_owner.setdefault(gateway.owner(method), []).append(method)
        same_shard = max(by_owner.values(), key=len)  # pigeonhole: >= 2 of 5
        assert len(same_shard) >= 2, "need two methods on one shard"
        running_method, queued_method = same_shard[:2]
        with ExpansionClient.connect(gateway.url) as client:
            running = client.start_fit(running_method)
            queued = client.start_fit(queued_method)
            cancelled = client.cancel_fit(queued["job_id"])
            assert cancelled["status"] == "cancelled"
            with pytest.raises(JobConflictError):
                client.cancel_fit(queued["job_id"])
            client.wait_for_fit(running["job_id"], timeout=30.0)


class TestGatewayFailover:
    def test_worker_kill_mid_traffic_yields_no_nonretryable_failures(
        self, tiny_dataset
    ):
        """Hammer one method through the gateway while its owning worker is
        killed: every request must succeed (clients may retry retryables)."""
        servers = [make_worker(tiny_dataset) for _ in range(2)]
        gateway = make_gateway(tiny_dataset, servers, failover_cooldown_seconds=0.1)
        try:
            method = STUB_METHODS[0]
            owner = gateway.owner(method)
            victim = servers[int(owner.split("-")[1])]
            query_ids = [q.query_id for q in tiny_dataset.queries[:6]]
            stop = threading.Event()
            failures: list[Exception] = []
            successes = [0]

            def hammer(worker_index: int):
                with ExpansionClient.connect(
                    gateway.url, timeout=15.0, max_retries=4, backoff_seconds=0.05
                ) as client:
                    i = 0
                    while not stop.is_set():
                        try:
                            response = client.expand(
                                method,
                                query_id=query_ids[(i + worker_index) % len(query_ids)],
                                top_k=5,
                            )
                            assert response.ranking
                            successes[0] += 1
                        except Exception as exc:  # noqa: BLE001 - collected
                            failures.append(exc)
                        i += 1

            threads = [
                threading.Thread(target=hammer, args=(index,)) for index in range(4)
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.4)  # traffic flowing against the owner
            victim.shutdown()  # kill the owning worker mid-traffic
            time.sleep(1.0)  # traffic must fail over to the survivor
            stop.set()
            for thread in threads:
                thread.join(timeout=30.0)

            assert not failures, f"client-visible failures after failover: {failures[:3]}"
            assert successes[0] > 0
            stats = gateway.stats()
            assert stats["failovers"] >= 1
            # post-failover, the survivor serves the victim's shard
            _status, _payload, headers = gateway_post(
                gateway,
                "/v1/expand",
                {
                    "method": method,
                    "query_id": query_ids[0],
                    "options": {"top_k": 5},
                },
            )
            survivor = {"worker-0", "worker-1"} - {owner}
            assert headers.get(WORKER_HEADER) in survivor
        finally:
            gateway.shutdown()
            for server in servers:
                try:
                    server.shutdown()
                except Exception:  # noqa: BLE001 - victim is already down
                    pass

    def test_all_workers_down_is_a_retryable_503(self, tiny_dataset):
        servers = [make_worker(tiny_dataset)]
        gateway = make_gateway(tiny_dataset, servers, failover_cooldown_seconds=0.1)
        try:
            servers[0].shutdown()
            status, payload, _ = gateway_post(
                gateway,
                "/v1/expand",
                {"method": STUB_METHODS[0], "query_id": "whatever"},
            )
            assert status == 503
            assert payload["error"]["code"] == "unavailable"
            assert payload["error"]["retryable"] is True
        finally:
            gateway.shutdown()


# ---------------------------------------------------------------------------
# worker pool (cheap subprocess workers)
# ---------------------------------------------------------------------------

#: a minimal /v1/healthz server, cheap enough to spawn repeatedly in tests.
TOY_WORKER_SCRIPT = """
import json, sys
from http.server import BaseHTTPRequestHandler, HTTPServer

class Handler(BaseHTTPRequestHandler):
    def do_GET(self):
        body = json.dumps({"api_version": "v1", "data": {"status": "ok"}}).encode()
        self.send_response(200 if self.path.startswith("/v1/healthz") else 404)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):
        pass

HTTPServer(("127.0.0.1", int(sys.argv[1])), Handler).serve_forever()
"""


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def toy_specs(count: int) -> list[WorkerSpec]:
    specs = []
    for index in range(count):
        port = free_port()
        specs.append(
            WorkerSpec(
                worker_id=f"toy-{index}",
                url=f"http://127.0.0.1:{port}",
                command=(sys.executable, "-c", TOY_WORKER_SCRIPT, str(port)),
            )
        )
    return specs


class TestWorkerPool:
    def test_start_health_and_clean_stop(self):
        pool = WorkerPool(toy_specs(2), health_interval=0.1, restart_backoff=0.1)
        with pool:
            pool.start(wait_healthy=True, timeout=20.0)
            assert pool.healthy_count() == 2
            endpoints = pool.endpoints()
            assert all(endpoint.healthy for endpoint in endpoints)
            assert {endpoint.worker_id for endpoint in endpoints} == {"toy-0", "toy-1"}
        stats = pool.stats()
        assert all(w["state"] == "stopped" for w in stats["workers"].values())

    def test_crashed_worker_is_restarted_with_backoff(self):
        pool = WorkerPool(
            toy_specs(2),
            health_interval=0.1,
            restart_backoff=0.1,
            restart_stagger=0.05,
        )
        with pool:
            pool.start(wait_healthy=True, timeout=20.0)
            victim_pid = pool.stats()["workers"]["toy-0"]["pid"]
            os.kill(victim_pid, signal.SIGKILL)
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                stats = pool.stats()["workers"]["toy-0"]
                if (
                    stats["restarts"] >= 1
                    and stats["state"] == "healthy"
                    and stats["pid"] != victim_pid
                ):
                    break
                time.sleep(0.1)
            stats = pool.stats()
            assert stats["restarts_total"] >= 1
            assert stats["workers"]["toy-0"]["state"] == "healthy"
            assert stats["workers"]["toy-0"]["pid"] != victim_pid
            # the other worker was never touched
            assert stats["workers"]["toy-1"]["restarts"] == 0

    def test_duplicate_worker_ids_are_rejected(self):
        spec = toy_specs(1)[0]
        with pytest.raises(ServiceError):
            WorkerPool([spec, spec])


# ---------------------------------------------------------------------------
# concurrent load parity (acceptance criterion)
# ---------------------------------------------------------------------------


def test_concurrent_gateway_load_matches_single_process(tiny_dataset):
    """Under concurrent load on 2 workers, every routed answer equals the
    single-process answer for the same request (modulo request_id/latency)."""
    servers = [make_worker(tiny_dataset) for _ in range(2)]
    gateway = make_gateway(tiny_dataset, servers)
    single = ExpansionService(
        tiny_dataset,
        config=ServiceConfig(batch_wait_ms=0.0, port=0),
        factories=stub_factories(),
    )
    try:
        reference_client = ExpansionClient.in_process(single)
        jobs = [
            (method, query.query_id)
            for method in STUB_METHODS[:4]
            for query in tiny_dataset.queries[:5]
        ]
        references = {
            (method, query_id): reference_client.expand(
                method, query_id=query_id, top_k=10, use_cache=False
            ).entity_ids()
            for method, query_id in jobs
        }

        def via_gateway(job):
            method, query_id = job
            with ExpansionClient.connect(gateway.url, max_retries=3) as client:
                response = client.expand(
                    method, query_id=query_id, top_k=10, use_cache=False
                )
                return job, response.entity_ids()

        with ThreadPoolExecutor(max_workers=8) as pool:
            for job, ranking in pool.map(via_gateway, jobs):
                assert ranking == references[job], f"divergent ranking for {job}"
    finally:
        single.close()
        gateway.shutdown()
        for server in servers:
            server.shutdown()
