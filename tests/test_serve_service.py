"""Tests for the online expansion service (registry + cache + batcher)."""

from __future__ import annotations

import json
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.config import ServiceConfig
from repro.core.base import Expander
from repro.exceptions import DatasetError, ServiceError, UnknownMethodError
from repro.serve import ExpandOptions, ExpandRequest, ExpansionService, ResultCache
from repro.types import ExpansionResult
from repro.utils.iox import to_jsonable


class CountingExpander(Expander):
    """A cheap expander that records fits and batch shapes.

    ``_expand`` deliberately scores *every* entity — including the query's
    seeds — so the tests can verify that seed filtering survives the whole
    service path.
    """

    name = "stub"

    def __init__(self, fit_delay: float = 0.0):
        super().__init__()
        self.fit_calls = 0
        self.batch_sizes: list[int] = []
        self.fit_delay = fit_delay

    def _fit(self, dataset) -> None:
        self.fit_calls += 1
        if self.fit_delay:
            time.sleep(self.fit_delay)

    def _expand(self, query, top_k) -> ExpansionResult:
        scored = [(eid, 1.0 / (1.0 + eid)) for eid in self.dataset.entity_ids()]
        return ExpansionResult.from_scores(query.query_id, scored)

    def expand_batch(self, queries, top_k=100, retrieval=None):
        self.batch_sizes.append(len(queries))
        return [self.expand(query, top_k) for query in queries]


def make_service(dataset, config=None, clock=time.monotonic, fit_delay=0.0):
    """A service whose only methods are two independent stub expanders."""
    created: dict[str, list[CountingExpander]] = {"stub": [], "stub2": []}

    def factory_for(name):
        def factory(_resources):
            expander = CountingExpander(fit_delay=fit_delay)
            created[name].append(expander)
            return expander

        return factory

    service = ExpansionService(
        dataset,
        config=config or ServiceConfig(batch_wait_ms=0.0),
        factories={"stub": factory_for("stub"), "stub2": factory_for("stub2")},
        clock=clock,
    )
    return service, created


class TestRegistryReuse:
    def test_expander_fitted_at_most_once_across_concurrent_requests(self, tiny_dataset):
        service, created = make_service(tiny_dataset, fit_delay=0.05)
        queries = tiny_dataset.queries[:8]
        with service:
            with ThreadPoolExecutor(max_workers=8) as pool:
                responses = list(
                    pool.map(
                        lambda q: service.submit(
                            ExpandRequest(method="stub", query_id=q.query_id, options=ExpandOptions(top_k=10))
                        ),
                        queries,
                    )
                )
        assert len(responses) == len(queries)
        assert len(created["stub"]) == 1
        assert created["stub"][0].fit_calls == 1
        assert service.stats()["registry"]["fits"] == 1

    def test_sequential_requests_reuse_the_fitted_expander(self, tiny_dataset):
        service, created = make_service(tiny_dataset)
        with service:
            for query in tiny_dataset.queries[:3]:
                service.submit(ExpandRequest(method="stub", query_id=query.query_id))
        assert len(created["stub"]) == 1

    def test_registry_evicts_lru_and_refits_on_return(self, tiny_dataset):
        config = ServiceConfig(batch_wait_ms=0.0, registry_capacity=1)
        service, created = make_service(tiny_dataset, config=config)
        query_id = tiny_dataset.queries[0].query_id
        with service:
            service.submit(ExpandRequest(method="stub", query_id=query_id, options=ExpandOptions(use_cache=False)))
            service.submit(ExpandRequest(method="stub2", query_id=query_id, options=ExpandOptions(use_cache=False)))
            service.submit(ExpandRequest(method="stub", query_id=query_id, options=ExpandOptions(use_cache=False)))
        stats = service.stats()["registry"]
        assert stats["evictions"] >= 1
        assert len(created["stub"]) == 2  # evicted, then lazily refitted

    def test_pinned_expander_survives_eviction_pressure(self, tiny_dataset):
        config = ServiceConfig(batch_wait_ms=0.0, registry_capacity=1)
        service, created = make_service(tiny_dataset, config=config)
        query_id = tiny_dataset.queries[0].query_id
        with service:
            service.warm_up(["stub"])
            service.submit(ExpandRequest(method="stub2", query_id=query_id, options=ExpandOptions(use_cache=False)))
            service.submit(ExpandRequest(method="stub", query_id=query_id, options=ExpandOptions(use_cache=False)))
        assert len(created["stub"]) == 1
        assert "stub" in service.stats()["registry"]["pinned"]


class TestResultCache:
    def test_second_identical_request_is_served_from_cache(self, tiny_dataset):
        service, created = make_service(tiny_dataset)
        request = ExpandRequest(
            method="stub",
            query_id=tiny_dataset.queries[0].query_id,
            options=ExpandOptions(top_k=10),
        )
        with service:
            first = service.submit(request)
            second = service.submit(request)
        assert first.cached is False
        assert second.cached is True
        assert first.entity_ids() == second.entity_ids()
        stats = service.stats()["cache"]
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        # only the first request reached the expander.
        assert sum(created["stub"][0].batch_sizes) == 1

    def test_different_top_k_is_a_different_cache_entry(self, tiny_dataset):
        service, _ = make_service(tiny_dataset)
        query_id = tiny_dataset.queries[0].query_id
        with service:
            service.submit(ExpandRequest(method="stub", query_id=query_id, options=ExpandOptions(top_k=10)))
            response = service.submit(
                ExpandRequest(method="stub", query_id=query_id, options=ExpandOptions(top_k=20))
            )
        assert response.cached is False
        assert len(response.ranking) == 20

    def test_use_cache_false_bypasses_the_cache(self, tiny_dataset):
        service, created = make_service(tiny_dataset)
        request = ExpandRequest(
            method="stub",
            query_id=tiny_dataset.queries[0].query_id,
            options=ExpandOptions(use_cache=False),
        )
        with service:
            assert service.submit(request).cached is False
            assert service.submit(request).cached is False
        assert sum(created["stub"][0].batch_sizes) == 2

    def test_ttl_expiry_recomputes(self, tiny_dataset):
        now = [0.0]
        config = ServiceConfig(batch_wait_ms=0.0, cache_ttl_seconds=10.0)
        service, _ = make_service(tiny_dataset, config=config, clock=lambda: now[0])
        request = ExpandRequest(method="stub", query_id=tiny_dataset.queries[0].query_id)
        with service:
            service.submit(request)
            now[0] = 5.0
            assert service.submit(request).cached is True
            now[0] = 20.1
            assert service.submit(request).cached is False
        assert service.stats()["cache"]["expirations"] == 1

    def test_lru_eviction_is_counted(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a": "b" is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["size"] == 2


class TestBatching:
    def test_concurrent_requests_coalesce_into_batches(self, tiny_dataset):
        config = ServiceConfig(batch_wait_ms=75.0, max_batch_size=8, batch_workers=2)
        service, created = make_service(tiny_dataset, config=config)
        queries = tiny_dataset.queries[:8]
        with service:
            with ThreadPoolExecutor(max_workers=8) as pool:
                responses = list(
                    pool.map(
                        lambda q: service.submit(
                            ExpandRequest(
                                method="stub", query_id=q.query_id, options=ExpandOptions(use_cache=False)
                            )
                        ),
                        queries,
                    )
                )
        assert {r.query_id for r in responses} == {q.query_id for q in queries}
        sizes = created["stub"][0].batch_sizes
        assert sum(sizes) == len(queries)
        assert len(sizes) < len(queries)  # at least one real batch formed
        assert max(sizes) >= 2
        assert service.stats()["batcher"]["max_batch_size_observed"] == max(sizes)

    def test_full_bucket_flushes_before_the_window_closes(self, tiny_dataset):
        config = ServiceConfig(batch_wait_ms=10_000.0, max_batch_size=2)
        service, created = make_service(tiny_dataset, config=config)
        queries = tiny_dataset.queries[:2]
        started = time.perf_counter()
        with service:
            with ThreadPoolExecutor(max_workers=2) as pool:
                list(
                    pool.map(
                        lambda q: service.submit(
                            ExpandRequest(
                                method="stub", query_id=q.query_id, options=ExpandOptions(use_cache=False)
                            )
                        ),
                        queries,
                    )
                )
        elapsed = time.perf_counter() - started
        assert elapsed < 5.0  # did not wait for the 10 s window
        assert max(created["stub"][0].batch_sizes) == 2

    def test_batch_results_map_back_to_their_requests(self, tiny_dataset):
        config = ServiceConfig(batch_wait_ms=50.0, max_batch_size=8)
        service, _ = make_service(tiny_dataset, config=config)
        queries = tiny_dataset.queries[:6]
        with service:
            with ThreadPoolExecutor(max_workers=6) as pool:
                responses = list(
                    pool.map(
                        lambda q: service.submit(
                            ExpandRequest(
                                method="stub", query_id=q.query_id, options=ExpandOptions(use_cache=False)
                            )
                        ),
                        queries,
                    )
                )
        for query, response in zip(queries, responses):
            assert response.query_id == query.query_id


class TestServicePath:
    def test_seed_filtering_is_preserved_through_the_service(self, tiny_dataset):
        service, _ = make_service(tiny_dataset)
        query = tiny_dataset.queries[0]
        with service:
            response = service.submit(
                ExpandRequest(method="stub", query_id=query.query_id, options=ExpandOptions(top_k=50))
            )
        returned = set(response.entity_ids())
        assert returned  # the stub scored every entity, seeds included
        assert not returned & set(query.positive_seed_ids)
        assert not returned & set(query.negative_seed_ids)

    def test_adhoc_query_expands_and_caches(self, tiny_dataset):
        query = tiny_dataset.queries[0]
        request = ExpandRequest(
            method="stub",
            class_id=query.class_id,
            positive_seed_ids=query.positive_seed_ids,
            negative_seed_ids=query.negative_seed_ids,
            options=ExpandOptions(top_k=10),
        )
        service, _ = make_service(tiny_dataset)
        with service:
            first = service.submit(request)
            second = service.submit(request)
        assert first.query_id.startswith("adhoc-")
        assert first.cached is False
        assert second.cached is True  # same seeds -> same cache key

    def test_response_entities_resolve_names(self, tiny_dataset):
        service, _ = make_service(tiny_dataset)
        with service:
            response = service.submit(
                ExpandRequest(method="stub", query_id=tiny_dataset.queries[0].query_id)
            )
        for item in response.ranking[:5]:
            assert item.name == tiny_dataset.entity(item.entity_id).name

    def test_response_is_jsonable(self, tiny_dataset):
        service, _ = make_service(tiny_dataset)
        with service:
            response = service.submit(
                ExpandRequest(method="stub", query_id=tiny_dataset.queries[0].query_id)
            )
        payload = json.loads(json.dumps(to_jsonable(response)))
        assert payload["cached"] is False
        assert payload["ranking"][0]["entity_id"] == response.ranking[0].entity_id


class TestErrors:
    def test_unknown_method_is_rejected(self, tiny_dataset):
        service, _ = make_service(tiny_dataset)
        with service:
            with pytest.raises(UnknownMethodError):
                service.submit(
                    ExpandRequest(
                        method="nope", query_id=tiny_dataset.queries[0].query_id
                    )
                )
        assert service.stats()["service"]["errors"] == 1

    def test_unknown_query_id_is_rejected(self, tiny_dataset):
        service, _ = make_service(tiny_dataset)
        with service:
            with pytest.raises(DatasetError):
                service.submit(ExpandRequest(method="stub", query_id="no-such-query"))

    def test_unknown_class_is_rejected(self, tiny_dataset):
        service, _ = make_service(tiny_dataset)
        with service:
            with pytest.raises(DatasetError):
                service.submit(
                    ExpandRequest(
                        method="stub", class_id="no-such-class", positive_seed_ids=(1,)
                    )
                )

    def test_request_validation(self):
        with pytest.raises(ServiceError):
            ExpandRequest(method="stub").validate()  # neither query_id nor seeds
        with pytest.raises(ServiceError):
            ExpandRequest(method="stub", query_id="q", class_id="c").validate()
        with pytest.raises(ServiceError):
            ExpandRequest(
                method="stub", query_id="q", options=ExpandOptions(top_k=0)
            ).validate()
        with pytest.raises(ServiceError):
            ExpandRequest.from_dict({"method": "stub", "bogus": 1})
        with pytest.raises(ServiceError):
            # a JSON string must not be iterated character-by-character
            ExpandRequest.from_dict(
                {"method": "stub", "class_id": "c", "positive_seed_ids": "12"}
            )

    def test_cache_key_normalizes_the_method_spelling(self):
        key = ExpandRequest(method=" RetExpan ", query_id="q").cache_key(10)
        assert key == ExpandRequest(method="retexpan", query_id="q").cache_key(10)

    def test_submitting_after_close_fails(self, tiny_dataset):
        service, _ = make_service(tiny_dataset)
        service.close()
        with pytest.raises(ServiceError):
            service.submit(
                ExpandRequest(method="stub", query_id=tiny_dataset.queries[0].query_id)
            )


class TestDefaultRegistry:
    def test_default_methods_are_listed(self, tiny_dataset, resources):
        service = ExpansionService(
            tiny_dataset,
            config=ServiceConfig(batch_wait_ms=0.0),
            resources=resources,
        )
        with service:
            names = [info.method for info in service.methods()]
        assert {"retexpan", "genexpan", "setexpan", "probexpan"} <= set(names)

    def test_setexpan_round_trip_with_real_expander(self, tiny_dataset, resources):
        service = ExpansionService(
            tiny_dataset,
            config=ServiceConfig(batch_wait_ms=0.0),
            resources=resources,
        )
        query = tiny_dataset.queries[0]
        with service:
            response = service.submit(
                ExpandRequest(method="SetExpan", query_id=query.query_id, options=ExpandOptions(top_k=10))
            )
        assert len(response.ranking) <= 10
        assert not set(response.entity_ids()) & set(query.seed_ids())
        info = {i.method: i for i in service.methods()}["setexpan"]
        assert info.fitted is True
        assert info.expander_name == "SetExpan"
