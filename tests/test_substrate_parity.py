"""Parity suite for the shared substrate layer.

The substrate refactor must be behaviour-invisible: every method's expansion
output has to be **bitwise identical** whether its substrates were served
from the shared provider's fitted instance or restored from the
content-addressed substrate artifacts the method manifest references — the
provider replays the same construction calls and the serialization layer
already guarantees save→load bit-parity, so restored results are compared
with ``==`` on floats.

Comparing two *independent* fits (shared pool vs a fully private pool, the
seed behaviour) is held to the strongest standard the numerics allow:
identical rankings and scores equal to a few ulps.  Independent
``scipy.sparse.linalg.svds`` runs were never bit-reproducible in this
environment (threaded-BLAS reduction order plus a degenerate near-null tail
of the entity co-occurrence spectrum perturb the factors by ~1e-15), a
property of the seed code predating this layer — observed cross-fit score
drift is ≤ 7e-16, asserted here with a 1e-9 ceiling.
"""

from __future__ import annotations

import math

import pytest

from repro.core.resources import SharedResources
from repro.lm.causal_lm import CausalEntityLM
from repro.lm.context_encoder import ContextEncoder
from repro.lm.embeddings import CooccurrenceEmbeddings
from repro.serve.registry import DEFAULT_FACTORIES
from repro.store import ArtifactStore

#: the methods whose fits stand on shared substrates (the refactored five).
SUBSTRATE_BACKED = ("retexpan", "probexpan", "cgexpan", "case", "genexpan")


def _rankings(expander, queries, top_k=15):
    return [
        [(item.entity_id, item.score) for item in expander.expand(q, top_k).ranking]
        for q in queries
    ]


@pytest.fixture(scope="module")
def shared_fitted(tiny_dataset, resources, tmp_path_factory):
    """Every substrate-backed method fitted through ONE shared provider and
    persisted into one store (substrates stored once, referenced by hash)."""
    store = ArtifactStore(tmp_path_factory.mktemp("substrate-parity"))
    fitted = {}
    for method in SUBSTRATE_BACKED:
        expander = DEFAULT_FACTORIES[method](resources).fit(tiny_dataset)
        store.save(method, tiny_dataset.fingerprint(), expander)
        fitted[method] = expander
    return store, fitted


def _assert_equivalent_fits(actual, expected):
    """Same rankings; scores within the cross-fit SVD noise floor (1e-9)."""
    assert len(actual) == len(expected)
    for got, want in zip(actual, expected):
        assert [eid for eid, _ in got] == [eid for eid, _ in want]
        for (_, got_score), (_, want_score) in zip(got, want):
            assert math.isclose(got_score, want_score, rel_tol=1e-9, abs_tol=1e-9)


class TestSharedVsPrivateFitParity:
    @pytest.mark.parametrize("method", SUBSTRATE_BACKED)
    def test_shared_provider_fit_matches_private_fit(
        self, method, shared_fitted, tiny_dataset
    ):
        """Satellite acceptance: shared-provider fits == seed private fits
        (identical rankings; scores up to independent-SVD ulp noise)."""
        _store, fitted = shared_fitted
        queries = tiny_dataset.queries[:2]
        shared = _rankings(fitted[method], queries)
        # A completely private pool: nothing shared, every substrate refitted
        # from scratch — the pre-substrate-layer behaviour.
        private = DEFAULT_FACTORIES[method](SharedResources(tiny_dataset)).fit(
            tiny_dataset
        )
        _assert_equivalent_fits(_rankings(private, queries), shared)

    @pytest.mark.parametrize("method", SUBSTRATE_BACKED)
    def test_restored_from_referenced_substrates_matches_bitwise(
        self, method, shared_fitted, tiny_dataset, monkeypatch
    ):
        """Restoring a method artifact resolves its substrate references
        without invoking any fit, and ranks bitwise-identically."""
        store, fitted = shared_fitted
        queries = tiny_dataset.queries[:2]
        expected = _rankings(fitted[method], queries)

        fresh = DEFAULT_FACTORIES[method](SharedResources(tiny_dataset))
        for cls in (ContextEncoder, CausalEntityLM, CooccurrenceEmbeddings):
            monkeypatch.setattr(
                cls,
                "fit",
                lambda *a, **k: pytest.fail("restore invoked a substrate fit"),
            )
        monkeypatch.setattr(
            type(fresh), "_fit", lambda *a, **k: pytest.fail("restore called _fit")
        )
        store.restore(method, tiny_dataset.fingerprint(), fresh, tiny_dataset)
        assert _rankings(fresh, queries) == expected

    def test_substrates_are_stored_once_for_the_whole_fleet(self, shared_fitted):
        """Issue acceptance: a store holding every method contains each
        substrate exactly once, referenced by content hash."""
        store, _fitted = shared_fitted
        substrates = store.ls_substrates()
        by_kind = {}
        for info in substrates:
            by_kind.setdefault(info.kind, []).append(info)
        # One co-occurrence, one entity-representations, one causal LM; the
        # ANN indexes are keyed by (source, field, dim) so distinct vector
        # spaces get their own index while same-space methods share one.
        counts = {kind: len(infos) for kind, infos in by_kind.items()}
        ann_indexes = counts.pop("ann_index", 0)
        assert counts == {
            "cooccurrence_embeddings": 1,
            "entity_representations": 1,
            "causal_lm": 1,
        }
        assert ann_indexes >= 1
        known = {(info.kind, info.content_hash) for info in substrates}
        for info in store.ls():
            assert info.substrates, f"{info.method} manifest must reference substrates"
            for ref in info.substrates:
                assert (ref["kind"], ref["content_hash"]) in known

    def test_second_method_fit_reuses_not_refits_the_substrate(
        self, tiny_dataset, monkeypatch
    ):
        """Satellite acceptance: the second embeddings-backed method on a
        shared pool performs zero additional substrate fits."""
        calls = []
        original = CooccurrenceEmbeddings.fit

        def counting_fit(self, *args, **kwargs):
            calls.append(1)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(CooccurrenceEmbeddings, "fit", counting_fit)
        resources = SharedResources(tiny_dataset)
        DEFAULT_FACTORIES["cgexpan"](resources).fit(tiny_dataset)
        assert len(calls) == 1
        DEFAULT_FACTORIES["case"](resources).fit(tiny_dataset)
        assert len(calls) == 1, "CaSE refitted the co-occurrence substrate"
        # Two provider fits total: the embeddings plus the ANN index over
        # them — shared by both methods, so neither is fitted twice.
        assert resources.provider.stats()["fits"] == 2
