"""Tests for fine-grained-class-level evaluation (paper Section VI-B(4))."""

import pytest

from repro.baselines import SetExpan
from repro.eval.evaluator import Evaluator
from repro.eval.fine_grained import (
    evaluate_fine_grained,
    fine_grained_targets,
)
from repro.exceptions import EvaluationError
from repro.retexpan import RetExpan


class TestFineGrainedTargets:
    def test_targets_are_class_members_minus_seeds(self, tiny_dataset, sample_query):
        targets = fine_grained_targets(tiny_dataset, sample_query)
        fine_class = tiny_dataset.ultra_class(sample_query.class_id).fine_class
        seeds = set(sample_query.positive_seed_ids) | set(sample_query.negative_seed_ids)
        assert targets
        assert not (targets & seeds)
        for entity_id in targets:
            assert tiny_dataset.entity(entity_id).fine_class == fine_class

    def test_targets_superset_of_ultra_fine_targets(self, tiny_dataset, sample_query):
        targets = fine_grained_targets(tiny_dataset, sample_query)
        assert tiny_dataset.positive_targets(sample_query) <= targets
        assert tiny_dataset.negative_targets(sample_query) <= targets


class TestEvaluateFineGrained:
    def test_invalid_cutoffs_rejected(self, tiny_dataset, resources):
        with pytest.raises(EvaluationError):
            evaluate_fine_grained(
                RetExpan(resources=resources), tiny_dataset, cutoffs=(0,)
            )

    def test_empty_queries_rejected(self, tiny_dataset, resources):
        with pytest.raises(EvaluationError):
            evaluate_fine_grained(
                RetExpan(resources=resources), tiny_dataset, queries=[]
            )

    def test_report_structure(self, tiny_dataset, resources):
        queries = Evaluator(tiny_dataset, max_queries=6).queries
        report = evaluate_fine_grained(
            RetExpan(resources=resources), tiny_dataset, queries=queries
        )
        assert report.method == "RetExpan"
        assert report.num_queries == 6
        for k in (10, 20, 50, 100):
            assert 0.0 <= report.value("map", k) <= 100.0
            assert 0.0 <= report.value("p", k) <= 100.0
        with pytest.raises(EvaluationError):
            report.value("map", 7)

    def test_fine_grained_scores_exceed_ultra_fine_scores(self, tiny_dataset, resources):
        """Recalling the fine-grained class is easier than the ultra-fine class."""
        queries = Evaluator(tiny_dataset, max_queries=6).queries
        expander = RetExpan(resources=resources).fit(tiny_dataset)
        fine = evaluate_fine_grained(expander, tiny_dataset, queries=queries)
        ultra = Evaluator(tiny_dataset, max_queries=6).evaluate(expander)
        assert fine.value("map", 100) >= ultra.value("pos", "map", 100)

    def test_retexpan_recalls_fine_class_better_than_setexpan(self, tiny_dataset, resources):
        """Paper Section VI-B(4): the statistical baselines barely recall the
        fine-grained class, while RetExpan recalls it well."""
        queries = Evaluator(tiny_dataset, max_queries=8).queries
        retexpan = evaluate_fine_grained(
            RetExpan(resources=resources), tiny_dataset, queries=queries
        )
        setexpan = evaluate_fine_grained(
            SetExpan(num_iterations=2, entities_per_iteration=15), tiny_dataset, queries=queries
        )
        assert retexpan.value("map", 100) > setexpan.value("map", 100)

    def test_to_dict(self, tiny_dataset, resources):
        queries = Evaluator(tiny_dataset, max_queries=3).queries
        payload = evaluate_fine_grained(
            RetExpan(resources=resources), tiny_dataset, queries=queries
        ).to_dict()
        assert payload["method"] == "RetExpan"
        assert set(payload["map_at"]) == {10, 20, 50, 100}
