"""Tests for the fine-grained class schemas."""

import pytest

from repro.exceptions import DatasetError
from repro.kb.schema import ClassSchema, default_schemas, schema_by_name

PAPER_CLASS_NAMES = {
    "countries",
    "mobile_phone_brands",
    "china_cities",
    "chemical_elements",
    "canada_universities",
    "nobel_laureates",
    "percussion_instruments",
    "us_airports",
    "us_national_monuments",
    "us_presidents",
}


class TestDefaultSchemas:
    def test_ten_fine_grained_classes(self):
        assert len(default_schemas()) == 10

    def test_class_names_match_paper_figure4(self):
        assert {schema.name for schema in default_schemas()} == PAPER_CLASS_NAMES

    def test_limit_parameter(self):
        assert len(default_schemas(limit=4)) == 4

    def test_invalid_limit_rejected(self):
        with pytest.raises(DatasetError):
            default_schemas(limit=0)
        with pytest.raises(DatasetError):
            default_schemas(limit=11)

    def test_each_class_has_two_or_three_attributes(self):
        for schema in default_schemas():
            assert 2 <= len(schema.attributes) <= 3, schema.name

    def test_each_attribute_has_at_least_two_values(self):
        for schema in default_schemas():
            for attribute, values in schema.attributes.items():
                assert len(values) >= 2, f"{schema.name}.{attribute}"

    def test_every_attribute_value_has_a_phrase(self):
        for schema in default_schemas():
            for attribute, values in schema.attributes.items():
                for value in values:
                    assert schema.phrase(attribute, value)

    def test_every_attribute_has_templates(self):
        for schema in default_schemas():
            for attribute in schema.attributes:
                templates = schema.attribute_templates[attribute]
                assert templates
                for template in templates:
                    assert "{name}" in template and "{phrase}" in template

    def test_generic_templates_reference_name(self):
        for schema in default_schemas():
            assert schema.generic_templates
            for template in schema.generic_templates:
                assert "{name}" in template

    def test_name_components_present(self):
        for schema in default_schemas():
            assert schema.name_prefixes
            assert schema.name_suffixes

    def test_descriptions_are_human_readable(self):
        for schema in default_schemas():
            assert schema.description
            assert schema.description[0].isupper()


class TestSchemaLookup:
    def test_lookup_by_name(self):
        schema = schema_by_name("mobile_phone_brands")
        assert isinstance(schema, ClassSchema)
        assert "os" in schema.attributes

    def test_unknown_name_raises(self):
        with pytest.raises(DatasetError):
            schema_by_name("galaxies")

    def test_unknown_phrase_raises(self):
        schema = schema_by_name("countries")
        with pytest.raises(DatasetError):
            schema.phrase("continent", "atlantis")

    def test_attribute_names_helper(self):
        schema = schema_by_name("countries")
        assert set(schema.attribute_names()) == set(schema.attributes.keys())
