"""Tests for the corpus container."""

import pytest

from repro.exceptions import DatasetError
from repro.kb.corpus import Corpus
from repro.text.tokenizer import MASK_TOKEN
from repro.types import Sentence


def build_corpus():
    return Corpus(
        [
            Sentence(0, "Vexo Mobile ships Android handsets.", (1,)),
            Sentence(1, "Vexo Mobile is publicly listed.", (1,)),
            Sentence(2, "Nuvia Telecom makes feature phones.", (2,)),
        ]
    )


class TestCorpus:
    def test_len(self):
        assert len(build_corpus()) == 3

    def test_duplicate_sentence_id_rejected(self):
        corpus = build_corpus()
        with pytest.raises(DatasetError):
            corpus.add(Sentence(0, "duplicate", (1,)))

    def test_sentence_lookup(self):
        assert build_corpus().sentence(2).text.startswith("Nuvia")

    def test_unknown_sentence_raises(self):
        with pytest.raises(DatasetError):
            build_corpus().sentence(99)

    def test_sentences_of_entity(self):
        corpus = build_corpus()
        assert len(corpus.sentences_of(1)) == 2
        assert len(corpus.sentences_of(2)) == 1
        assert corpus.sentences_of(42) == []

    def test_entity_mention_counts(self):
        assert build_corpus().entity_mention_counts() == {1: 2, 2: 1}

    def test_masked_text_replaces_mention(self):
        corpus = build_corpus()
        masked = corpus.masked_text(corpus.sentence(0), "Vexo Mobile")
        assert MASK_TOKEN in masked
        assert "Vexo Mobile" not in masked

    def test_masked_text_prepends_when_name_absent(self):
        corpus = build_corpus()
        masked = corpus.masked_text(corpus.sentence(0), "Unrelated Name")
        assert masked.startswith(MASK_TOKEN)

    def test_iteration_order(self):
        assert [s.sentence_id for s in build_corpus()] == [0, 1, 2]

    def test_bm25_index_built_over_all_sentences(self):
        index = build_corpus().build_bm25()
        assert index.num_documents == 3
        results = index.search(["android"], top_k=3)
        assert results and results[0][0] == 0

    def test_save_and_load_roundtrip(self, tmp_path):
        corpus = build_corpus()
        path = tmp_path / "corpus.jsonl"
        assert corpus.save(path) == 3
        restored = Corpus.load(path)
        assert len(restored) == 3
        assert restored.sentence(1).text == corpus.sentence(1).text
        assert restored.entity_mention_counts() == corpus.entity_mention_counts()

    def test_multi_entity_sentence_indexed_for_each(self):
        corpus = Corpus([Sentence(0, "Vexo and Nuvia compete.", (1, 2))])
        assert corpus.sentences_of(1) == corpus.sentences_of(2)
