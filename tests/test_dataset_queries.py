"""Tests for query (seed set) generation."""

import pytest

from repro.dataset.queries import QueryGenerator
from repro.dataset.semantic_class import SemanticClassGenerator
from repro.exceptions import DatasetError
from repro.kb.generator import EntityGenerator
from repro.kb.schema import schema_by_name
from repro.utils.rng import RandomState


@pytest.fixture(scope="module")
def setup():
    schema = schema_by_name("countries")
    entities = EntityGenerator(RandomState(31)).generate_class_entities(schema, 150)
    ultra_classes = SemanticClassGenerator(RandomState(32)).generate(schema, entities)
    by_id = {e.entity_id: e for e in entities}
    return ultra_classes, by_id


class TestQueryGenerator:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(DatasetError):
            QueryGenerator(RandomState(0), queries_per_class=0)
        with pytest.raises(DatasetError):
            QueryGenerator(RandomState(0), min_seeds=4, max_seeds=3)

    def test_three_queries_per_class(self, setup):
        ultra_classes, by_id = setup
        generator = QueryGenerator(RandomState(1), queries_per_class=3)
        queries = generator.generate_for_class(ultra_classes[0], by_id)
        assert len(queries) == 3

    def test_seed_counts_within_paper_range(self, setup):
        ultra_classes, by_id = setup
        generator = QueryGenerator(RandomState(1), min_seeds=3, max_seeds=5)
        for ultra in ultra_classes[:10]:
            for query in generator.generate_for_class(ultra, by_id):
                assert 3 <= len(query.positive_seed_ids) <= 5
                assert 3 <= len(query.negative_seed_ids) <= 5

    def test_positive_seeds_are_positive_targets(self, setup):
        ultra_classes, by_id = setup
        generator = QueryGenerator(RandomState(1))
        for ultra in ultra_classes[:10]:
            for query in generator.generate_for_class(ultra, by_id):
                assert set(query.positive_seed_ids) <= set(ultra.positive_entity_ids)

    def test_negative_seeds_are_negative_targets(self, setup):
        ultra_classes, by_id = setup
        generator = QueryGenerator(RandomState(1))
        for ultra in ultra_classes[:10]:
            for query in generator.generate_for_class(ultra, by_id):
                assert set(query.negative_seed_ids) <= set(ultra.negative_entity_ids)

    def test_seeds_do_not_overlap(self, setup):
        ultra_classes, by_id = setup
        generator = QueryGenerator(RandomState(1))
        for ultra in ultra_classes[:10]:
            for query in generator.generate_for_class(ultra, by_id):
                assert not set(query.positive_seed_ids) & set(query.negative_seed_ids)

    def test_seeds_avoid_ambiguous_overlap_entities(self, setup):
        """Seeds should come from P - N (positives) and N - P (negatives)."""
        ultra_classes, by_id = setup
        generator = QueryGenerator(RandomState(1))
        for ultra in ultra_classes[:10]:
            pos, neg = set(ultra.positive_entity_ids), set(ultra.negative_entity_ids)
            for query in generator.generate_for_class(ultra, by_id):
                assert not set(query.positive_seed_ids) & neg
                assert not set(query.negative_seed_ids) & pos

    def test_query_ids_unique(self, setup):
        ultra_classes, by_id = setup
        generator = QueryGenerator(RandomState(1))
        queries = generator.generate(ultra_classes, by_id)
        ids = [q.query_id for q in queries]
        assert len(ids) == len(set(ids))

    def test_queries_leave_targets_to_rank(self, setup):
        """After removing seeds there must still be positive targets to find."""
        ultra_classes, by_id = setup
        generator = QueryGenerator(RandomState(1))
        for ultra in ultra_classes[:10]:
            for query in generator.generate_for_class(ultra, by_id):
                remaining = set(ultra.positive_entity_ids) - set(query.positive_seed_ids)
                assert remaining

    def test_deterministic_given_seed(self, setup):
        ultra_classes, by_id = setup
        a = QueryGenerator(RandomState(9)).generate(ultra_classes, by_id)
        b = QueryGenerator(RandomState(9)).generate(ultra_classes, by_id)
        assert [q.to_dict() for q in a] == [q.to_dict() for q in b]

    def test_generate_skips_unseedable_classes(self, setup):
        """Classes whose non-overlapping pools are too small are skipped, not fatal."""
        ultra_classes, by_id = setup
        generator = QueryGenerator(RandomState(1), min_seeds=3, max_seeds=5)
        queries = generator.generate(ultra_classes, by_id)
        assert queries  # at least some classes are seedable
        queried = {q.class_id for q in queries}
        assert queried <= {u.class_id for u in ultra_classes}
