"""Tests for the four-step dataset construction pipeline."""

import pytest

from repro.config import DatasetConfig
from repro.dataset.builder import UltraWikiBuilder, build_dataset
from repro.exceptions import ConfigurationError


class TestBuilderValidation:
    def test_invalid_config_rejected_at_construction(self):
        with pytest.raises(ConfigurationError):
            UltraWikiBuilder(DatasetConfig(entities_per_class=5))


class TestBuiltDataset:
    def test_entity_counts(self, tiny_dataset, tiny_config):
        expected_class_entities = tiny_config.num_fine_classes * tiny_config.entities_per_class
        assert tiny_dataset.num_entities == expected_class_entities + tiny_config.num_distractors
        assert len(tiny_dataset.distractors()) == tiny_config.num_distractors

    def test_fine_class_count(self, tiny_dataset, tiny_config):
        assert len(tiny_dataset.fine_classes) == tiny_config.num_fine_classes

    def test_every_class_entity_has_all_attributes(self, tiny_dataset):
        for entity in tiny_dataset.entities():
            if entity.fine_class is None:
                continue
            schema_attributes = tiny_dataset.fine_classes[entity.fine_class].attributes
            assert set(entity.attributes) == set(schema_attributes)
            for attribute, value in entity.attributes.items():
                assert value in schema_attributes[attribute]

    def test_every_entity_has_context_sentences(self, tiny_dataset):
        counts = tiny_dataset.corpus.entity_mention_counts()
        for entity in tiny_dataset.entities():
            assert counts.get(entity.entity_id, 0) >= 2

    def test_ultra_classes_generated_for_each_fine_class(self, tiny_dataset):
        fine_with_ultra = {u.fine_class for u in tiny_dataset.ultra_classes.values()}
        assert fine_with_ultra == set(tiny_dataset.fine_classes)

    def test_every_ultra_class_has_queries(self, tiny_dataset, tiny_config):
        for class_id in tiny_dataset.ultra_classes:
            queries = tiny_dataset.queries_of_class(class_id)
            assert len(queries) == tiny_config.queries_per_class

    def test_targets_meet_threshold(self, tiny_dataset, tiny_config):
        for ultra in tiny_dataset.ultra_classes.values():
            assert len(ultra.positive_entity_ids) >= tiny_config.min_targets
            assert len(ultra.negative_entity_ids) >= tiny_config.min_targets

    def test_targets_reference_existing_entities(self, tiny_dataset):
        ids = set(tiny_dataset.entity_ids())
        for ultra in tiny_dataset.ultra_classes.values():
            assert set(ultra.positive_entity_ids) <= ids
            assert set(ultra.negative_entity_ids) <= ids

    def test_target_entities_belong_to_the_fine_class(self, tiny_dataset):
        for ultra in tiny_dataset.ultra_classes.values():
            for eid in (*ultra.positive_entity_ids, *ultra.negative_entity_ids):
                assert tiny_dataset.entity(eid).fine_class == ultra.fine_class

    def test_annotation_metadata_recorded(self, tiny_dataset):
        annotation = tiny_dataset.metadata["annotation"]
        assert annotation["wikidata_statements"] > 0
        assert annotation["manual_items"] > 0
        assert annotation["annotator_agreement"] > 0.8

    def test_hard_negatives_are_distractors_with_classlike_sentences(self, tiny_dataset):
        hard_ids = tiny_dataset.metadata["hard_negative_ids"]
        assert hard_ids
        for entity_id in hard_ids[:20]:
            assert tiny_dataset.entity(entity_id).fine_class is None

    def test_config_stored_in_metadata(self, tiny_dataset, tiny_config):
        assert tiny_dataset.metadata["config"]["seed"] == tiny_config.seed

    def test_class_overlap_is_high(self, tiny_dataset):
        """The paper reports ~99% of ultra-fine-grained classes overlap with a sibling."""
        from repro.dataset.analysis import compute_statistics

        stats = compute_statistics(tiny_dataset)
        assert stats.class_overlap_fraction > 0.9

    def test_determinism(self, tiny_config, tiny_dataset):
        rebuilt = build_dataset(tiny_config)
        assert rebuilt.num_entities == tiny_dataset.num_entities
        assert rebuilt.num_sentences == tiny_dataset.num_sentences
        assert set(rebuilt.ultra_classes) == set(tiny_dataset.ultra_classes)
        assert [q.query_id for q in rebuilt.queries] == [
            q.query_id for q in tiny_dataset.queries
        ]

    def test_different_seed_changes_dataset(self, tiny_config, tiny_dataset):
        other = build_dataset(DatasetConfig.tiny(seed=tiny_config.seed + 1))
        assert [e.name for e in other.entities()[:20]] != [
            e.name for e in tiny_dataset.entities()[:20]
        ]
