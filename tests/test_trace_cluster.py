"""Fleet-level distributed tracing + usage metering tests.

Thread-backed workers behind a real :class:`ClusterGateway`, as in
``tests/test_obs_cluster.py``.  A request routed through the gateway must
come back as ONE joined trace — the gateway's ``gateway``/``proxy`` spans
plus every worker fragment grafted under them, all carrying the same
``trace_id`` — searchable at the gateway's ``GET /v1/traces``.  Worker-only
traces stay reachable through the gateway via the scatter fallback, and
per-tenant usage rolls up into the dashboard's cost column.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.cluster import ClusterConfig, ClusterGateway
from repro.config import ServiceConfig
from repro.core.base import Expander
from repro.obs.top import render_dashboard
from repro.serve import ExpansionHTTPServer, ExpansionService
from repro.types import ExpansionResult

STUB_METHODS = tuple(f"stub{letter}" for letter in "abcdef")


class TraceStubExpander(Expander):
    def __init__(self, salt: str):
        super().__init__()
        self.name = salt
        self.salt = sum(ord(ch) for ch in salt)

    def _expand(self, query, top_k):
        scored = [
            (eid, 1.0 / (1.0 + ((eid * 2654435761 + self.salt) % 4093)))
            for eid in self.candidate_ids(query)
        ]
        return ExpansionResult.from_scores(query.query_id, scored)


def make_worker(dataset, **config_kwargs) -> ExpansionHTTPServer:
    factories = {
        method: (lambda _res, m=method: TraceStubExpander(m))
        for method in STUB_METHODS
    }
    service = ExpansionService(
        dataset,
        config=ServiceConfig(batch_wait_ms=0.0, port=0, **config_kwargs),
        factories=factories,
    )
    return ExpansionHTTPServer(service, port=0).start()


def make_gateway(dataset, servers, **config_kwargs) -> ClusterGateway:
    config = ClusterConfig(
        failover_cooldown_seconds=0.2, proxy_timeout_seconds=30.0, **config_kwargs
    )
    return ClusterGateway(
        [(f"worker-{i}", server.url) for i, server in enumerate(servers)],
        config=config,
        fingerprint=dataset.fingerprint(),
        port=0,
    ).start()


def http_get(url: str, headers: dict | None = None):
    request = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, response.read(), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, error.read(), dict(error.headers)


def http_post(url: str, payload: dict, headers: dict | None = None):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


@pytest.fixture()
def traced_fleet(tiny_dataset):
    """Two always-sampling workers behind an always-sampling gateway."""
    servers = [
        make_worker(tiny_dataset, trace_sample_rate=1.0),
        make_worker(tiny_dataset, trace_sample_rate=1.0),
    ]
    gateway = make_gateway(
        tiny_dataset,
        servers,
        service=ServiceConfig(trace_sample_rate=1.0),
    )
    yield gateway, servers
    gateway.shutdown()
    for server in servers:
        server.shutdown()


class TestJoinedTraces:
    def test_gateway_request_yields_one_joined_trace(
        self, traced_fleet, tiny_dataset
    ):
        gateway, servers = traced_fleet
        query_id = tiny_dataset.queries[0].query_id
        status, _envelope, headers = http_post(
            gateway.url + "/v1/expand",
            {"method": STUB_METHODS[0], "query_id": query_id},
        )
        assert status == 200
        trace_id = headers["X-Repro-Trace-Id"]
        assert len(trace_id) == 32

        status, body, _ = http_get(gateway.url + f"/v1/traces/{trace_id}")
        assert status == 200
        record = json.loads(body)["data"]["trace"]
        assert record["trace_id"] == trace_id
        assert record["method"] == STUB_METHODS[0]
        assert record["kept"] == "sampled"

        spans = record["spans"]
        by_name = {}
        for entry in spans:
            by_name.setdefault(entry["name"], []).append(entry)
        # the joined tree: gateway envelope span, the proxy hop, and the
        # worker-side stages grafted under it — one trace, both tiers.
        assert "gateway" in by_name
        assert "proxy" in by_name
        assert "execute" in by_name
        assert "cache_lookup" in by_name
        gateway_span = by_name["gateway"][0]
        proxy_span = by_name["proxy"][0]
        assert proxy_span["parent"] == "gateway"
        assert proxy_span["parent_id"] == gateway_span["span_id"]
        assert proxy_span["meta"]["worker"] in ("worker-0", "worker-1")
        # worker orphans hang under the specific proxy hop instance.
        execute_span = by_name["execute"][0]
        roots = [e for e in spans if e.get("parent_id") is None]
        assert roots == [gateway_span]

        # the worker kept its own fragment under the SAME trace id, and
        # grafting preserved span durations exactly.
        worker_records = [
            (server, server.service.traces.get(trace_id))
            for server in servers
            if server.service.traces.get(trace_id) is not None
        ]
        assert len(worker_records) == 1
        _worker, worker_record = worker_records[0]
        worker_execute = next(
            e for e in worker_record["spans"] if e["name"] == "execute"
        )
        assert worker_execute["duration_ms"] == execute_span["duration_ms"]
        assert worker_execute["span_id"] == execute_span["span_id"]

    def test_gateway_trace_search_filters(self, traced_fleet, tiny_dataset):
        gateway, _servers = traced_fleet
        query_id = tiny_dataset.queries[0].query_id
        for method in STUB_METHODS[:3]:
            status, _envelope, _ = http_post(
                gateway.url + "/v1/expand", {"method": method, "query_id": query_id}
            )
            assert status == 200
        status, body, _ = http_get(
            gateway.url + f"/v1/traces?method={STUB_METHODS[0]}"
        )
        assert status == 200
        data = json.loads(body)["data"]
        assert data["count"] >= 1
        assert all(row["method"] == STUB_METHODS[0] for row in data["traces"])
        # malformed filters answer 400, not a scatter storm.
        status, body, _ = http_get(gateway.url + "/v1/traces?limit=banana")
        assert status == 400

    def test_worker_only_traces_reachable_through_the_gateway(
        self, tiny_dataset
    ):
        """Front-line traffic traced worker-side only (gateway tracing off)
        is still fetchable by id through the gateway's scatter fallback."""
        servers = [make_worker(tiny_dataset, trace_sample_rate=1.0)]
        gateway = make_gateway(tiny_dataset, servers)
        try:
            query_id = tiny_dataset.queries[0].query_id
            status, _envelope, _ = http_post(
                gateway.url + "/v1/expand",
                {"method": STUB_METHODS[0], "query_id": query_id},
            )
            assert status == 200
            rows = servers[0].service.traces.query(limit=1)
            assert rows
            trace_id = rows[0]["trace_id"]
            status, body, headers = http_get(
                gateway.url + f"/v1/traces/{trace_id}"
            )
            assert status == 200
            assert headers["X-Repro-Worker"] == "worker-0"
            record = json.loads(body)["data"]["trace"]
            assert record["trace_id"] == trace_id
        finally:
            gateway.shutdown()
            for server in servers:
                server.shutdown()

    def test_unknown_trace_id_is_a_fleet_wide_404(self, traced_fleet):
        gateway, _servers = traced_fleet
        status, body, _ = http_get(gateway.url + "/v1/traces/" + "ab" * 16)
        assert status == 404
        payload = json.loads(body)["error"]
        assert payload["code"] == "not_found"
        assert payload["details"]["trace_id"] == "ab" * 16


class TestClusterUsageMetering:
    def test_usage_rolls_up_into_dashboard_and_cost_column(
        self, tiny_dataset
    ):
        servers = [
            make_worker(tiny_dataset, usage_metering=True),
            make_worker(tiny_dataset, usage_metering=True),
        ]
        gateway = make_gateway(tiny_dataset, servers)
        try:
            query_id = tiny_dataset.queries[0].query_id
            for method in STUB_METHODS[:4]:
                status, _envelope, _ = http_post(
                    gateway.url + "/v1/expand",
                    {"method": method, "query_id": query_id},
                )
                assert status == 200
            status, body, _ = http_get(gateway.url + "/v1/dashboard")
            assert status == 200
            data = json.loads(body)["data"]
            tenants = data["usage"]["tenants"]
            assert "anonymous" in tenants
            assert tenants["anonymous"]["requests"] == 4
            assert tenants["anonymous"]["compute_seconds"] > 0.0
            # the synthesized tenants table gives the cost column a home
            # even without a gate, and `cluster top` renders it.
            rows = {row["tenant"]: row for row in data["tenants"]}
            assert rows["anonymous"]["compute_seconds"] > 0.0
            frame = render_dashboard(data)
            assert "COST(s)" in frame
            assert "anonymous" in frame
        finally:
            gateway.shutdown()
            for server in servers:
                server.shutdown()

    def test_fit_jobs_bill_the_requesting_tenant(self, tiny_dataset):
        servers = [make_worker(tiny_dataset, usage_metering=True)]
        gateway = make_gateway(tiny_dataset, servers)
        try:
            status, envelope, _ = http_post(
                gateway.url + "/v1/fits", {"method": STUB_METHODS[0]}
            )
            assert status == 202
            deadline = time.monotonic() + 10.0
            usage = None
            while time.monotonic() < deadline:
                usage = servers[0].service.usage.summary()["tenants"].get(
                    "anonymous"
                )
                if usage is not None and usage["fits"] >= 1:
                    break
                time.sleep(0.02)
            assert usage is not None and usage["fits"] == 1
            assert usage["fit_seconds"] >= 0.0
            assert usage["compute_seconds"] >= usage["fit_seconds"]
        finally:
            gateway.shutdown()
            for server in servers:
                server.shutdown()
