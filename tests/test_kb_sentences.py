"""Tests for the sentence generator."""

import pytest

from repro.kb.generator import EntityGenerator
from repro.kb.schema import default_schemas, schema_by_name
from repro.kb.sentences import SentenceGenerator
from repro.utils.rng import RandomState


@pytest.fixture()
def phone_entities():
    return EntityGenerator(RandomState(5)).generate_class_entities(
        schema_by_name("mobile_phone_brands"), 20
    )


class TestSentenceGenerator:
    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            SentenceGenerator(RandomState(0), attribute_sentence_ratio=1.5)

    def test_every_entity_gets_at_least_two_sentences(self, phone_entities):
        generator = SentenceGenerator(RandomState(1))
        schema = schema_by_name("mobile_phone_brands")
        for entity in phone_entities:
            sentences = generator.generate_for_entity(entity, schema, mean_sentences=4.0)
            assert len(sentences) >= 2

    def test_sentences_mention_entity_name(self, phone_entities):
        generator = SentenceGenerator(RandomState(1))
        schema = schema_by_name("mobile_phone_brands")
        entity = phone_entities[0]
        for sentence in generator.generate_for_entity(entity, schema, 4.0):
            assert entity.name in sentence.text
            assert sentence.entity_ids == (entity.entity_id,)

    def test_attribute_signal_present_in_corpus(self, phone_entities):
        """Most entities should have at least one sentence expressing an attribute value."""
        generator = SentenceGenerator(RandomState(1), attribute_sentence_ratio=0.8)
        schema = schema_by_name("mobile_phone_brands")
        with_signal = 0
        for entity in phone_entities:
            sentences = generator.generate_for_entity(entity, schema, 5.0)
            phrases = [
                schema.phrase(attribute, value)
                for attribute, value in entity.attributes.items()
            ]
            if any(any(p in s.text for p in phrases) for s in sentences):
                with_signal += 1
        assert with_signal >= int(0.8 * len(phone_entities))

    def test_zero_attribute_ratio_yields_generic_only(self, phone_entities):
        generator = SentenceGenerator(RandomState(1), attribute_sentence_ratio=0.0)
        schema = schema_by_name("mobile_phone_brands")
        entity = phone_entities[0]
        phrases = [
            schema.phrase(attribute, value)
            for attribute, value in entity.attributes.items()
        ]
        for sentence in generator.generate_for_entity(entity, schema, 5.0):
            assert not any(p in sentence.text for p in phrases)

    def test_popular_entities_get_more_sentences(self, phone_entities):
        generator = SentenceGenerator(RandomState(1))
        schema = schema_by_name("mobile_phone_brands")
        popular = phone_entities[0].__class__(**{**phone_entities[0].to_dict(), "popularity": 1.0})
        obscure = phone_entities[1].__class__(**{**phone_entities[1].to_dict(), "popularity": 0.05})
        popular_count = len(generator.generate_for_entity(popular, schema, 8.0))
        obscure_count = len(
            SentenceGenerator(RandomState(1)).generate_for_entity(obscure, schema, 8.0)
        )
        assert popular_count >= obscure_count

    def test_distractors_use_generic_templates(self):
        generator = SentenceGenerator(RandomState(2))
        distractor = EntityGenerator(RandomState(9)).generate_distractors(1)[0]
        sentences = generator.generate_for_entity(distractor, None, 4.0)
        assert sentences
        assert all(distractor.name in s.text for s in sentences)

    def test_sentence_ids_unique_across_corpus(self, phone_entities):
        generator = SentenceGenerator(RandomState(3))
        schemas = {s.name: s for s in default_schemas()}
        corpus = generator.generate_corpus(phone_entities, schemas, 4.0)
        ids = [s.sentence_id for s in corpus]
        assert len(ids) == len(set(ids))

    def test_expected_sentences_lower_bound(self):
        assert SentenceGenerator.expected_sentences(100, 4.0) >= 400
