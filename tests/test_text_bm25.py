"""Tests for the BM25 index."""

import pytest

from repro.text.bm25 import BM25Index


def build_index():
    index = BM25Index()
    index.add_document(1, "android phone brand with android system".split())
    index.add_document(2, "ios phone brand from america".split())
    index.add_document(3, "a country located in europe with high income".split())
    index.add_document(4, "another android handset maker".split())
    return index


class TestBM25:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BM25Index(k1=-1.0)
        with pytest.raises(ValueError):
            BM25Index(b=1.5)

    def test_num_documents(self):
        assert build_index().num_documents == 4

    def test_idf_decreases_with_document_frequency(self):
        index = build_index()
        assert index.idf("europe") > index.idf("android")
        assert index.idf("android") > index.idf("phone") or index.idf("android") == pytest.approx(
            index.idf("phone")
        )

    def test_idf_non_negative(self):
        index = build_index()
        for token in ("android", "phone", "brand", "europe", "missing"):
            assert index.idf(token) >= 0.0

    def test_score_zero_for_disjoint_query(self):
        index = build_index()
        assert index.score(["zebra"], 1) == 0.0

    def test_matching_document_scores_higher(self):
        index = build_index()
        assert index.score(["android"], 1) > index.score(["android"], 2)

    def test_search_returns_relevant_first(self):
        index = build_index()
        results = index.search(["android", "phone"], top_k=3)
        assert results[0][0] == 1

    def test_search_respects_top_k(self):
        assert len(build_index().search(["phone", "android", "europe"], top_k=2)) == 2

    def test_search_only_returns_matching_documents(self):
        results = build_index().search(["europe"], top_k=10)
        assert [doc_id for doc_id, _ in results] == [3]

    def test_search_empty_query(self):
        assert build_index().search([], top_k=5) == []

    def test_scores_sorted_descending(self):
        results = build_index().search(["android", "phone", "brand"], top_k=4)
        scores = [score for _, score in results]
        assert scores == sorted(scores, reverse=True)

    def test_term_frequency_saturation(self):
        # BM25 saturates: doubling tf should less than double the score.
        index = BM25Index()
        index.add_document(1, ["android"] * 1 + ["filler"] * 9)
        index.add_document(2, ["android"] * 2 + ["filler"] * 8)
        index.add_document(3, ["other"] * 10)
        single = index.score(["android"], 1)
        double = index.score(["android"], 2)
        assert double > single
        assert double < 2 * single
