"""Tests for the vocabulary."""

import pytest

from repro.exceptions import VocabularyError
from repro.text.vocab import (
    BOS_TOKEN,
    EOS_TOKEN,
    MASK_TOKEN,
    PAD_TOKEN,
    SPECIAL_TOKENS,
    UNK_TOKEN,
    Vocabulary,
)


class TestVocabulary:
    def test_special_tokens_present(self):
        vocab = Vocabulary()
        for token in SPECIAL_TOKENS:
            assert token in vocab

    def test_special_token_ids_stable(self):
        vocab = Vocabulary(["apple"])
        assert vocab.pad_id == vocab.strict_id_of(PAD_TOKEN)
        assert vocab.unk_id == vocab.strict_id_of(UNK_TOKEN)
        assert vocab.mask_id == vocab.strict_id_of(MASK_TOKEN)
        assert vocab.bos_id == vocab.strict_id_of(BOS_TOKEN)
        assert vocab.eos_id == vocab.strict_id_of(EOS_TOKEN)

    def test_add_returns_same_id_for_duplicates(self):
        vocab = Vocabulary()
        first = vocab.add("apple")
        second = vocab.add("apple")
        assert first == second

    def test_unknown_token_maps_to_unk(self):
        vocab = Vocabulary(["apple"])
        assert vocab.id_of("zebra") == vocab.unk_id

    def test_strict_lookup_raises_for_unknown(self):
        with pytest.raises(VocabularyError):
            Vocabulary().strict_id_of("zebra")

    def test_token_of_out_of_range_raises(self):
        with pytest.raises(VocabularyError):
            Vocabulary().token_of(10_000)

    def test_encode_decode_roundtrip(self):
        vocab = Vocabulary(["a", "b", "c"])
        tokens = ["a", "c", "b", "a"]
        assert vocab.decode(vocab.encode(tokens)) == tokens

    def test_len_counts_specials(self):
        vocab = Vocabulary(["a", "b"])
        assert len(vocab) == len(SPECIAL_TOKENS) + 2

    def test_from_token_lists_frequency_ordering(self):
        vocab = Vocabulary.from_token_lists([["b", "a", "a"], ["a", "b", "c"]])
        # "a" (3 occurrences) gets a lower id than "b" (2), which beats "c" (1).
        assert vocab.id_of("a") < vocab.id_of("b") < vocab.id_of("c")

    def test_from_token_lists_min_count(self):
        vocab = Vocabulary.from_token_lists([["a", "a", "b"]], min_count=2)
        assert "a" in vocab
        assert "b" not in vocab

    def test_from_token_lists_max_size(self):
        vocab = Vocabulary.from_token_lists(
            [["a", "a", "a", "b", "b", "c"]], max_size=len(SPECIAL_TOKENS) + 2
        )
        assert "a" in vocab and "b" in vocab
        assert "c" not in vocab

    def test_iteration_yields_all_tokens(self):
        vocab = Vocabulary(["x"])
        assert set(iter(vocab)) == set(SPECIAL_TOKENS) | {"x"}
