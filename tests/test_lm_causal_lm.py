"""Tests for the n-gram LM and the causal entity LM (LLaMA substitute)."""

import numpy as np
import pytest

from repro.config import CausalLMConfig
from repro.exceptions import ModelError
from repro.lm.causal_lm import CausalEntityLM, NGramLanguageModel
from repro.text.prefix_tree import PrefixTree
from repro.text.tokenizer import WordTokenizer


class TestNGramLanguageModel:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ModelError):
            NGramLanguageModel(order=0)
        with pytest.raises(ModelError):
            NGramLanguageModel(smoothing=0.0)

    def test_probabilities_sum_close_to_one(self):
        lm = NGramLanguageModel(order=2, smoothing=0.1)
        lm.fit([["a", "b", "c"], ["a", "b", "d"]])
        vocab = lm.vocabulary
        total = sum(lm.probability(["a"], token) for token in vocab)
        assert total == pytest.approx(1.0, abs=0.05)

    def test_seen_continuation_more_likely(self):
        lm = NGramLanguageModel(order=2)
        lm.fit([["the", "android", "phone"]] * 5 + [["the", "country", "votes"]])
        assert lm.probability(["the"], "android") > lm.probability(["the"], "votes")

    def test_unseen_token_gets_small_probability(self):
        lm = NGramLanguageModel(order=2)
        lm.fit([["a", "b"]])
        assert 0.0 < lm.probability(["a"], "zzz") < 0.2

    def test_sequence_logprob_additivity(self):
        lm = NGramLanguageModel(order=2)
        lm.fit([["a", "b", "c"]])
        combined = lm.sequence_logprob(["b", "c"], context=["a"])
        stepwise = lm.logprob(["a"], "b") + lm.logprob(["a", "b"], "c")
        assert combined == pytest.approx(stepwise)

    def test_next_token_candidates_ranked(self):
        lm = NGramLanguageModel(order=2)
        lm.fit([["the", "phone"]] * 10 + [["the", "country"]])
        candidates = lm.next_token_candidates(["the"], top_k=3)
        assert candidates[0][0] == "phone"
        scores = [score for _, score in candidates]
        assert scores == sorted(scores, reverse=True)


@pytest.fixture(scope="module")
def fitted_lm(tiny_dataset):
    config = CausalLMConfig(seed=3, embedding_dim=32)
    return CausalEntityLM(config).fit(tiny_dataset.corpus, tiny_dataset.entities())


@pytest.fixture(scope="module")
def prefix_tree(tiny_dataset):
    return PrefixTree.from_entities(
        (e.name for e in tiny_dataset.entities()), WordTokenizer()
    )


class TestCausalEntityLM:
    def test_unfitted_access_raises(self):
        lm = CausalEntityLM()
        with pytest.raises(ModelError):
            lm.entity_affinity(0, 1)

    def test_affinity_symmetric_and_bounded(self, fitted_lm, tiny_dataset):
        a, b = tiny_dataset.entity_ids()[:2]
        forward = fitted_lm.entity_affinity(a, b)
        backward = fitted_lm.entity_affinity(b, a)
        assert forward == pytest.approx(backward)
        assert 0.0 <= forward <= 1.0

    def test_affinity_respects_fine_class(self, fitted_lm, tiny_dataset):
        """Same-class entities should be more affine than cross-class ones on average."""
        classes = sorted(tiny_dataset.fine_classes)
        first = tiny_dataset.entities_of_fine_class(classes[0])[:10]
        second = tiny_dataset.entities_of_fine_class(classes[1])[:10]
        same = np.mean(
            [fitted_lm.entity_affinity(a.entity_id, b.entity_id) for a in first for b in first if a != b]
        )
        cross = np.mean(
            [fitted_lm.entity_affinity(a.entity_id, b.entity_id) for a in first for b in second]
        )
        assert same > cross

    def test_prompt_affinity_empty_prompt(self, fitted_lm, tiny_dataset):
        assert fitted_lm.prompt_affinity(tiny_dataset.entity_ids()[0], []) == 0.0

    def test_entity_logprob_finite(self, fitted_lm, tiny_dataset):
        ids = tiny_dataset.entity_ids()
        value = fitted_lm.entity_logprob(ids[0], ids[1:4])
        assert np.isfinite(value)
        assert value <= 0.0

    def test_entity_logprob_unknown_entity_raises(self, fitted_lm):
        with pytest.raises(ModelError):
            fitted_lm.entity_logprob(10**9, [])

    def test_conditional_similarity_bounded(self, fitted_lm, tiny_dataset):
        ids = tiny_dataset.entity_ids()
        value = fitted_lm.conditional_similarity(ids[0], ids[1])
        assert 0.0 <= value <= 1.0

    def test_conditional_similarity_unknown_entity_zero(self, fitted_lm, tiny_dataset):
        assert fitted_lm.conditional_similarity(10**9, tiny_dataset.entity_ids()[0]) == 0.0

    def test_constrained_generation_yields_valid_entities(
        self, fitted_lm, tiny_dataset, prefix_tree
    ):
        query = tiny_dataset.queries[0]
        generated = fitted_lm.generate_constrained(
            list(query.positive_seed_ids), prefix_tree, beam_width=10
        )
        assert generated
        assert len(generated) <= 10
        for name, score in generated:
            assert tiny_dataset.has_entity_name(name)
            assert np.isfinite(score)

    def test_constrained_generation_respects_exclusions(
        self, fitted_lm, tiny_dataset, prefix_tree
    ):
        query = tiny_dataset.queries[0]
        excluded = {tiny_dataset.entity(eid).name for eid in query.positive_seed_ids}
        generated = fitted_lm.generate_constrained(
            list(query.positive_seed_ids), prefix_tree, beam_width=10, exclude_names=excluded
        )
        assert not ({name for name, _ in generated} & excluded)

    def test_constrained_generation_prefers_same_class(self, fitted_lm, tiny_dataset, prefix_tree):
        query = tiny_dataset.queries[0]
        fine_class = tiny_dataset.ultra_class(query.class_id).fine_class
        generated = fitted_lm.generate_constrained(
            list(query.positive_seed_ids), prefix_tree, beam_width=10
        )
        same_class = sum(
            1
            for name, _ in generated
            if tiny_dataset.entity_by_name(name).fine_class == fine_class
        )
        assert same_class >= len(generated) // 2

    def test_unconstrained_generation_returns_strings(self, fitted_lm, tiny_dataset):
        query = tiny_dataset.queries[0]
        generated = fitted_lm.generate_unconstrained(list(query.positive_seed_ids), beam_width=5)
        assert isinstance(generated, list)
        for name, score in generated:
            assert isinstance(name, str)
            assert np.isfinite(score)

    def test_no_further_pretrain_uses_name_overlap_prior(self, tiny_dataset):
        config = CausalLMConfig(further_pretrain=False)
        lm = CausalEntityLM(config).fit(tiny_dataset.corpus, tiny_dataset.entities())
        entities = tiny_dataset.entities()
        shared_prefix = [
            (a, b)
            for i, a in enumerate(entities[:200])
            for b in entities[i + 1 : 200]
            if a.name.split()[0] == b.name.split()[0]
        ]
        if shared_prefix:
            a, b = shared_prefix[0]
            assert lm.entity_affinity(a.entity_id, b.entity_id) > 0.0
