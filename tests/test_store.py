"""Tests for the persistent fitted-expander artifact store (:mod:`repro.store`).

Covers the serialization layer, the store lifecycle (atomic writes, ls/gc/
evict, corruption and version checks), save→load ranking parity for every
registered method, the registry's restore-on-miss / write-through path, and
the warm-serve acceptance criterion (a prefitted store serves its first
query without invoking any ``_fit``).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.base import Expander
from repro.core.resources import SharedResources
from repro.config import ServiceConfig
from repro.dataset.ultrawiki import UltraWikiDataset
from repro.exceptions import (
    ArtifactCorruptError,
    ArtifactNotFoundError,
    ArtifactVersionError,
    PersistenceError,
    StoreError,
)
from repro.kb.corpus import Corpus
from repro.lm.causal_lm import CausalEntityLM
from repro.lm.context_encoder import ContextEncoder
from repro.lm.embeddings import CooccurrenceEmbeddings
from repro.retexpan import RetExpan
from repro.serve import ExpanderRegistry, ExpandOptions, ExpandRequest, ExpansionService
from repro.serve.registry import DEFAULT_FACTORIES
from repro.store import ArtifactStore
from repro.store.serialization import (
    load_count_table,
    load_vector_map,
    read_json_state,
    save_count_table,
    save_vector_map,
    write_json_state,
)
from repro.types import Entity, ExpansionResult, FineGrainedClass, Query, Sentence, UltraFineGrainedClass


class ToyExpander(Expander):
    """A trivially persistable expander for store-mechanics tests."""

    name = "toy"
    supports_persistence = True
    state_version = 1

    def __init__(self):
        super().__init__()
        self.fit_calls = 0
        self.payload: dict | None = None

    def _fit(self, dataset) -> None:
        self.fit_calls += 1
        self.payload = {"entities": dataset.num_entities}

    def _expand(self, query, top_k) -> ExpansionResult:
        scored = [(eid, 1.0 / (1.0 + eid)) for eid in self.dataset.entity_ids()]
        return ExpansionResult.from_scores(query.query_id, scored)

    def _save_state(self, directory: Path) -> None:
        write_json_state(directory / "toy.json", self.payload)

    def _load_state(self, directory: Path, dataset) -> None:
        self.payload = read_json_state(directory / "toy.json")


class NonPersistableExpander(Expander):
    name = "opaque"

    def _expand(self, query, top_k) -> ExpansionResult:
        return ExpansionResult(query_id=query.query_id, ranking=())


def _rankings(expander, queries, top_k=15):
    return [
        [(item.entity_id, item.score) for item in expander.expand(q, top_k).ranking]
        for q in queries
    ]


def _forbid_fits(monkeypatch):
    """Make every expensive substrate fit raise: restores must not train."""

    def boom(*args, **kwargs):  # pragma: no cover - only hit on failure
        raise AssertionError("a restore path invoked an expensive fit")

    monkeypatch.setattr(ContextEncoder, "fit", boom)
    monkeypatch.setattr(CausalEntityLM, "fit", boom)
    monkeypatch.setattr(CooccurrenceEmbeddings, "fit", boom)


class TestSerializationHelpers:
    def test_uniform_vector_map_roundtrip_is_exact(self, tmp_path):
        mapping = {7: np.arange(4.0), 3: np.array([0.5, -1.5, 2.0, 1e-12])}
        save_vector_map(tmp_path, "vecs", mapping)
        restored = load_vector_map(tmp_path, "vecs")
        assert set(restored) == {3, 7}
        for key, value in mapping.items():
            assert np.array_equal(restored[key], value)

    def test_uniform_layout_supports_mmap(self, tmp_path):
        save_vector_map(tmp_path, "vecs", {1: np.ones(3), 2: np.zeros(3)})
        restored = load_vector_map(tmp_path, "vecs", mmap=True)
        assert isinstance(restored[1], np.memmap) or restored[1].base is not None
        assert np.array_equal(np.asarray(restored[1]), np.ones(3))

    def test_ragged_vector_map_roundtrip(self, tmp_path):
        mapping = {0: np.ones(2), 1: np.ones(5)}
        save_vector_map(tmp_path, "ragged", mapping)
        restored = load_vector_map(tmp_path, "ragged")
        assert restored[0].shape == (2,) and restored[1].shape == (5,)

    def test_empty_vector_map_roundtrip(self, tmp_path):
        save_vector_map(tmp_path, "empty", {})
        assert load_vector_map(tmp_path, "empty") == {}

    def test_missing_vector_map_is_corruption(self, tmp_path):
        with pytest.raises(ArtifactCorruptError):
            load_vector_map(tmp_path, "absent")

    def test_count_table_roundtrip_preserves_insertion_order(self, tmp_path):
        table = {"b": {"z": 1, "a": 2}, "a": {"q": 3}}
        save_count_table(tmp_path / "counts.json", table)
        restored = load_count_table(tmp_path / "counts.json")
        assert restored == table
        assert list(restored) == ["b", "a"]
        assert list(restored["b"]) == ["z", "a"]


class TestArtifactStoreLifecycle:
    def test_save_then_restore_roundtrip(self, tiny_dataset, tmp_path):
        store = ArtifactStore(tmp_path)
        fingerprint = tiny_dataset.fingerprint()
        fitted = ToyExpander().fit(tiny_dataset)
        info = store.save("toy", fingerprint, fitted)
        assert info.num_files == 1 and info.total_bytes > 0
        assert store.contains("toy", fingerprint)

        fresh = ToyExpander()
        store.restore("toy", fingerprint, fresh, tiny_dataset)
        assert fresh.fit_calls == 0
        assert fresh.is_fitted
        assert fresh.payload == {"entities": tiny_dataset.num_entities}

    def test_manifest_records_key_and_checksums(self, tiny_dataset, tmp_path):
        store = ArtifactStore(tmp_path)
        fingerprint = tiny_dataset.fingerprint()
        store.save("toy", fingerprint, ToyExpander().fit(tiny_dataset))
        manifest = json.loads(
            (store.artifact_dir("toy", fingerprint) / "manifest.json").read_text()
        )
        assert manifest["method"] == "toy"
        assert manifest["fingerprint"] == fingerprint
        assert manifest["expander_class"] == "ToyExpander"
        assert "numpy" in manifest["library_versions"]
        entry = manifest["files"]["toy.json"]
        assert len(entry["sha256"]) == 64 and entry["bytes"] > 0

    def test_missing_artifact_raises_not_found(self, tiny_dataset, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(ArtifactNotFoundError):
            store.restore("toy", "0" * 16, ToyExpander(), tiny_dataset)

    def test_failed_save_leaves_no_partial_artifact(self, tiny_dataset, tmp_path):
        store = ArtifactStore(tmp_path)
        fitted = ToyExpander().fit(tiny_dataset)
        fitted.payload = object()  # not JSON-serialisable -> save_state raises
        with pytest.raises(TypeError):
            store.save("toy", tiny_dataset.fingerprint(), fitted)
        assert not store.contains("toy", tiny_dataset.fingerprint())
        assert store.ls() == []

    def test_unfitted_or_unsupported_expanders_are_rejected(self, tiny_dataset, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(PersistenceError):
            store.save("toy", "f" * 16, ToyExpander())  # not fitted
        with pytest.raises(PersistenceError):
            store.save("opaque", "f" * 16, NonPersistableExpander().fit(tiny_dataset))

    def test_checksum_tamper_is_detected_as_corruption(self, tiny_dataset, tmp_path):
        store = ArtifactStore(tmp_path)
        fingerprint = tiny_dataset.fingerprint()
        store.save("toy", fingerprint, ToyExpander().fit(tiny_dataset))
        state_file = store.artifact_dir("toy", fingerprint) / "state" / "toy.json"
        state_file.write_text('{"entities": 999999}')
        with pytest.raises(ArtifactCorruptError):
            store.restore("toy", fingerprint, ToyExpander(), tiny_dataset)

    def test_missing_state_file_is_detected_as_corruption(self, tiny_dataset, tmp_path):
        store = ArtifactStore(tmp_path)
        fingerprint = tiny_dataset.fingerprint()
        store.save("toy", fingerprint, ToyExpander().fit(tiny_dataset))
        (store.artifact_dir("toy", fingerprint) / "state" / "toy.json").unlink()
        with pytest.raises(ArtifactCorruptError):
            store.verify("toy", fingerprint)

    def test_format_versions_coexist_instead_of_colliding(self, tiny_dataset, tmp_path):
        """The format version is part of the artifact path: a newer store
        misses (and never destroys) an older store's artifacts."""
        fingerprint = tiny_dataset.fingerprint()
        old = ArtifactStore(tmp_path, format_version=1)
        old.save("toy", fingerprint, ToyExpander().fit(tiny_dataset))
        newer = ArtifactStore(tmp_path, format_version=2)
        with pytest.raises(ArtifactNotFoundError):
            newer.restore("toy", fingerprint, ToyExpander(), tiny_dataset)
        newer.save("toy", fingerprint, ToyExpander().fit(tiny_dataset))
        # Both versions live side by side; each store addresses its own.
        assert old.contains("toy", fingerprint) and newer.contains("toy", fingerprint)
        assert {info.format_version for info in newer.ls()} == {1, 2}
        old.restore("toy", fingerprint, ToyExpander(), tiny_dataset)

    def test_state_version_mismatch_is_rejected(self, tiny_dataset, tmp_path, monkeypatch):
        store = ArtifactStore(tmp_path)
        store.save("toy", tiny_dataset.fingerprint(), ToyExpander().fit(tiny_dataset))
        monkeypatch.setattr(ToyExpander, "state_version", 2)
        with pytest.raises(ArtifactVersionError):
            store.restore("toy", tiny_dataset.fingerprint(), ToyExpander(), tiny_dataset)

    def test_expander_class_mismatch_is_rejected(self, tiny_dataset, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save("toy", tiny_dataset.fingerprint(), ToyExpander().fit(tiny_dataset))
        with pytest.raises(ArtifactVersionError):
            store.restore(
                "toy", tiny_dataset.fingerprint(), RetExpan(), tiny_dataset
            )

    def test_ls_evict_and_stats(self, tiny_dataset, tmp_path):
        store = ArtifactStore(tmp_path)
        fingerprint = tiny_dataset.fingerprint()
        store.save("toy", fingerprint, ToyExpander().fit(tiny_dataset))
        store.save("toy2", fingerprint, ToyExpander().fit(tiny_dataset))
        assert {info.method for info in store.ls()} == {"toy", "toy2"}
        assert store.stats()["artifacts"] == 2
        assert store.evict("toy", fingerprint)
        assert not store.evict("toy", fingerprint)
        assert {info.method for info in store.ls()} == {"toy2"}

    def test_gc_by_fingerprint_and_age(self, tiny_dataset, tmp_path):
        store = ArtifactStore(tmp_path)
        fingerprint = tiny_dataset.fingerprint()
        store.save("toy", fingerprint, ToyExpander().fit(tiny_dataset))
        store.save("toy", "f" * 16, ToyExpander().fit(tiny_dataset))
        removed = store.gc(keep_fingerprints={fingerprint})
        assert [info.fingerprint for info in removed] == ["f" * 16]
        assert store.stats()["artifacts"] == 1
        # Everything is "older than 0 seconds" — age-based GC removes the rest.
        assert len(store.gc(max_age_seconds=-1.0)) == 1
        assert store.ls() == []

    def test_save_replaces_existing_artifact(self, tiny_dataset, tmp_path):
        store = ArtifactStore(tmp_path)
        fingerprint = tiny_dataset.fingerprint()
        first = ToyExpander().fit(tiny_dataset)
        store.save("toy", fingerprint, first)
        second = ToyExpander().fit(tiny_dataset)
        second.payload = {"entities": -1}
        store.save("toy", fingerprint, second)
        fresh = ToyExpander()
        store.restore("toy", fingerprint, fresh, tiny_dataset)
        assert fresh.payload == {"entities": -1}
        assert store.stats()["artifacts"] == 1


@pytest.fixture(scope="module")
def parity_store(tiny_dataset, resources, tmp_path_factory):
    """Every registered method fitted once (shared substrates) and persisted."""
    store = ArtifactStore(tmp_path_factory.mktemp("artifacts"))
    fingerprint = tiny_dataset.fingerprint()
    fitted = {}
    for method, factory in DEFAULT_FACTORIES.items():
        expander = factory(resources).fit(tiny_dataset)
        store.save(method, fingerprint, expander)
        fitted[method] = expander
    return store, fitted


class TestSaveLoadParity:
    """Satellite: a restored copy must rank exactly like the fitted original."""

    @pytest.mark.parametrize("method", sorted(DEFAULT_FACTORIES))
    def test_restored_copy_produces_identical_rankings(
        self, method, parity_store, tiny_dataset, monkeypatch
    ):
        store, fitted = parity_store
        queries = tiny_dataset.queries[:2]
        expected = _rankings(fitted[method], queries)

        fresh = DEFAULT_FACTORIES[method](SharedResources(tiny_dataset))
        _forbid_fits(monkeypatch)
        monkeypatch.setattr(
            type(fresh), "_fit", lambda *a, **k: pytest.fail("restore called _fit")
        )
        store.restore(method, tiny_dataset.fingerprint(), fresh, tiny_dataset)
        assert _rankings(fresh, queries) == expected

    def test_every_registered_method_supports_persistence(self, resources):
        for method, factory in DEFAULT_FACTORIES.items():
            assert factory(resources).supports_persistence, method

    def test_config_mismatch_refuses_to_restore(self, parity_store, tiny_dataset):
        """State fitted under another ablation arm must not restore silently."""
        from repro.config import RetExpanConfig

        store, _ = parity_store
        mismatched = RetExpan(
            config=RetExpanConfig(use_contrastive=True),
            resources=SharedResources(tiny_dataset),
        )
        with pytest.raises(StoreError):
            store.restore("retexpan", tiny_dataset.fingerprint(), mismatched, tiny_dataset)
        assert not mismatched.is_fitted


class TestRegistryStoreIntegration:
    def _registry(self, dataset, store, fit_calls=None):
        fit_calls = fit_calls if fit_calls is not None else []

        def factory(_resources):
            expander = ToyExpander()
            original = expander._fit

            def counting_fit(ds):
                fit_calls.append(1)
                original(ds)

            expander._fit = counting_fit
            return expander

        return ExpanderRegistry(dataset, store=store, factories={"toy": factory})

    def test_fit_writes_through_and_restart_restores(self, tiny_dataset, tmp_path):
        store = ArtifactStore(tmp_path)
        fits: list[int] = []
        registry = self._registry(tiny_dataset, store, fits)
        registry.get("toy")
        stats = registry.stats()
        assert fits == [1]
        assert stats["store"]["write_throughs"] == 1
        assert stats["store"]["restore_misses"] == 1
        assert "toy" in stats["fit_seconds"]

        # "Restart": a fresh registry over the same store restores, no fit.
        restarted_fits: list[int] = []
        restarted = self._registry(tiny_dataset, store, restarted_fits)
        restarted.get("toy")
        stats = restarted.stats()
        assert restarted_fits == []
        assert stats["fits"] == 0
        assert stats["store"]["restore_hits"] == 1
        assert "toy" in stats["restore_seconds"]

    def test_corrupt_artifact_falls_back_to_refit_and_is_repaired(
        self, tiny_dataset, tmp_path
    ):
        store = ArtifactStore(tmp_path)
        self._registry(tiny_dataset, store).get("toy")
        state_file = (
            store.artifact_dir("toy", tiny_dataset.fingerprint()) / "state" / "toy.json"
        )
        state_file.write_text("not json at all")

        fits: list[int] = []
        registry = self._registry(tiny_dataset, store, fits)
        expander = registry.get("toy")
        stats = registry.stats()
        assert fits == [1]  # corruption fell back to a refit
        assert stats["store"]["errors"] == 1
        assert stats["store"]["write_throughs"] == 1  # and was repaired on disk
        assert expander.payload == {"entities": tiny_dataset.num_entities}

        healed_fits: list[int] = []
        healed = self._registry(tiny_dataset, store, healed_fits)
        healed.get("toy")
        assert healed_fits == []  # the rewritten artifact restores again

    def test_version_mismatched_artifact_falls_back_to_refit(
        self, tiny_dataset, tmp_path
    ):
        self._registry(tiny_dataset, ArtifactStore(tmp_path, format_version=1)).get("toy")
        fits: list[int] = []
        registry = self._registry(
            tiny_dataset, ArtifactStore(tmp_path, format_version=2), fits
        )
        registry.get("toy")
        stats = registry.stats()
        assert fits == [1]  # the other version's artifact is a plain miss
        assert stats["store"]["write_throughs"] == 1
        # Crucially the v1 artifact survives: mixed-version workers coexist.
        assert ArtifactStore(tmp_path, format_version=1).contains(
            "toy", tiny_dataset.fingerprint()
        )

    def test_state_version_mismatch_leaves_artifact_in_place(
        self, tiny_dataset, tmp_path, monkeypatch
    ):
        store = ArtifactStore(tmp_path)
        self._registry(tiny_dataset, store).get("toy")
        monkeypatch.setattr(ToyExpander, "state_version", 2)
        fits: list[int] = []
        registry = self._registry(tiny_dataset, store, fits)
        registry.get("toy")
        assert fits == [1]
        # Version-style mismatches refit but never evict the other build's
        # artifact (eviction would let mixed builds thrash each other).
        assert store.contains("toy", tiny_dataset.fingerprint())

    def test_store_failures_never_break_serving(self, tiny_dataset, tmp_path, monkeypatch):
        store = ArtifactStore(tmp_path)
        monkeypatch.setattr(
            ArtifactStore, "save", lambda *a, **k: (_ for _ in ()).throw(StoreError("disk full"))
        )
        registry = self._registry(tiny_dataset, store)
        expander = registry.get("toy")  # fit succeeds although write-through fails
        assert expander.is_fitted
        assert registry.stats()["store"]["errors"] == 1


class TestWarmServeAcceptance:
    """`serve --store DIR` on a prefitted dataset must not invoke any _fit."""

    def test_prefitted_store_serves_first_uncached_query_without_fit(
        self, tiny_dataset, resources, tmp_path, monkeypatch
    ):
        store_dir = tmp_path / "artifacts"
        # Prefit (what `repro fit --store` does).
        prefit = ExpanderRegistry(tiny_dataset, resources=resources, store=ArtifactStore(store_dir))
        prefit.get("retexpan")

        # "Restart": a brand-new service over the same store directory.
        _forbid_fits(monkeypatch)
        monkeypatch.setattr(
            RetExpan, "_fit", lambda *a, **k: pytest.fail("warm serve invoked _fit")
        )
        config = ServiceConfig(batch_wait_ms=0.0, store_dir=str(store_dir))
        with ExpansionService(tiny_dataset, config=config) as service:
            request = ExpandRequest(
                method="retexpan",
                query_id=tiny_dataset.queries[0].query_id,
                options=ExpandOptions(top_k=10, use_cache=False),
            )
            response = service.submit(request)
            assert response.ranking
            stats = service.stats()
        assert stats["registry"]["fits"] == 0
        assert stats["registry"]["store"]["restore_hits"] == 1
        assert stats["store"]["artifacts"] == 1

    def test_stats_expose_fit_wall_time_and_store_counters(self, tiny_dataset, tmp_path):
        """Satellite: /stats carries per-method fit timings + store traffic."""
        config = ServiceConfig(batch_wait_ms=0.0, store_dir=str(tmp_path / "store"))
        factories = {"toy": lambda _res: ToyExpander()}
        with ExpansionService(tiny_dataset, config=config, factories=factories) as service:
            service.submit(
                ExpandRequest(method="toy", query_id=tiny_dataset.queries[0].query_id)
            )
            stats = service.stats()
        registry = stats["registry"]
        assert registry["fit_seconds"]["toy"] >= 0.0
        assert registry["store"] == {
            "enabled": True,
            "restore_hits": 0,
            "restore_misses": 1,
            "write_throughs": 1,
            "errors": 0,
        }
        assert stats["store"]["total_bytes"] > 0


def _container():
    entities = [
        Entity(0, "Alpha", "c", {"a": "x"}),
        Entity(1, "Beta", "c", {"a": "x"}),
        Entity(2, "Gamma", "c", {"a": "y"}),
    ]
    corpus = Corpus([Sentence(0, "Alpha is here.", (0,))])
    fine = [FineGrainedClass("c", "Class C", {"a": ("x", "y")})]
    ultra = [
        UltraFineGrainedClass(
            class_id="c#000",
            fine_class="c",
            positive_assignment={"a": "x"},
            negative_assignment={"a": "y"},
            positive_entity_ids=(0, 1),
            negative_entity_ids=(2,),
        )
    ]
    return UltraWikiDataset(
        entities, corpus, fine, ultra, [Query("c#000/q0", "c#000", (0,), (2,))]
    )


class TestFingerprintMemoization:
    """Satellite: fingerprint() hashes once and caches on the instance."""

    def test_fingerprint_is_computed_once(self, monkeypatch):
        dataset = _container()
        calls = []
        original = UltraWikiDataset._compute_fingerprint

        def counting(self):
            calls.append(1)
            return original(self)

        monkeypatch.setattr(UltraWikiDataset, "_compute_fingerprint", counting)
        first = dataset.fingerprint()
        assert dataset.fingerprint() == first
        assert dataset.fingerprint() == first
        assert calls == [1]

    def test_invalidate_fingerprint_recomputes_after_mutation(self):
        dataset = _container()
        before = dataset.fingerprint()
        dataset.queries.append(Query("c#000/q1", "c#000", (1,), (2,)))
        assert dataset.fingerprint() == before  # memoized: mutation unseen
        dataset.invalidate_fingerprint()
        assert dataset.fingerprint() != before

    def test_distinct_but_equal_datasets_share_fingerprints(self):
        assert _container().fingerprint() == _container().fingerprint()
