"""Hot-path query compute tests (ANN retrieval, batched scoring, gateway cache).

Covers the three legs of the hot-path work:

* the pure-numpy partitioned ANN index (:mod:`repro.retrieval`): build /
  probe / persistence, the MIPS lift for un-normalized vectors, shortlist
  escalation and the exact fallback, and exact-vs-ANN parity through the
  real expanders — ``ann=off`` must stay **bitwise** identical to the
  historical full-vocabulary scan, ``ann=on`` must keep recall@k >= 0.98;
* the corrupt-index self-heal: a checksum-mismatched ``ann_index`` artifact
  is evicted and refitted, never served;
* batched LM conditional-similarity scoring (GenExpan): one memoised batch
  must reproduce the sequential per-pair means bitwise;
* the gateway-side result cache: hit/miss behaviour over real sockets,
  the ``X-Repro-Cache`` header, usage billing of hits, and the tenant /
  fingerprint scoping of keys.
"""

from __future__ import annotations

import json
import urllib.request

import numpy as np
import pytest

from repro.api.options import ExpandOptions
from repro.baselines import CGExpan
from repro.core.resources import SharedResources
from repro.exceptions import ConfigurationError, ServiceError
from repro.retrieval import (
    ANN_AUTO_THRESHOLD,
    CandidateMatrix,
    PartitionedIndex,
    RetrievalProfile,
)
from repro.serve import ExpanderRegistry
from repro.serve.protocol import ExpandRequest
from repro.store import ArtifactStore
from repro.utils.mathx import l2_normalize

from test_cluster import make_gateway, make_worker


# ---------------------------------------------------------------------------
# retrieval profile
# ---------------------------------------------------------------------------


class TestRetrievalProfile:
    def test_defaults_validate(self):
        RetrievalProfile().validate()

    def test_bad_mode_and_nprobe_are_rejected(self):
        with pytest.raises(ConfigurationError):
            RetrievalProfile(ann="sometimes").validate()
        with pytest.raises(ConfigurationError):
            RetrievalProfile(nprobe=0).validate()

    def test_wants_ann_modes(self):
        assert RetrievalProfile(ann="on").wants_ann(10)
        assert not RetrievalProfile(ann="off").wants_ann(10**9)
        auto = RetrievalProfile(ann="auto")
        assert not auto.wants_ann(ANN_AUTO_THRESHOLD - 1)
        assert auto.wants_ann(ANN_AUTO_THRESHOLD)


# ---------------------------------------------------------------------------
# partitioned index
# ---------------------------------------------------------------------------


def _clustered(n: int, dim: int, seed: int = 7) -> np.ndarray:
    """Synthetic clustered vectors with non-uniform norms (MIPS matters)."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(16, dim)) * 4.0
    rows = centers[rng.integers(0, 16, size=n)] + rng.normal(size=(n, dim))
    return rows * rng.uniform(0.5, 2.0, size=(n, 1))  # vary the norms


class TestPartitionedIndex:
    def test_build_is_deterministic(self):
        rows = _clustered(500, 8)
        ids = list(range(500))
        a = PartitionedIndex.build(rows, ids, seed=3)
        b = PartitionedIndex.build(rows, ids, seed=3)
        assert np.array_equal(a.centroids, b.centroids)
        assert np.array_equal(a.order, b.order)

    def test_full_probe_covers_every_row(self):
        rows = _clustered(300, 8)
        index = PartitionedIndex.build(rows, range(300), seed=1)
        probed = index.probe(np.zeros(8), nprobe=index.n_lists)
        assert sorted(probed.tolist()) == list(range(300))

    def test_probe_recall_on_inner_product_top_k(self):
        """Probing a quarter of the lists must keep recall@10 high for
        max-inner-product queries, including over un-normalized rows."""
        rows = _clustered(4000, 16)
        index = PartitionedIndex.build(rows, range(4000), seed=5)
        rng = np.random.default_rng(11)
        recalls = []
        for _ in range(40):
            query = rows[rng.integers(0, 4000, size=5)].mean(axis=0)
            exact = set(np.argsort(-(rows @ query))[:10].tolist())
            probed = set(index.probe(query).tolist())
            recalls.append(len(exact & probed) / 10.0)
        assert float(np.mean(recalls)) >= 0.98

    def test_save_load_round_trip(self, tmp_path):
        rows = _clustered(200, 6)
        index = PartitionedIndex.build(rows, range(200), seed=2)
        index.save(tmp_path)
        loaded = PartitionedIndex.load(tmp_path)
        assert np.array_equal(loaded.ids, index.ids)
        assert np.array_equal(loaded.centroids, index.centroids)
        assert np.array_equal(loaded.order, index.order)
        assert np.array_equal(loaded.offsets, index.offsets)
        assert loaded.extent == index.extent
        query = rows[:3].mean(axis=0)
        assert np.array_equal(loaded.probe(query), index.probe(query))


# ---------------------------------------------------------------------------
# candidate matrix
# ---------------------------------------------------------------------------


def _vector_map(n: int, dim: int, seed: int = 9) -> dict[int, np.ndarray]:
    rng = np.random.default_rng(seed)
    # non-contiguous ids, insertion order deliberately scrambled
    ids = rng.permutation(np.arange(10, 10 + 2 * n, 2)).tolist()
    return {int(eid): rng.normal(size=dim) for eid in ids}


class TestCandidateMatrix:
    def test_rows_gather_is_bitwise_equal_to_stack(self):
        vectors = _vector_map(64, 12)
        matrix = CandidateMatrix.from_vectors(vectors, normalize=True)
        subset = sorted(vectors)[5:25]
        historical = l2_normalize(
            np.stack([vectors[eid] for eid in subset]), axis=1
        )
        gathered = matrix.rows(subset)
        assert gathered.flags["C_CONTIGUOUS"]
        assert np.array_equal(gathered, historical), "gather must be bitwise"

    def test_dim_slice_matches_historical_order(self):
        vectors = _vector_map(32, 10)
        matrix = CandidateMatrix.from_vectors(vectors, dim=4, normalize=True)
        eid = sorted(vectors)[3]
        assert np.array_equal(
            matrix.row(eid), l2_normalize(vectors[eid][:4].reshape(1, -1), axis=1)[0]
        )

    def test_attach_index_drops_mismatched_vocabulary(self):
        vectors = _vector_map(30, 6)
        matrix = CandidateMatrix.from_vectors(vectors)
        stale = PartitionedIndex.build(np.zeros((3, 6)), [1, 2, 3])
        matrix.attach_index(stale)
        assert matrix.index is None
        fresh = PartitionedIndex.build(matrix.matrix, matrix.ids)
        matrix.attach_index(fresh)
        assert matrix.index is fresh

    def test_shortlist_exact_when_off_or_unindexed(self):
        vectors = _vector_map(30, 6)
        matrix = CandidateMatrix.from_vectors(vectors)
        candidates = matrix.ids[:20]
        assert (
            matrix.shortlist(candidates, np.zeros(6), RetrievalProfile(ann="on"))
            is candidates
        ), "no index: the exact candidate list passes through untouched"
        matrix.attach_index(PartitionedIndex.build(matrix.matrix, matrix.ids))
        assert (
            matrix.shortlist(candidates, np.zeros(6), RetrievalProfile(ann="off"))
            is candidates
        )

    def test_shortlist_escalates_nprobe_until_required_is_met(self):
        vectors = _vector_map(400, 8)
        matrix = CandidateMatrix.from_vectors(vectors)
        matrix.attach_index(
            PartitionedIndex.build(matrix.matrix, matrix.ids, n_lists=32, seed=4)
        )
        events = []
        shortlist = matrix.shortlist(
            list(matrix.ids),
            np.zeros(8),
            RetrievalProfile(ann="on", nprobe=1),
            required=350,
            telemetry=lambda p, s, f: events.append((p, s, f)),
        )
        assert len(shortlist) >= 350
        (probes, size, fallback) = events[0]
        assert probes > 1, "nprobe=1 cannot cover 350 rows; it must escalate"
        assert not fallback

    def test_shortlist_falls_back_to_exact_when_index_cannot_fill(self):
        vectors = _vector_map(50, 8)
        matrix = CandidateMatrix.from_vectors(vectors)
        matrix.attach_index(PartitionedIndex.build(matrix.matrix, matrix.ids))
        # candidates outside the indexed vocabulary (vocabulary drift)
        candidates = [99999, 99998, 99997]
        events = []
        shortlist = matrix.shortlist(
            candidates,
            np.zeros(8),
            RetrievalProfile(ann="on"),
            required=2,
            telemetry=lambda p, s, f: events.append((p, s, f)),
        )
        assert shortlist == candidates
        assert events[0][2] is True, "must be counted as an exact fallback"


# ---------------------------------------------------------------------------
# exact-vs-ANN parity through a real expander
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def fitted_cgexpan(tiny_dataset):
    expander = CGExpan(resources=SharedResources(tiny_dataset))
    expander.fit(tiny_dataset)
    return expander


class TestExpanderParity:
    def test_ann_off_is_bitwise_identical_to_default(self, fitted_cgexpan, tiny_dataset):
        """``ann=off`` and the default profile (auto, under the threshold)
        must both take the exact path and agree on ids AND raw scores."""
        for query in tiny_dataset.queries[:5]:
            default = fitted_cgexpan.expand(query, top_k=20)
            off = fitted_cgexpan.expand(
                query, top_k=20, retrieval=RetrievalProfile(ann="off")
            )
            assert [(i.entity_id, i.score) for i in default.ranking] == [
                (i.entity_id, i.score) for i in off.ranking
            ]

    def test_ann_on_keeps_recall(self, fitted_cgexpan, tiny_dataset):
        """Forced probing must keep recall@k >= 0.98 against the exact
        ranking at the default nprobe (with shortlist escalation)."""
        recalls = []
        k = 20
        for query in tiny_dataset.queries[:10]:
            exact = set(
                fitted_cgexpan.expand(
                    query, top_k=k, retrieval=RetrievalProfile(ann="off")
                ).entity_ids()
            )
            probed = set(
                fitted_cgexpan.expand(
                    query, top_k=k, retrieval=RetrievalProfile(ann="on")
                ).entity_ids()
            )
            recalls.append(len(exact & probed) / max(1, len(exact)))
        assert float(np.mean(recalls)) >= 0.98

    def test_ann_queries_are_counted(self, fitted_cgexpan, tiny_dataset):
        provider = fitted_cgexpan._resources.provider
        before = provider.stats()["ann"]["queries"]
        fitted_cgexpan.expand(
            tiny_dataset.queries[0], top_k=10, retrieval=RetrievalProfile(ann="on")
        )
        after = provider.stats()["ann"]
        assert after["queries"] == before + 1
        assert after["probes"] >= 1


class TestCorruptIndexSelfHeal:
    def test_checksum_mismatch_refits_instead_of_serving(
        self, tiny_dataset, tmp_path
    ):
        """Flipping bytes in the persisted ANN index must never produce a
        wrong ranking: the restore detects the checksum mismatch, evicts
        the artifact, refits, and republishes a good copy."""
        store = ArtifactStore(tmp_path)
        registry = ExpanderRegistry(tiny_dataset, store=store)
        registry.get("cgexpan")
        info = next(s for s in store.ls_substrates() if s.kind == "ann_index")
        payload = (
            store.substrate_dir(info.kind, info.content_hash)
            / "state"
            / "ann_centroids.npy"
        )
        payload.write_bytes(b"\x00corrupt")
        fresh = ExpanderRegistry(tiny_dataset, store=store)
        expander = fresh.get("cgexpan")
        result = expander.expand(
            tiny_dataset.queries[0], top_k=10, retrieval=RetrievalProfile(ann="on")
        )
        assert result.ranking, "self-healed expander must serve"
        healed = next(s for s in store.ls_substrates() if s.kind == "ann_index")
        assert (
            store.substrate_dir(healed.kind, healed.content_hash)
            / "state"
            / "ann_centroids.npy"
        ).stat().st_size > len(b"\x00corrupt"), "a good copy was republished"


# ---------------------------------------------------------------------------
# batched LM conditional similarity (GenExpan)
# ---------------------------------------------------------------------------


class TestBatchedConditionalSimilarity:
    @pytest.fixture(scope="class")
    def lm(self, resources):
        return resources.causal_lm(further_pretrain=False)

    def test_batch_matches_sequential_bitwise(self, lm, tiny_dataset):
        ids = tiny_dataset.entity_ids()
        generated, seeds = ids[:25], ids[25:29]
        batched = lm.conditional_similarity_batch(generated, seeds)
        for gid in generated:
            sequential = sum(
                lm.conditional_similarity(gid, sid) for sid in seeds
            ) / len(seeds)
            assert batched[gid] == sequential, f"entity {gid} diverged"

    def test_unknown_entities_and_empty_seeds(self, lm, tiny_dataset):
        ids = tiny_dataset.entity_ids()
        assert lm.conditional_similarity_batch([ids[0]], []) == {ids[0]: 0.0}
        batched = lm.conditional_similarity_batch([10**9], ids[:2])
        assert batched[10**9] == 0.0


# ---------------------------------------------------------------------------
# options / request wire shape
# ---------------------------------------------------------------------------


class TestRetrievalOptionsWireShape:
    def test_round_trip(self):
        options = ExpandOptions.from_dict({"ann": "on", "nprobe": 4})
        assert (options.ann, options.nprobe) == ("on", 4)
        assert ExpandOptions.from_dict(options.to_dict()) == options

    def test_defaults_are_auto(self):
        options = ExpandOptions.from_dict({})
        assert (options.ann, options.nprobe) == ("auto", None)

    def test_bad_values_are_rejected(self):
        with pytest.raises(ServiceError):
            ExpandOptions.from_dict({"ann": "always"})
        with pytest.raises(ServiceError):
            ExpandOptions.from_dict({"nprobe": 0})
        with pytest.raises(ServiceError):
            ExpandOptions.from_dict({"nprobe": True})

    def test_retrieval_knobs_change_the_cache_key(self):
        base = ExpandRequest(method="stub", query_id="q1")
        on = ExpandRequest(
            method="stub", query_id="q1", options=ExpandOptions(ann="on")
        )
        probed = ExpandRequest(
            method="stub", query_id="q1", options=ExpandOptions(ann="on", nprobe=2)
        )
        keys = {base.cache_key(10), on.cache_key(10), probed.cache_key(10)}
        assert len(keys) == 3, "ann/nprobe change the ranking, so they key"

    def test_retrieval_profile_view(self):
        profile = ExpandOptions(ann="on", nprobe=3).retrieval_profile()
        assert isinstance(profile, RetrievalProfile)
        assert (profile.ann, profile.nprobe) == ("on", 3)


# ---------------------------------------------------------------------------
# gateway result cache
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def cached_cluster(tiny_dataset):
    servers = [make_worker(tiny_dataset) for _ in range(2)]
    gateway = make_gateway(
        tiny_dataset, servers, gateway_cache_capacity=64,
        gateway_cache_ttl_seconds=300.0,
    )
    yield gateway, servers
    gateway.shutdown()
    for server in servers:
        server.shutdown()


def _post(gateway, payload):
    request = urllib.request.Request(
        gateway.url + "/v1/expand",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read()), dict(response.headers)


class TestGatewayCache:
    def test_repeat_request_is_served_from_the_gateway(
        self, cached_cluster, tiny_dataset
    ):
        gateway, _servers = cached_cluster
        body = {
            "method": "stuba",
            "query_id": tiny_dataset.queries[0].query_id,
            "options": {"top_k": 7},
        }
        status, first, headers = _post(gateway, body)
        assert status == 200
        assert "X-Repro-Cache" not in headers, "first request is a miss"
        assert headers.get("X-Repro-Worker")
        status, second, headers = _post(gateway, body)
        assert status == 200
        assert headers.get("X-Repro-Cache") == "gateway"
        assert "X-Repro-Worker" not in headers, "a hit never leaves the gateway"
        assert second["data"]["cached"] is True
        assert second["data"]["ranking"] == first["data"]["ranking"]
        stats = gateway.stats()["cache"]
        assert stats["hits"] >= 1

    def test_hits_are_billed_at_lookup_cost(self, cached_cluster, tiny_dataset):
        gateway, _servers = cached_cluster
        body = {
            "method": "stubb",
            "query_id": tiny_dataset.queries[1].query_id,
            "options": {"top_k": 5},
        }
        _post(gateway, body)
        before = gateway.usage.summary()["tenants"]
        _post(gateway, body)
        after = gateway.usage.summary()["tenants"]
        hits_before = sum(b["cache_hits"] for b in before.values()) if before else 0
        hits_after = sum(b["cache_hits"] for b in after.values())
        assert hits_after == hits_before + 1

    def test_use_cache_false_bypasses_the_gateway_cache(
        self, cached_cluster, tiny_dataset
    ):
        gateway, _servers = cached_cluster
        body = {
            "method": "stubc",
            "query_id": tiny_dataset.queries[2].query_id,
            "options": {"top_k": 5, "use_cache": False},
        }
        for _ in range(2):
            status, _payload, headers = _post(gateway, body)
            assert status == 200
            assert "X-Repro-Cache" not in headers
            assert headers.get("X-Repro-Worker")

    def test_different_retrieval_knobs_never_collide(
        self, cached_cluster, tiny_dataset
    ):
        gateway, _servers = cached_cluster
        base = {
            "method": "stubd",
            "query_id": tiny_dataset.queries[3].query_id,
            "options": {"top_k": 5},
        }
        _post(gateway, base)
        probed = dict(base, options={"top_k": 5, "ann": "on"})
        status, _payload, headers = _post(gateway, probed)
        assert status == 200
        assert "X-Repro-Cache" not in headers, "different ann mode is a miss"

    def test_key_scopes_tenant_and_fingerprint(self, cached_cluster, tiny_dataset):
        """Unit-level: the key embeds the resolved tenant and the dataset
        fingerprint, so hits can never cross either boundary."""
        from repro.obs import tenant_scope

        gateway, _servers = cached_cluster
        payload = {
            "method": "stuba",
            "query_id": tiny_dataset.queries[0].query_id,
            "options": {"top_k": 7},
        }
        anonymous = gateway._expand_cache_key(payload)
        with tenant_scope("acme"):
            tenant_key = gateway._expand_cache_key(payload)
        assert anonymous != tenant_key
        original = gateway.fingerprint
        try:
            gateway.fingerprint = "other-dataset"
            assert gateway._expand_cache_key(payload) != anonymous
        finally:
            gateway.fingerprint = original

    def test_uncacheable_payloads_return_no_key(self, cached_cluster):
        gateway, _servers = cached_cluster
        assert gateway._expand_cache_key({"method": ""}) is None
        assert (
            gateway._expand_cache_key(
                {"method": "stuba", "query_id": "q", "options": {"use_cache": False}}
            )
            is None
        )
        assert (
            gateway._expand_cache_key(
                {
                    "method": "stuba",
                    "query_id": "q",
                    "options": {"include_timings": True},
                }
            )
            is None
        )

    def test_cache_disabled_by_default(self, tiny_dataset):
        from repro.cluster import ClusterGateway

        gateway = ClusterGateway(
            [("w0", "http://127.0.0.1:1")], fingerprint="fp", port=0
        ).start()
        try:
            assert gateway.cache is None
            assert "cache" not in gateway.stats()
        finally:
            gateway.shutdown()
