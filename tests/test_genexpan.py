"""Tests for the GenExpan framework: prompts, chain-of-thought, iterative
generation, and the end-to-end pipeline."""

import pytest

from repro.config import GenExpanConfig
from repro.eval.evaluator import Evaluator
from repro.exceptions import ExpansionError
from repro.genexpan.cot import ChainOfThoughtReasoner, ConceptMatcher
from repro.genexpan.generation import IterativeGenerator
from repro.genexpan.pipeline import GenExpan
from repro.genexpan.prompts import (
    SIMILARITY_TEMPLATE,
    build_cot_prompt,
    build_generation_prompt,
    build_similarity_prompt,
)


class TestPrompts:
    def test_plain_generation_prompt_lists_entities(self):
        prompt = build_generation_prompt(["A", "B", "C"])
        assert "A, B, C" in prompt
        assert prompt.endswith("is")

    def test_cot_generation_prompt_includes_reasoning(self):
        prompt = build_generation_prompt(
            ["A", "B"],
            class_name="Mobile phone brands",
            positive_attributes=["uses Android"],
            negative_attributes=["made in Asia"],
        )
        assert "Mobile phone brands" in prompt
        assert "uses Android" in prompt
        assert "made in Asia" in prompt

    def test_cot_prompt_mentions_both_seed_groups(self):
        prompt = build_cot_prompt(["A"], ["B"])
        assert "A" in prompt and "B" in prompt

    def test_similarity_prompt_template(self):
        assert build_similarity_prompt("Vexo") == SIMILARITY_TEMPLATE.format(entity="Vexo")


class TestConceptMatcher:
    def test_scores_in_unit_interval(self, tiny_dataset):
        matcher = ConceptMatcher(tiny_dataset)
        entity = tiny_dataset.entities()[0]
        score = matcher.score(entity.entity_id, "located on the African continent")
        assert 0.0 <= score <= 1.0

    def test_empty_phrase_scores_zero(self, tiny_dataset):
        matcher = ConceptMatcher(tiny_dataset)
        assert matcher.score(tiny_dataset.entities()[0].entity_id, "the of a") == 0.0

    def test_matching_attribute_scores_higher(self, tiny_dataset):
        matcher = ConceptMatcher(tiny_dataset)
        countries = tiny_dataset.entities_of_fine_class("countries")
        africa = [e for e in countries if e.attributes.get("continent") == "africa"][:10]
        europe = [e for e in countries if e.attributes.get("continent") == "europe"][:10]
        phrase = "is located on the African continent"
        africa_scores = [matcher.score(e.entity_id, phrase) for e in africa]
        europe_scores = [matcher.score(e.entity_id, phrase) for e in europe]
        assert sum(africa_scores) / len(africa_scores) > sum(europe_scores) / len(europe_scores)

    def test_mean_score_empty_list(self, tiny_dataset):
        matcher = ConceptMatcher(tiny_dataset)
        assert matcher.mean_score(tiny_dataset.entities()[0].entity_id, []) == 0.0


class TestChainOfThoughtReasoner:
    def test_none_mode_returns_empty(self, tiny_dataset, resources, sample_query):
        reasoner = ChainOfThoughtReasoner(tiny_dataset, resources.oracle(), mode="none")
        assert reasoner.reason(sample_query).is_empty()

    def test_gt_class_mode_returns_schema_description(self, tiny_dataset, resources, sample_query):
        reasoner = ChainOfThoughtReasoner(tiny_dataset, resources.oracle(), mode="gt_class")
        info = reasoner.reason(sample_query)
        assert info.class_name
        assert not info.positive_phrases

    def test_gt_pos_phrases_match_assignment(self, tiny_dataset, resources, sample_query):
        reasoner = ChainOfThoughtReasoner(
            tiny_dataset, resources.oracle(), mode="gen_class_gt_pos"
        )
        info = reasoner.reason(sample_query)
        ultra = tiny_dataset.ultra_class(sample_query.class_id)
        assert len(info.positive_phrases) == len(ultra.positive_assignment)
        assert not info.negative_phrases

    def test_gt_neg_phrases_present_in_full_mode(self, tiny_dataset, resources, sample_query):
        reasoner = ChainOfThoughtReasoner(
            tiny_dataset, resources.oracle(), mode="gen_class_gt_pos_gt_neg"
        )
        info = reasoner.reason(sample_query)
        assert info.positive_phrases
        assert info.negative_phrases

    def test_generated_modes_run_for_all_queries(self, tiny_dataset, resources):
        reasoner = ChainOfThoughtReasoner(
            tiny_dataset, resources.oracle(), mode="gen_class_gen_pos_gen_neg"
        )
        for query in tiny_dataset.queries[:10]:
            info = reasoner.reason(query)
            assert info.class_name

    def test_unknown_mode_raises(self, tiny_dataset, resources):
        with pytest.raises(ExpansionError):
            ChainOfThoughtReasoner(tiny_dataset, resources.oracle(), mode="gen_class_bogus")


class TestIterativeGenerator:
    def test_invalid_parameters_rejected(self, tiny_dataset, resources):
        with pytest.raises(ExpansionError):
            IterativeGenerator(
                tiny_dataset,
                resources.causal_lm(True),
                resources.prefix_tree(),
                num_iterations=0,
            )

    def test_run_produces_ranked_valid_entities(self, tiny_dataset, resources, sample_query):
        generator = IterativeGenerator(
            tiny_dataset,
            resources.causal_lm(True),
            resources.prefix_tree(),
            num_iterations=2,
            beam_width=8,
            selected_per_iteration=8,
        )
        ranked = generator.run(sample_query)
        assert ranked
        ids = [eid for eid, _ in ranked]
        assert len(ids) == len(set(ids))
        seeds = set(sample_query.positive_seed_ids) | set(sample_query.negative_seed_ids)
        assert not (set(ids) & seeds)
        scores = [score for _, score in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_more_iterations_find_at_least_as_many(self, tiny_dataset, resources, sample_query):
        short = IterativeGenerator(
            tiny_dataset, resources.causal_lm(True), resources.prefix_tree(),
            num_iterations=1, beam_width=8, selected_per_iteration=8,
        ).run(sample_query)
        long = IterativeGenerator(
            tiny_dataset, resources.causal_lm(True), resources.prefix_tree(),
            num_iterations=3, beam_width=8, selected_per_iteration=8,
        ).run(sample_query)
        assert len(long) >= len(short)


@pytest.fixture(scope="module")
def genexpan(tiny_dataset, resources):
    config = GenExpanConfig(num_iterations=2, beam_width=10, selected_per_iteration=10)
    return GenExpan(config, resources=resources).fit(tiny_dataset)


class TestGenExpanPipeline:
    def test_name_reflects_configuration(self):
        assert GenExpan().name == "GenExpan"
        assert GenExpan(GenExpanConfig(cot_mode="gen_class")).name == "GenExpan + CoT"

    def test_unfitted_expand_raises(self, sample_query):
        with pytest.raises(ExpansionError):
            GenExpan().expand(sample_query)

    def test_expansion_is_constrained_to_candidates(self, genexpan, tiny_dataset, sample_query):
        result = genexpan.expand(sample_query, top_k=40)
        assert result.ranking
        for entity_id in result.entity_ids():
            assert entity_id in set(tiny_dataset.entity_ids())

    def test_expansion_excludes_seeds(self, genexpan, sample_query):
        result = genexpan.expand(sample_query, top_k=40)
        seeds = set(sample_query.positive_seed_ids) | set(sample_query.negative_seed_ids)
        assert not (set(result.entity_ids()) & seeds)

    def test_expansion_mostly_same_fine_class(self, genexpan, tiny_dataset, sample_query):
        fine_class = tiny_dataset.ultra_class(sample_query.class_id).fine_class
        result = genexpan.expand(sample_query, top_k=15)
        same = sum(
            1
            for eid in result.entity_ids()
            if tiny_dataset.entity(eid).fine_class == fine_class
        )
        assert same >= len(result.ranking) // 2

    def test_cot_pipeline_runs(self, tiny_dataset, resources, sample_query):
        config = GenExpanConfig(
            num_iterations=2, beam_width=10, selected_per_iteration=10, cot_mode="gen_class_gen_pos"
        )
        expander = GenExpan(config, resources=resources).fit(tiny_dataset)
        assert expander.reasoner is not None
        result = expander.expand(sample_query, top_k=20)
        assert result.ranking

    def test_unconstrained_ablation_degrades_recall(self, tiny_dataset, resources):
        """Dropping the prefix constraint should find far fewer valid entities."""
        evaluator = Evaluator(tiny_dataset, max_queries=4)
        constrained = GenExpan(
            GenExpanConfig(num_iterations=2, beam_width=10, selected_per_iteration=10),
            resources=resources,
        ).fit(tiny_dataset)
        unconstrained = GenExpan(
            GenExpanConfig(
                num_iterations=2, beam_width=10, selected_per_iteration=10,
                use_prefix_constraint=False,
            ),
            resources=resources,
            name="unconstrained",
        ).fit(tiny_dataset)
        constrained_report = evaluator.evaluate(constrained)
        unconstrained_report = evaluator.evaluate(unconstrained)
        assert constrained_report.average("pos") > unconstrained_report.average("pos")

    def test_results_are_deterministic(self, genexpan, sample_query):
        first = genexpan.expand(sample_query, top_k=20).entity_ids()
        second = genexpan.expand(sample_query, top_k=20).entity_ids()
        assert first == second
