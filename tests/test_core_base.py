"""Tests for the expander base class contract."""

import pytest

from repro.core.base import Expander
from repro.exceptions import ExpansionError
from repro.types import ExpansionResult, Query


class DummyExpander(Expander):
    """Ranks every candidate by descending entity id (including seeds)."""

    name = "Dummy"

    def _expand(self, query, top_k):
        scored = [(eid, float(eid)) for eid in self.dataset.entity_ids()]
        return ExpansionResult.from_scores(query.query_id, scored)


class TestExpanderContract:
    def test_unfitted_expander_raises(self, tiny_dataset):
        expander = DummyExpander()
        with pytest.raises(ExpansionError):
            expander.expand(tiny_dataset.queries[0])

    def test_fit_returns_self(self, tiny_dataset):
        expander = DummyExpander()
        assert expander.fit(tiny_dataset) is expander
        assert expander.is_fitted

    def test_expand_filters_seed_entities(self, tiny_dataset, sample_query):
        expander = DummyExpander().fit(tiny_dataset)
        result = expander.expand(sample_query, top_k=tiny_dataset.num_entities)
        returned = set(result.entity_ids())
        seeds = set(sample_query.positive_seed_ids) | set(sample_query.negative_seed_ids)
        assert not (returned & seeds)

    def test_expand_respects_top_k(self, tiny_dataset, sample_query):
        expander = DummyExpander().fit(tiny_dataset)
        assert len(expander.expand(sample_query, top_k=7).ranking) == 7

    def test_non_positive_top_k_rejected(self, tiny_dataset, sample_query):
        expander = DummyExpander().fit(tiny_dataset)
        with pytest.raises(ExpansionError):
            expander.expand(sample_query, top_k=0)

    def test_unknown_query_class_rejected(self, tiny_dataset):
        expander = DummyExpander().fit(tiny_dataset)
        rogue = Query("rogue", "missing-class", (1,), (2,))
        with pytest.raises(ExpansionError):
            expander.expand(rogue)

    def test_candidate_ids_exclude_seeds(self, tiny_dataset, sample_query):
        expander = DummyExpander().fit(tiny_dataset)
        candidates = expander.candidate_ids(sample_query)
        seeds = set(sample_query.positive_seed_ids) | set(sample_query.negative_seed_ids)
        assert not (set(candidates) & seeds)
        assert len(candidates) == tiny_dataset.num_entities - len(seeds)


class TestSharedResources:
    def test_resources_are_cached(self, resources):
        assert resources.cooccurrence_embeddings() is resources.cooccurrence_embeddings()
        assert resources.context_encoder(True) is resources.context_encoder(True)
        assert resources.entity_representations(True) is resources.entity_representations(True)
        assert resources.causal_lm(True) is resources.causal_lm(True)
        assert resources.oracle() is resources.oracle()
        assert resources.prefix_tree() is resources.prefix_tree()

    def test_trained_and_untrained_encoders_differ(self, resources):
        assert resources.context_encoder(True) is not resources.context_encoder(False)

    def test_representations_cover_all_entities(self, resources, tiny_dataset):
        reps = resources.entity_representations(True)
        assert len(reps.hidden) == tiny_dataset.num_entities

    def test_prefix_tree_contains_all_entities(self, resources, tiny_dataset):
        assert len(resources.prefix_tree()) == tiny_dataset.num_entities

    def test_causal_lm_variants_cached_separately(self, resources):
        assert resources.causal_lm(True) is not resources.causal_lm(False)
