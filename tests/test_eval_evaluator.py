"""Tests for the evaluator and report aggregation."""

import pytest

from repro.core.base import Expander
from repro.eval.evaluator import Evaluator
from repro.exceptions import EvaluationError
from repro.types import ExpansionResult


class OracleRanker(Expander):
    """Ranks pure ground-truth positives (P − N) first, then unrelated, then negatives."""

    name = "OracleRanker"

    def _expand(self, query, top_k):
        negatives = sorted(self.dataset.negative_targets(query))
        positives = sorted(
            self.dataset.positive_targets(query) - self.dataset.negative_targets(query)
        )
        rest = [
            eid
            for eid in self.dataset.entity_ids()
            if eid not in set(positives) | set(negatives)
        ]
        ordered = positives + rest + negatives
        scored = [(eid, float(len(ordered) - i)) for i, eid in enumerate(ordered)]
        return ExpansionResult.from_scores(query.query_id, scored)


class AntiRanker(Expander):
    """Ranks ground-truth negatives first — the worst possible behaviour."""

    name = "AntiRanker"

    def _expand(self, query, top_k):
        negatives = sorted(self.dataset.negative_targets(query))
        rest = [eid for eid in self.dataset.entity_ids() if eid not in set(negatives)]
        ordered = negatives + rest
        scored = [(eid, float(len(ordered) - i)) for i, eid in enumerate(ordered)]
        return ExpansionResult.from_scores(query.query_id, scored)


class TestEvaluatorSelection:
    def test_all_queries_by_default(self, tiny_dataset):
        assert len(Evaluator(tiny_dataset).queries) == len(tiny_dataset.queries)

    def test_max_queries_subsamples(self, tiny_dataset):
        assert len(Evaluator(tiny_dataset, max_queries=10).queries) == 10

    def test_subsample_is_deterministic(self, tiny_dataset):
        a = [q.query_id for q in Evaluator(tiny_dataset, max_queries=10, seed=3).queries]
        b = [q.query_id for q in Evaluator(tiny_dataset, max_queries=10, seed=3).queries]
        assert a == b

    def test_subsample_is_stratified_over_fine_classes(self, tiny_dataset):
        evaluator = Evaluator(tiny_dataset, max_queries=8)
        fine_classes = {
            tiny_dataset.ultra_class(q.class_id).fine_class for q in evaluator.queries
        }
        assert len(fine_classes) == min(8, len(tiny_dataset.fine_classes))

    def test_query_filter_applied(self, tiny_dataset):
        target_class = tiny_dataset.queries[0].class_id
        evaluator = Evaluator(
            tiny_dataset, query_filter=lambda q: q.class_id == target_class
        )
        assert all(q.class_id == target_class for q in evaluator.queries)

    def test_empty_selection_rejected(self, tiny_dataset):
        with pytest.raises(EvaluationError):
            Evaluator(tiny_dataset, query_filter=lambda q: False)


class TestEvaluation:
    def test_oracle_ranker_scores_high(self, tiny_dataset):
        evaluator = Evaluator(tiny_dataset, max_queries=10)
        report = evaluator.evaluate(OracleRanker().fit(tiny_dataset))
        # P and N can overlap, so even this near-ideal ranker cannot reach 100
        # on PosMAP while keeping NegMAP at 0.
        assert report.value("pos", "map", 10) > 85.0
        assert report.value("neg", "map", 10) < 5.0
        assert report.value("comb", "map", 10) > 88.0

    def test_anti_ranker_scores_low(self, tiny_dataset):
        evaluator = Evaluator(tiny_dataset, max_queries=10)
        report = evaluator.evaluate(AntiRanker().fit(tiny_dataset))
        assert report.value("neg", "map", 10) > 90.0
        assert report.value("comb", "map", 10) < 40.0

    def test_oracle_beats_anti_ranker(self, tiny_dataset):
        evaluator = Evaluator(tiny_dataset, max_queries=10)
        oracle = evaluator.evaluate(OracleRanker().fit(tiny_dataset))
        anti = evaluator.evaluate(AntiRanker().fit(tiny_dataset))
        assert oracle.average("comb") > anti.average("comb")

    def test_report_has_per_query_breakdown(self, tiny_dataset):
        evaluator = Evaluator(tiny_dataset, max_queries=5)
        report = evaluator.evaluate(OracleRanker().fit(tiny_dataset))
        assert report.num_queries == 5
        assert len(report.per_query) == 5

    def test_evaluate_fits_unfitted_expander(self, tiny_dataset):
        evaluator = Evaluator(tiny_dataset, max_queries=3)
        report = evaluator.evaluate(OracleRanker())
        assert report.num_queries == 3

    def test_evaluate_many(self, tiny_dataset):
        evaluator = Evaluator(tiny_dataset, max_queries=3)
        reports = evaluator.evaluate_many(
            [OracleRanker().fit(tiny_dataset), AntiRanker().fit(tiny_dataset)]
        )
        assert set(reports) == {"OracleRanker", "AntiRanker"}

    def test_split_reports_partition_queries(self, tiny_dataset):
        evaluator = Evaluator(tiny_dataset, max_queries=12)
        grouped = evaluator.split_reports(
            OracleRanker().fit(tiny_dataset),
            lambda q: tiny_dataset.ultra_class(q.class_id).fine_class,
        )
        assert sum(report.num_queries for report in grouped.values()) == 12

    def test_report_to_dict(self, tiny_dataset):
        evaluator = Evaluator(tiny_dataset, max_queries=3)
        payload = evaluator.evaluate(OracleRanker().fit(tiny_dataset)).to_dict()
        assert payload["method"] == "OracleRanker"
        assert payload["num_queries"] == 3
