"""Tests for the seeded randomness helpers."""

import numpy as np
import pytest

from repro.utils.rng import RandomState, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_different_labels_differ(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_different_base_seeds_differ(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_order_matters(self):
        assert derive_seed(7, "a", "b") != derive_seed(7, "b", "a")

    def test_returns_32bit_range(self):
        seed = derive_seed(123456789, "component", 99)
        assert 0 <= seed < 2**32

    def test_accepts_arbitrary_label_types(self):
        assert isinstance(derive_seed(1, ("x", 2), 3.5, None), int)


class TestRandomState:
    def test_same_seed_same_stream(self):
        a = RandomState(5)
        b = RandomState(5)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_seed_different_stream(self):
        assert RandomState(1).random() != RandomState(2).random()

    def test_child_is_deterministic(self):
        a = RandomState(3).child("x", 1)
        b = RandomState(3).child("x", 1)
        assert a.random() == b.random()

    def test_child_differs_from_parent(self):
        parent = RandomState(3)
        child = parent.child("x")
        assert parent.seed != child.seed

    def test_integers_within_bounds(self):
        rng = RandomState(0)
        values = [rng.integers(0, 10) for _ in range(100)]
        assert all(0 <= v < 10 for v in values)

    def test_uniform_within_bounds(self):
        rng = RandomState(0)
        values = [rng.uniform(2.0, 3.0) for _ in range(100)]
        assert all(2.0 <= v <= 3.0 for v in values)

    def test_sample_returns_distinct_items(self):
        rng = RandomState(0)
        sample = rng.sample(range(20), 10)
        assert len(sample) == 10
        assert len(set(sample)) == 10

    def test_sample_too_many_raises(self):
        with pytest.raises(ValueError):
            RandomState(0).sample([1, 2, 3], 4)

    def test_shuffle_preserves_elements(self):
        rng = RandomState(0)
        original = list(range(30))
        shuffled = rng.shuffle(original)
        assert sorted(shuffled) == original
        assert original == list(range(30))  # input untouched

    def test_normal_shape(self):
        rng = RandomState(0)
        out = rng.normal(0.0, 1.0, size=(3, 4))
        assert out.shape == (3, 4)

    def test_choice_with_probabilities(self):
        rng = RandomState(0)
        picks = rng.choice([0, 1], size=200, p=[0.0, 1.0])
        assert np.all(np.asarray(picks) == 1)

    def test_generator_property(self):
        assert isinstance(RandomState(0).generator, np.random.Generator)
