"""Tests for segmented re-ranking."""

import pytest

from repro.core.rerank import mean_similarity_scorer, segmented_rerank
from repro.exceptions import ExpansionError
from repro.types import ExpansionResult, RankedEntity


def make_result(entity_ids):
    ranking = tuple(
        RankedEntity(entity_id, 1.0 - index * 0.01) for index, entity_id in enumerate(entity_ids)
    )
    return ExpansionResult(query_id="q", ranking=ranking)


class TestSegmentedRerank:
    def test_invalid_segment_length_rejected(self):
        with pytest.raises(ExpansionError):
            segmented_rerank(make_result([1, 2]), lambda e: 0.0, segment_length=0)

    def test_preserves_entity_multiset(self):
        result = make_result(list(range(23)))
        reranked = segmented_rerank(result, lambda e: -e, segment_length=5)
        assert sorted(reranked.entity_ids()) == sorted(result.entity_ids())
        assert len(reranked.ranking) == len(result.ranking)

    def test_within_segment_sorted_by_negative_score(self):
        result = make_result([10, 11, 12, 13, 20, 21, 22, 23])
        neg_scores = {10: 0.9, 11: 0.1, 12: 0.5, 13: 0.2, 20: 0.0, 21: 0.7, 22: 0.3, 23: 0.6}
        reranked = segmented_rerank(result, lambda e: neg_scores[e], segment_length=4)
        assert reranked.entity_ids()[:4] == [11, 13, 12, 10]
        assert reranked.entity_ids()[4:] == [20, 22, 23, 21]

    def test_entities_never_cross_segment_boundaries(self):
        result = make_result(list(range(30)))
        reranked = segmented_rerank(result, lambda e: -e, segment_length=10)
        for segment_index in range(3):
            original = set(result.entity_ids()[segment_index * 10 : (segment_index + 1) * 10])
            updated = set(reranked.entity_ids()[segment_index * 10 : (segment_index + 1) * 10])
            assert original == updated

    def test_constant_negative_score_keeps_order(self):
        result = make_result([5, 3, 8, 1, 9])
        reranked = segmented_rerank(result, lambda e: 0.0, segment_length=2)
        assert reranked.entity_ids() == result.entity_ids()

    def test_partial_last_segment_handled(self):
        result = make_result([1, 2, 3, 4, 5])
        reranked = segmented_rerank(result, lambda e: e, segment_length=3)
        assert len(reranked.ranking) == 5
        assert set(reranked.entity_ids()[3:]) == {4, 5}

    def test_empty_result(self):
        reranked = segmented_rerank(ExpansionResult("q", ()), lambda e: 0.0, segment_length=5)
        assert reranked.entity_ids() == []

    def test_scores_preserved_after_rerank(self):
        result = make_result([1, 2, 3, 4])
        reranked = segmented_rerank(result, lambda e: -e, segment_length=4)
        original_scores = {item.entity_id: item.score for item in result.ranking}
        for item in reranked.ranking:
            assert item.score == original_scores[item.entity_id]


class TestMeanSimilarityScorer:
    def test_mean_over_seeds(self):
        similarity = lambda a, b: float(a * b)
        scorer = mean_similarity_scorer([1, 2, 3], similarity)
        assert scorer(2) == pytest.approx((2 + 4 + 6) / 3)

    def test_empty_seed_list(self):
        scorer = mean_similarity_scorer([], lambda a, b: 1.0)
        assert scorer(5) == 0.0
