"""Tests for the simulated GPT-4 oracle."""

import pytest

from repro.config import OracleConfig
from repro.exceptions import ModelError
from repro.lm.oracle import OracleLLM


@pytest.fixture(scope="module")
def oracle(tiny_dataset):
    attribute_values = {
        fc.name: {a: tuple(v) for a, v in fc.attributes.items()}
        for fc in tiny_dataset.fine_classes.values()
    }
    return OracleLLM(
        tiny_dataset.entities(),
        attribute_values,
        config=OracleConfig(seed=17),
        class_descriptions={name: name.replace("_", " ") for name in attribute_values},
    )


@pytest.fixture(scope="module")
def noisy_oracle(tiny_dataset):
    attribute_values = {
        fc.name: {a: tuple(v) for a, v in fc.attributes.items()}
        for fc in tiny_dataset.fine_classes.values()
    }
    return OracleLLM(
        tiny_dataset.entities(),
        attribute_values,
        config=OracleConfig(seed=17, base_error_rate=0.4, long_tail_error_rate=0.5),
    )


class TestAttributeReads:
    def test_unknown_entity_raises(self, oracle):
        with pytest.raises(ModelError):
            oracle.read_attribute(10**9, "os")

    def test_reads_are_cached_and_consistent(self, oracle, tiny_dataset):
        entity = tiny_dataset.entities_of_fine_class("countries")[0]
        first = oracle.read_attribute(entity.entity_id, "continent")
        second = oracle.read_attribute(entity.entity_id, "continent")
        assert first == second

    def test_reads_mostly_correct_for_popular_entities(self, oracle, tiny_dataset):
        popular = [
            e for e in tiny_dataset.entities_of_fine_class("countries") if e.popularity > 0.7
        ][:40]
        correct = sum(
            oracle.read_attribute(e.entity_id, "continent") == e.attributes["continent"]
            for e in popular
        )
        assert correct >= int(0.75 * len(popular))

    def test_error_rate_increases_for_long_tail(self, noisy_oracle, tiny_dataset):
        entities = tiny_dataset.entities_of_fine_class("countries")
        popular = [e for e in entities if e.popularity > 0.7]
        obscure = [e for e in entities if e.popularity < 0.3]
        if not popular or not obscure:
            pytest.skip("tiny dataset lacks a long tail for this class")

        def accuracy(group):
            hits = sum(
                noisy_oracle.read_attribute(e.entity_id, "continent")
                == e.attributes["continent"]
                for e in group
            )
            return hits / len(group)

        assert accuracy(popular) >= accuracy(obscure)

    def test_unannotated_attribute_returns_none(self, oracle, tiny_dataset):
        distractor = tiny_dataset.distractors()[0]
        assert oracle.read_attribute(distractor.entity_id, "continent") is None


class TestReasoning:
    def test_shared_attributes_include_the_true_positive_attribute(self, oracle, tiny_dataset):
        hits = 0
        for query in tiny_dataset.queries[:20]:
            ultra = tiny_dataset.ultra_class(query.class_id)
            inferred = oracle.infer_positive_attributes(query.positive_seed_ids)
            if all(inferred.get(a) == v for a, v in ultra.positive_assignment.items()):
                hits += 1
        assert hits >= 12

    def test_infer_class_name_mentions_class(self, oracle, tiny_dataset):
        query = tiny_dataset.queries[0]
        fine = tiny_dataset.ultra_class(query.class_id).fine_class
        name = oracle.infer_class_name(query.positive_seed_ids)
        assert fine.replace("_", " ").split()[0] in name

    def test_infer_class_name_empty_seeds(self, oracle):
        assert oracle.infer_class_name([]) == "entities"

    def test_negative_attribute_inference_excludes_positive_agreement(self, oracle, tiny_dataset):
        for query in tiny_dataset.queries[:10]:
            positive = oracle.infer_positive_attributes(query.positive_seed_ids)
            negative = oracle.infer_negative_attributes(
                query.positive_seed_ids, query.negative_seed_ids
            )
            for attribute, value in negative.items():
                assert positive.get(attribute) != value


class TestSelectionAndExpansion:
    def test_select_similar_returns_subset(self, oracle, tiny_dataset):
        query = tiny_dataset.queries[0]
        candidates = tiny_dataset.entity_ids()[:200]
        selected = oracle.select_similar(query.positive_seed_ids, candidates, top_t=10)
        assert len(selected) == 10
        assert set(selected) <= set(candidates)

    def test_select_similar_prefers_matching_entities(self, oracle, tiny_dataset):
        query = tiny_dataset.queries[0]
        ultra = tiny_dataset.ultra_class(query.class_id)
        candidates = [
            e.entity_id
            for e in tiny_dataset.entities_of_fine_class(ultra.fine_class)
        ]
        selected = oracle.select_similar(query.positive_seed_ids, candidates, top_t=10)
        matching = sum(
            1 for eid in selected if eid in set(ultra.positive_entity_ids)
        )
        assert matching >= 5

    def test_expand_returns_names_not_ids(self, oracle, tiny_dataset):
        query = tiny_dataset.queries[0]
        names = oracle.expand(
            query.positive_seed_ids,
            query.negative_seed_ids,
            tiny_dataset.entity_ids(),
            top_k=50,
        )
        assert names
        assert all(isinstance(name, str) for name in names)
        assert len(names) <= 50

    def test_expand_excludes_seed_entities(self, oracle, tiny_dataset):
        query = tiny_dataset.queries[0]
        seed_names = {
            tiny_dataset.entity(eid).name
            for eid in (*query.positive_seed_ids, *query.negative_seed_ids)
        }
        names = oracle.expand(
            query.positive_seed_ids,
            query.negative_seed_ids,
            tiny_dataset.entity_ids(),
            top_k=100,
        )
        assert not (set(names) & seed_names)

    def test_expand_can_hallucinate(self, tiny_dataset):
        attribute_values = {
            fc.name: {a: tuple(v) for a, v in fc.attributes.items()}
            for fc in tiny_dataset.fine_classes.values()
        }
        halluc_oracle = OracleLLM(
            tiny_dataset.entities(),
            attribute_values,
            config=OracleConfig(seed=1, hallucination_rate=0.9),
        )
        query = tiny_dataset.queries[0]
        names = halluc_oracle.expand(
            query.positive_seed_ids, query.negative_seed_ids, tiny_dataset.entity_ids(), top_k=60
        )
        assert any(not tiny_dataset.has_entity_name(name) for name in names)

    def test_expand_ranks_positive_targets_above_negative(self, oracle, tiny_dataset):
        query = tiny_dataset.queries[0]
        ultra = tiny_dataset.ultra_class(query.class_id)
        names = oracle.expand(
            query.positive_seed_ids, query.negative_seed_ids, tiny_dataset.entity_ids(), top_k=200
        )
        ranks = {name: i for i, name in enumerate(names)}
        positive_ranks = [
            ranks[tiny_dataset.entity(eid).name]
            for eid in ultra.positive_entity_ids
            if tiny_dataset.entity(eid).name in ranks
        ]
        negative_ranks = [
            ranks[tiny_dataset.entity(eid).name]
            for eid in ultra.negative_entity_ids
            if tiny_dataset.entity(eid).name in ranks
        ]
        if positive_ranks and negative_ranks:
            assert sum(positive_ranks) / len(positive_ranks) < sum(negative_ranks) / len(
                negative_ranks
            )
