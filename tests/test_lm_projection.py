"""Tests for the contrastive projection head."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.lm.projection import ProjectionHead


class TestProjectionHead:
    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ModelError):
            ProjectionHead(0, 8)
        with pytest.raises(ModelError):
            ProjectionHead(8, 0)

    def test_projection_is_unit_norm(self):
        head = ProjectionHead(16, 8, seed=1)
        vector = head.project(np.random.default_rng(0).normal(size=16))
        assert np.isclose(np.linalg.norm(vector), 1.0)

    def test_batch_projection_shape(self):
        head = ProjectionHead(16, 8, seed=1)
        batch = head.project(np.random.default_rng(0).normal(size=(5, 16)))
        assert batch.shape == (5, 8)
        assert np.allclose(np.linalg.norm(batch, axis=1), 1.0)

    def test_wrong_input_dim_rejected(self):
        head = ProjectionHead(16, 8)
        with pytest.raises(ModelError):
            head.project(np.zeros(10))

    def test_deterministic_given_seed(self):
        x = np.random.default_rng(0).normal(size=16)
        assert np.allclose(
            ProjectionHead(16, 8, seed=7).project(x), ProjectionHead(16, 8, seed=7).project(x)
        )

    def test_training_on_empty_data_is_noop(self):
        head = ProjectionHead(16, 8)
        assert head.train_info_nce(np.zeros((0, 16)), np.zeros((0, 16)), np.zeros((0, 2, 16))) == []

    def test_inconsistent_triplets_rejected(self):
        head = ProjectionHead(16, 8)
        with pytest.raises(ModelError):
            head.train_info_nce(np.zeros((4, 16)), np.zeros((3, 16)), np.zeros((4, 2, 16)))

    def test_training_reduces_loss(self):
        """On separable synthetic data the InfoNCE loss should decrease."""
        rng = np.random.default_rng(2)
        dim, n = 16, 200
        cluster_a = rng.normal(loc=1.0, size=(n, dim))
        cluster_b = rng.normal(loc=-1.0, size=(n, dim))
        anchors = cluster_a
        positives = cluster_a + 0.1 * rng.normal(size=(n, dim))
        negatives = cluster_b[:, None, :] + 0.1 * rng.normal(size=(n, 4, dim))

        head = ProjectionHead(dim, 8, seed=3)
        history = head.train_info_nce(
            anchors, positives, negatives, epochs=6, learning_rate=1e-2, seed=3
        )
        assert len(history) == 6
        assert history[-1] < history[0]

    def test_training_separates_clusters(self):
        rng = np.random.default_rng(4)
        dim, n = 12, 150
        cluster_a = rng.normal(loc=1.0, scale=0.5, size=(n, dim))
        cluster_b = rng.normal(loc=-1.0, scale=0.5, size=(n, dim))
        head = ProjectionHead(dim, 6, seed=5)
        head.train_info_nce(
            cluster_a,
            cluster_a + 0.05 * rng.normal(size=(n, dim)),
            cluster_b[:, None, :].repeat(3, axis=1),
            epochs=8,
            learning_rate=1e-2,
        )
        projected_a = head.project(cluster_a)
        projected_b = head.project(cluster_b)
        within = float(np.mean(projected_a[:50] @ projected_a[50:100].T))
        across = float(np.mean(projected_a[:50] @ projected_b[:50].T))
        assert within > across
