"""Tests for the baseline expansion methods."""

import pytest

from repro.baselines import CGExpan, CaSE, GPT4Expander, ProbExpan, SetExpan
from repro.eval.evaluator import Evaluator


@pytest.fixture(scope="module")
def evaluator(tiny_dataset):
    return Evaluator(tiny_dataset, max_queries=8)


def fraction_in_fine_class(dataset, query, result, top_k=20):
    fine_class = dataset.ultra_class(query.class_id).fine_class
    ids = result.entity_ids()[:top_k]
    if not ids:
        return 0.0
    return sum(1 for eid in ids if dataset.entity(eid).fine_class == fine_class) / len(ids)


class TestSetExpan:
    def test_expansion_basic_contract(self, tiny_dataset, sample_query):
        expander = SetExpan(num_iterations=2, entities_per_iteration=10).fit(tiny_dataset)
        result = expander.expand(sample_query, top_k=30)
        seeds = set(sample_query.positive_seed_ids) | set(sample_query.negative_seed_ids)
        assert not (set(result.entity_ids()) & seeds)
        assert len(result.entity_ids()) <= 30

    def test_finds_class_related_entities(self, tiny_dataset, sample_query):
        expander = SetExpan(num_iterations=2, entities_per_iteration=10).fit(tiny_dataset)
        result = expander.expand(sample_query, top_k=20)
        assert fraction_in_fine_class(tiny_dataset, sample_query, result) > 0.3

    def test_iterative_expansion_grows_list(self, tiny_dataset, sample_query):
        short = SetExpan(num_iterations=1, entities_per_iteration=5).fit(tiny_dataset)
        long = SetExpan(num_iterations=3, entities_per_iteration=5).fit(tiny_dataset)
        assert len(long.expand(sample_query, top_k=50).ranking) >= len(
            short.expand(sample_query, top_k=50).ranking
        )


class TestCaSE:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CaSE(lexical_weight=1.5)
        with pytest.raises(ValueError):
            CaSE(distributed_dim=0)

    def test_expansion_contract(self, tiny_dataset, resources, sample_query):
        expander = CaSE(resources=resources).fit(tiny_dataset)
        result = expander.expand(sample_query, top_k=40)
        assert len(result.ranking) <= 40
        assert fraction_in_fine_class(tiny_dataset, sample_query, result) > 0.5

    def test_lexical_weight_changes_ranking(self, tiny_dataset, resources, sample_query):
        lexical = CaSE(lexical_weight=0.9, resources=resources).fit(tiny_dataset)
        distributed = CaSE(lexical_weight=0.1, resources=resources).fit(tiny_dataset)
        assert lexical.expand(sample_query, top_k=30).entity_ids() != distributed.expand(
            sample_query, top_k=30
        ).entity_ids()


class TestCGExpan:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CGExpan(class_name_weight=-0.1)

    def test_expansion_contract(self, tiny_dataset, resources, sample_query):
        expander = CGExpan(resources=resources).fit(tiny_dataset)
        result = expander.expand(sample_query, top_k=40)
        assert result.ranking
        assert fraction_in_fine_class(tiny_dataset, sample_query, result) > 0.5

    def test_probed_class_name_is_fine_grained_only(self, tiny_dataset, resources, sample_query):
        expander = CGExpan(resources=resources).fit(tiny_dataset)
        name = expander._probe_class_name(sample_query)
        assert " with " not in name


class TestProbExpan:
    def test_uses_distribution_representations(self, tiny_dataset, resources, sample_query):
        expander = ProbExpan(resources=resources).fit(tiny_dataset)
        result = expander.expand(sample_query, top_k=30)
        assert result.ranking
        assert fraction_in_fine_class(tiny_dataset, sample_query, result) > 0.4

    def test_neg_rerank_variant_name(self, resources):
        assert ProbExpan(resources=resources).name == "ProbExpan"
        assert (
            ProbExpan(resources=resources, use_negative_rerank=True).name
            == "ProbExpan + Neg Rerank"
        )

    def test_neg_rerank_is_a_mild_adjustment(self, tiny_dataset, resources, evaluator):
        """Adding the re-ranking module to ProbExpan changes metrics only mildly
        (paper Table IV reports deltas well under one point)."""
        base = evaluator.evaluate(ProbExpan(resources=resources).fit(tiny_dataset))
        reranked = evaluator.evaluate(
            ProbExpan(resources=resources, use_negative_rerank=True).fit(tiny_dataset)
        )
        assert reranked.average("neg") <= base.average("neg") + 2.0
        assert abs(reranked.average("comb") - base.average("comb")) < 3.0

    def test_distribution_representation_weaker_than_hidden(
        self, tiny_dataset, resources, evaluator
    ):
        """The paper's core observation: hidden-state (RetExpan) beats
        probability-distribution (ProbExpan) representations."""
        from repro.retexpan import RetExpan

        probexpan = evaluator.evaluate(ProbExpan(resources=resources).fit(tiny_dataset))
        retexpan = evaluator.evaluate(RetExpan(resources=resources).fit(tiny_dataset))
        assert retexpan.average("comb") > probexpan.average("comb")


class TestGPT4Expander:
    def test_expansion_contract(self, tiny_dataset, resources, sample_query):
        expander = GPT4Expander(resources=resources).fit(tiny_dataset)
        result = expander.expand(sample_query, top_k=50)
        assert result.ranking
        seeds = set(sample_query.positive_seed_ids) | set(sample_query.negative_seed_ids)
        assert not (set(result.entity_ids()) & seeds)

    def test_hallucinations_never_reach_the_ranking(self, tiny_dataset, resources, sample_query):
        expander = GPT4Expander(resources=resources).fit(tiny_dataset)
        result = expander.expand(sample_query, top_k=50)
        for entity_id in result.entity_ids():
            tiny_dataset.entity(entity_id)  # raises if the id does not exist

    def test_beats_statistical_baseline(self, tiny_dataset, resources, evaluator):
        gpt4 = evaluator.evaluate(GPT4Expander(resources=resources).fit(tiny_dataset))
        setexpan = evaluator.evaluate(
            SetExpan(num_iterations=2, entities_per_iteration=10).fit(tiny_dataset)
        )
        assert gpt4.average("comb") > setexpan.average("comb")
