"""End-to-end cluster smoke: real ``repro serve`` subprocesses.

This is the deployment shape ``repro cluster serve`` assembles — a gateway
in front of N worker *processes* loading one saved dataset — boiled down to
the cheapest real configuration: 2 workers, the tiny dataset, the fast
``setexpan`` method.  It proves the pieces compose across process
boundaries: workers boot and pass health checks, the gateway routes and
scatter-gathers through real sockets, answers match a single-process
service, and SIGTERM shuts every worker down cleanly (exit code 0).

CI runs this file as its cluster smoke job.
"""

from __future__ import annotations

import socket
import sys

import pytest

from repro.cli import build_parser, worker_command
from repro.client import ExpansionClient
from repro.cluster import ClusterGateway, WorkerPool, WorkerSpec
from repro.config import ClusterConfig, ServiceConfig
from repro.serve import ExpansionService

#: the method driven through the gateway: fits in milliseconds, so each
#: worker subprocess stays cheap even on a cold start.
METHOD = "setexpan"


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


@pytest.fixture(scope="module")
def dataset_dir(tiny_dataset, tmp_path_factory):
    path = tmp_path_factory.mktemp("cluster-dataset")
    tiny_dataset.save(path)
    return str(path)


@pytest.fixture(scope="module")
def cluster(dataset_dir, tiny_dataset):
    """2 real ``repro serve`` subprocesses behind a gateway."""
    parser = build_parser()
    specs = []
    for index in range(2):
        port = _free_port()
        args = parser.parse_args(
            ["serve", "--dataset", dataset_dir, "--port", str(port)]
        )
        specs.append(
            WorkerSpec(
                worker_id=f"worker-{index}",
                url=f"http://127.0.0.1:{port}",
                command=worker_command(dataset_dir, "127.0.0.1", port, args),
            )
        )
    pool = WorkerPool(specs, health_interval=0.2, health_timeout=2.0)
    pool.start(wait_healthy=True, timeout=90.0)
    gateway = ClusterGateway(
        [(spec.worker_id, spec.url) for spec in specs],
        config=ClusterConfig(proxy_timeout_seconds=60.0),
        fingerprint=tiny_dataset.fingerprint(),
        port=0,
    ).start()
    yield gateway, pool
    gateway.shutdown()
    pool.stop()


def test_expand_and_batch_through_the_gateway(cluster, tiny_dataset):
    gateway, pool = cluster
    assert pool.healthy_count() == 2
    queries = tiny_dataset.queries[:3]

    # single-process reference for the same requests
    with ExpansionService(
        tiny_dataset, config=ServiceConfig(batch_wait_ms=0.0, port=0)
    ) as single:
        reference_client = ExpansionClient.in_process(single)
        references = {
            query.query_id: reference_client.expand(
                METHOD, query_id=query.query_id, top_k=10, use_cache=False
            ).entity_ids()
            for query in queries
        }

    with ExpansionClient.connect(gateway.url, timeout=60.0) as client:
        assert client.healthz()["status"] == "ok"

        response = client.expand(
            METHOD, query_id=queries[0].query_id, top_k=10, use_cache=False
        )
        assert response.entity_ids() == references[queries[0].query_id]

        results = client.expand_batch(
            [
                {
                    "method": METHOD,
                    "query_id": query.query_id,
                    "options": {"top_k": 10, "use_cache": False},
                }
                for query in queries
            ]
        )
        for query, result in zip(queries, results):
            assert result.entity_ids() == references[query.query_id]

        stats = client.stats()
        assert stats["cluster"]["requests"] >= len(queries) + 1
        assert stats["gateway"]["proxied"] >= 1


def test_sigterm_shutdown_is_clean(dataset_dir):
    """Workers terminated by the pool exit 0 (the serve CLI handles SIGTERM)."""
    port = _free_port()
    parser = build_parser()
    args = parser.parse_args(["serve", "--dataset", dataset_dir, "--port", str(port)])
    spec = WorkerSpec(
        worker_id="solo",
        url=f"http://127.0.0.1:{port}",
        command=worker_command(dataset_dir, "127.0.0.1", port, args),
    )
    pool = WorkerPool([spec], health_interval=0.2)
    pool.start(wait_healthy=True, timeout=90.0)
    pool.stop()
    stats = pool.stats()["workers"]["solo"]
    assert stats["state"] == "stopped"
    assert stats["exit_codes"][-1] == 0, f"unclean worker exit: {stats}"


def test_worker_command_points_at_this_interpreter(dataset_dir):
    parser = build_parser()
    args = parser.parse_args(["serve", "--dataset", dataset_dir, "--port", "0"])
    command = worker_command(dataset_dir, "127.0.0.1", 8123, args)
    assert command[0] == sys.executable
    assert command[1:4] == ("-m", "repro.cli", "serve")
    assert "--port" in command and "8123" in command
