"""End-to-end integration tests: dataset → methods → evaluation.

These tests assert the paper's headline qualitative claims on the tiny
dataset (small margins, since the tiny profile is noisy): the proposed
frameworks beat the statistical baselines, the enhancement strategies do not
hurt, and every method satisfies the task contract.
"""

import pytest

from repro.baselines import GPT4Expander, SetExpan
from repro.config import GenExpanConfig, RetExpanConfig
from repro.eval.evaluator import Evaluator
from repro.genexpan import GenExpan
from repro.retexpan import RetExpan


@pytest.fixture(scope="module")
def evaluator(tiny_dataset):
    return Evaluator(tiny_dataset, max_queries=16)


@pytest.fixture(scope="module")
def reports(tiny_dataset, resources, evaluator):
    methods = {
        "SetExpan": SetExpan(num_iterations=2, entities_per_iteration=15),
        "GPT4": GPT4Expander(resources=resources),
        "RetExpan": RetExpan(resources=resources),
        "RetExpan + Contrast": RetExpan(
            RetExpanConfig(use_contrastive=True),
            resources=resources,
            contrastive_queries=evaluator.queries,
        ),
        "GenExpan": GenExpan(
            GenExpanConfig(num_iterations=3, beam_width=12, selected_per_iteration=12),
            resources=resources,
        ),
    }
    return {
        name: evaluator.evaluate(expander.fit(tiny_dataset))
        for name, expander in methods.items()
    }


class TestHeadlineShapes:
    def test_every_method_produces_sane_metrics(self, reports):
        for name, report in reports.items():
            assert 0.0 <= report.average("pos") <= 100.0, name
            assert 0.0 <= report.average("neg") <= 100.0, name
            assert 0.0 <= report.average("comb") <= 100.0, name

    def test_proposed_frameworks_beat_statistical_baseline(self, reports):
        assert reports["RetExpan"].average("comb") > reports["SetExpan"].average("comb")
        assert reports["GenExpan"].average("comb") > reports["SetExpan"].average("comb")

    def test_retexpan_competitive_with_gpt4(self, reports):
        """Paper: RetExpan edges out GPT-4 on the Comb metrics.

        The tiny profile gives the simulated GPT-4 oracle an outsized
        advantage (its knowledge does not shrink with the corpus), so the
        assertion here only requires RetExpan to stay in the same ballpark;
        the full comparison is reproduced on the benchmark profile.
        """
        assert reports["RetExpan"].average("comb") >= reports["GPT4"].average("comb") - 8.0

    def test_contrastive_learning_does_not_hurt(self, reports):
        assert (
            reports["RetExpan + Contrast"].average("comb")
            >= reports["RetExpan"].average("comb") - 1.0
        )

    def test_positive_metrics_dominate_negative_for_proposed_methods(self, reports):
        for name in ("RetExpan", "RetExpan + Contrast", "GenExpan"):
            assert reports[name].average("pos") > reports[name].average("neg"), name

    def test_reports_cover_requested_queries(self, reports, evaluator):
        for report in reports.values():
            assert report.num_queries == len(evaluator.queries)


class TestCrossMethodConsistency:
    def test_all_methods_respect_seed_exclusion(self, tiny_dataset, resources, evaluator):
        query = evaluator.queries[0]
        seeds = set(query.positive_seed_ids) | set(query.negative_seed_ids)
        for expander in (
            SetExpan(num_iterations=1, entities_per_iteration=10),
            GPT4Expander(resources=resources),
            RetExpan(resources=resources),
        ):
            result = expander.fit(tiny_dataset).expand(query, top_k=50)
            assert not (set(result.entity_ids()) & seeds)

    def test_rankings_contain_no_duplicates(self, tiny_dataset, resources, evaluator):
        query = evaluator.queries[1]
        for expander in (
            GPT4Expander(resources=resources),
            RetExpan(resources=resources),
        ):
            ids = expander.fit(tiny_dataset).expand(query, top_k=80).entity_ids()
            assert len(ids) == len(set(ids))
