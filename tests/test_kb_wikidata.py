"""Tests for the Wikidata client and annotation simulator."""

import pytest

from repro.kb.generator import EntityGenerator
from repro.kb.schema import schema_by_name
from repro.kb.wikidata import AnnotationSimulator, WikidataClient
from repro.utils.rng import RandomState


@pytest.fixture()
def entities():
    return EntityGenerator(RandomState(11)).generate_class_entities(
        schema_by_name("countries"), 80
    )


class TestWikidataClient:
    def test_invalid_coverage_rejected(self, entities):
        with pytest.raises(ValueError):
            WikidataClient(entities, coverage=1.5, rng=RandomState(0))

    def test_full_coverage_answers_everything(self, entities):
        client = WikidataClient(entities, coverage=1.0, rng=RandomState(0))
        for entity in entities:
            for attribute, value in entity.attributes.items():
                assert client.query(entity.entity_id, attribute) == value

    def test_zero_coverage_answers_nothing(self, entities):
        client = WikidataClient(entities, coverage=0.0, rng=RandomState(0))
        assert client.num_statements() == 0
        assert client.query(entities[0].entity_id, "continent") is None

    def test_partial_coverage_in_between(self, entities):
        client = WikidataClient(entities, coverage=0.6, rng=RandomState(0))
        total = sum(len(e.attributes) for e in entities)
        assert 0 < client.num_statements() < total

    def test_answers_are_never_wrong(self, entities):
        client = WikidataClient(entities, coverage=0.5, rng=RandomState(3))
        for entity in entities:
            for attribute, value in entity.attributes.items():
                answer = client.query(entity.entity_id, attribute)
                assert answer is None or answer == value

    def test_query_count_tracked(self, entities):
        client = WikidataClient(entities, coverage=0.5, rng=RandomState(0))
        client.query(entities[0].entity_id, "continent")
        client.query(entities[1].entity_id, "continent")
        assert client.query_count == 2

    def test_unknown_entity_returns_none(self, entities):
        client = WikidataClient(entities, coverage=1.0, rng=RandomState(0))
        assert client.query(10_000_000, "continent") is None


class TestAnnotationSimulator:
    def _items(self, entities, attribute="continent"):
        schema = schema_by_name("countries")
        return [(e, attribute, schema.attributes[attribute]) for e in entities]

    def test_invalid_error_rate_rejected(self):
        with pytest.raises(ValueError):
            AnnotationSimulator(RandomState(0), error_rate=0.7)

    def test_invalid_annotator_count_rejected(self):
        with pytest.raises(ValueError):
            AnnotationSimulator(RandomState(0), num_annotators=0)

    def test_majority_vote_mostly_correct(self, entities):
        simulator = AnnotationSimulator(RandomState(1), error_rate=0.05)
        report = simulator.annotate(self._items(entities))
        correct = sum(
            1
            for e in entities
            if report.labels[(e.entity_id, "continent")] == e.attributes["continent"]
        )
        assert correct >= int(0.95 * len(entities))

    def test_zero_error_rate_is_perfect_and_unanimous(self, entities):
        simulator = AnnotationSimulator(RandomState(1), error_rate=0.0)
        report = simulator.annotate(self._items(entities))
        assert report.agreement == 1.0
        assert all(
            report.labels[(e.entity_id, "continent")] == e.attributes["continent"]
            for e in entities
        )

    def test_agreement_decreases_with_error_rate(self, entities):
        low = AnnotationSimulator(RandomState(1), error_rate=0.02).annotate(self._items(entities))
        high = AnnotationSimulator(RandomState(1), error_rate=0.4).annotate(self._items(entities))
        assert high.agreement <= low.agreement

    def test_empty_items(self):
        report = AnnotationSimulator(RandomState(1)).annotate([])
        assert report.num_items == 0
        assert report.agreement == 1.0

    def test_report_counts(self, entities):
        report = AnnotationSimulator(RandomState(1)).annotate(self._items(entities[:10]))
        assert report.num_items == 10
        assert report.num_annotators == 3
        assert len(report.labels) == 10
