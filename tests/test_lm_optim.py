"""Tests for the Adam optimiser."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.lm.optim import AdamOptimizer


class TestAdamOptimizer:
    def test_invalid_hyperparameters_rejected(self):
        with pytest.raises(ModelError):
            AdamOptimizer({"w": np.zeros(2)}, learning_rate=0.0)
        with pytest.raises(ModelError):
            AdamOptimizer({"w": np.zeros(2)}, beta1=1.0)

    def test_step_moves_against_gradient(self):
        params = {"w": np.array([1.0, 1.0])}
        optimizer = AdamOptimizer(params, learning_rate=0.1)
        optimizer.step({"w": np.array([1.0, -1.0])})
        assert params["w"][0] < 1.0
        assert params["w"][1] > 1.0

    def test_unknown_parameter_rejected(self):
        optimizer = AdamOptimizer({"w": np.zeros(2)})
        with pytest.raises(ModelError):
            optimizer.step({"v": np.zeros(2)})

    def test_shape_mismatch_rejected(self):
        optimizer = AdamOptimizer({"w": np.zeros(2)})
        with pytest.raises(ModelError):
            optimizer.step({"w": np.zeros(3)})

    def test_step_counter(self):
        optimizer = AdamOptimizer({"w": np.zeros(2)})
        optimizer.step({"w": np.ones(2)})
        optimizer.step({"w": np.ones(2)})
        assert optimizer.num_steps == 2

    def test_minimises_quadratic(self):
        """Adam should drive a simple quadratic toward its minimum at w = 3."""
        params = {"w": np.array([0.0])}
        optimizer = AdamOptimizer(params, learning_rate=0.05)
        for _ in range(500):
            grad = 2.0 * (params["w"] - 3.0)
            optimizer.step({"w": grad})
        assert abs(params["w"][0] - 3.0) < 0.05

    def test_partial_gradient_updates_only_named_parameters(self):
        params = {"w": np.ones(2), "b": np.ones(2)}
        optimizer = AdamOptimizer(params, learning_rate=0.1)
        optimizer.step({"w": np.ones(2)})
        assert not np.allclose(params["w"], 1.0)
        assert np.allclose(params["b"], 1.0)

    def test_updates_are_in_place(self):
        weights = np.ones(3)
        optimizer = AdamOptimizer({"w": weights}, learning_rate=0.1)
        optimizer.step({"w": np.ones(3)})
        assert not np.allclose(weights, 1.0)
