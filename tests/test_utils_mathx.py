"""Tests for the numerical helpers."""

import numpy as np
import pytest

from repro.utils.mathx import (
    cosine_similarity,
    cosine_similarity_matrix,
    l2_normalize,
    log_softmax,
    logsumexp,
    softmax,
)


class TestL2Normalize:
    def test_unit_norm(self):
        x = np.array([3.0, 4.0])
        assert np.isclose(np.linalg.norm(l2_normalize(x)), 1.0)

    def test_zero_vector_unchanged(self):
        out = l2_normalize(np.zeros(4))
        assert np.allclose(out, 0.0)

    def test_matrix_rows_normalised(self):
        matrix = np.array([[1.0, 0.0], [0.0, 5.0], [3.0, 4.0]])
        norms = np.linalg.norm(l2_normalize(matrix, axis=1), axis=1)
        assert np.allclose(norms, 1.0)

    def test_direction_preserved(self):
        x = np.array([2.0, 2.0])
        out = l2_normalize(x)
        assert np.allclose(out, np.array([1.0, 1.0]) / np.sqrt(2))


class TestCosineSimilarity:
    def test_identical_vectors(self):
        v = np.array([1.0, 2.0, 3.0])
        assert np.isclose(cosine_similarity(v, v), 1.0)

    def test_orthogonal_vectors(self):
        assert np.isclose(cosine_similarity([1, 0], [0, 1]), 0.0)

    def test_opposite_vectors(self):
        assert np.isclose(cosine_similarity([1.0, 0.0], [-1.0, 0.0]), -1.0)

    def test_scale_invariance(self):
        a = np.array([1.0, 2.0])
        b = np.array([3.0, 1.0])
        assert np.isclose(cosine_similarity(a, b), cosine_similarity(10 * a, 0.5 * b))

    def test_zero_vector_returns_zero(self):
        assert cosine_similarity(np.zeros(3), np.ones(3)) == pytest.approx(0.0)

    def test_matrix_shape(self):
        a = np.random.default_rng(0).normal(size=(4, 8))
        b = np.random.default_rng(1).normal(size=(6, 8))
        assert cosine_similarity_matrix(a, b).shape == (4, 6)

    def test_matrix_self_diagonal(self):
        a = np.random.default_rng(0).normal(size=(5, 8))
        matrix = cosine_similarity_matrix(a)
        assert np.allclose(np.diag(matrix), 1.0)

    def test_matrix_symmetry(self):
        a = np.random.default_rng(0).normal(size=(5, 8))
        matrix = cosine_similarity_matrix(a)
        assert np.allclose(matrix, matrix.T)


class TestSoftmax:
    def test_sums_to_one(self):
        probs = softmax(np.array([1.0, 2.0, 3.0]))
        assert np.isclose(probs.sum(), 1.0)

    def test_monotonic(self):
        probs = softmax(np.array([1.0, 2.0, 3.0]))
        assert probs[0] < probs[1] < probs[2]

    def test_shift_invariance(self):
        x = np.array([1.0, 5.0, -2.0])
        assert np.allclose(softmax(x), softmax(x + 100.0))

    def test_large_values_stable(self):
        probs = softmax(np.array([1000.0, 1001.0]))
        assert np.all(np.isfinite(probs))
        assert np.isclose(probs.sum(), 1.0)

    def test_batch_axis(self):
        x = np.random.default_rng(0).normal(size=(3, 5))
        probs = softmax(x, axis=1)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_log_softmax_consistent(self):
        x = np.array([0.5, -1.0, 2.0])
        assert np.allclose(log_softmax(x), np.log(softmax(x)))


class TestLogSumExp:
    def test_matches_naive(self):
        x = np.array([0.1, 0.2, 0.3])
        assert np.isclose(logsumexp(x), np.log(np.exp(x).sum()))

    def test_large_values_stable(self):
        x = np.array([1000.0, 1000.0])
        assert np.isclose(logsumexp(x), 1000.0 + np.log(2.0))

    def test_axis_reduction_shape(self):
        x = np.random.default_rng(0).normal(size=(4, 6))
        assert logsumexp(x, axis=1).shape == (4,)
