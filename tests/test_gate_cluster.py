"""Noisy-neighbor isolation through the gateway front door.

An in-process cluster (thread-backed workers, real sockets) with two
tenants: ``noisy`` floods the gateway past its small quota while ``calm``
runs its normal traffic under a huge one.  The front door must keep the
two apart — noisy gets accurate 429s without ever reaching the workers,
calm's latency stays where it was when it had the fleet to itself.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cluster import ClusterConfig, ClusterGateway
from repro.config import ServiceConfig
from repro.core.base import Expander
from repro.gate import API_KEY_HEADER
from repro.serve import ExpansionHTTPServer, ExpansionService
from repro.types import ExpansionResult

NOISY_KEY = "noisy-tenant-key"
CALM_KEY = "calm-tenant-key"

STUB_METHODS = tuple(f"stub{letter}" for letter in "abc")


class ShardStubExpander(Expander):
    def __init__(self, salt: str):
        super().__init__()
        self.name = salt
        self.salt = sum(ord(ch) for ch in salt)

    def _expand(self, query, top_k):
        scored = [
            (eid, 1.0 / (1.0 + ((eid * 2654435761 + self.salt) % 4093)))
            for eid in self.candidate_ids(query)
        ]
        return ExpansionResult.from_scores(query.query_id, scored)


@pytest.fixture(scope="module")
def gated_cluster(tiny_dataset, tmp_path_factory):
    keyfile = tmp_path_factory.mktemp("gate-cluster") / "keys.json"
    keyfile.write_text(
        json.dumps(
            {
                "tenants": [
                    {"tenant": "noisy", "key": NOISY_KEY, "quota": "5:5"},
                    {"tenant": "calm", "key": CALM_KEY, "quota": "100000:100000"},
                ]
            }
        ),
        encoding="utf-8",
    )
    factories = {
        method: (lambda _res, m=method: ShardStubExpander(m))
        for method in STUB_METHODS
    }
    servers = [
        ExpansionHTTPServer(
            ExpansionService(
                tiny_dataset,
                config=ServiceConfig(batch_wait_ms=0.0, port=0),
                factories=factories,
            ),
            port=0,
        ).start()
        for _ in range(2)
    ]
    config = ClusterConfig(
        failover_cooldown_seconds=0.2,
        proxy_timeout_seconds=30.0,
        keyfile=str(keyfile),
    )
    gateway = ClusterGateway(
        [(f"worker-{i}", server.url) for i, server in enumerate(servers)],
        config=config,
        fingerprint=tiny_dataset.fingerprint(),
        port=0,
    ).start()
    yield gateway, servers
    gateway.shutdown()
    for server in servers:
        server.shutdown()


def call(gateway, verb, path, payload=None, api_key=None):
    body = json.dumps(payload).encode("utf-8") if payload is not None else None
    headers = {"Content-Type": "application/json"}
    if api_key is not None:
        headers[API_KEY_HEADER] = api_key
    request = urllib.request.Request(
        gateway.url + path, data=body, method=verb, headers=headers
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


def expand_payload(tiny_dataset, index=0):
    return {
        "method": STUB_METHODS[index % len(STUB_METHODS)],
        "query_id": tiny_dataset.queries[index % len(tiny_dataset.queries)].query_id,
        "top_k": 5,
    }


def p99(samples):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]


def run_calm_pass(gateway, tiny_dataset, count=40):
    """Sequential calm-tenant traffic; returns (latencies, statuses)."""
    latencies, statuses = [], []
    payload = expand_payload(tiny_dataset)
    for _ in range(count):
        started = time.perf_counter()
        status, _, _ = call(gateway, "POST", "/v1/expand", payload, api_key=CALM_KEY)
        latencies.append(time.perf_counter() - started)
        statuses.append(status)
    return latencies, statuses


class TestFrontDoorAuth:
    def test_missing_key_is_401_at_the_gateway(self, gated_cluster):
        gateway, _ = gated_cluster
        status, body, _ = call(gateway, "GET", "/v1/methods")
        assert status == 401
        assert body["error"]["code"] == "unauthenticated"

    def test_healthz_stays_exempt(self, gated_cluster):
        gateway, _ = gated_cluster
        status, body, _ = call(gateway, "GET", "/v1/healthz")
        assert status == 200
        assert body["data"]["status"] == "ok"

    def test_authenticated_expand_reaches_a_worker(self, gated_cluster, tiny_dataset):
        gateway, _ = gated_cluster
        status, body, _ = call(
            gateway,
            "POST",
            "/v1/expand",
            expand_payload(tiny_dataset),
            api_key=CALM_KEY,
        )
        assert status == 200
        assert len(body["data"]["ranking"]) == 5

    def test_tenant_is_forwarded_for_worker_attribution(
        self, gated_cluster, tiny_dataset
    ):
        gateway, servers = gated_cluster
        for index in range(len(STUB_METHODS)):
            status, _, _ = call(
                gateway,
                "POST",
                "/v1/expand",
                expand_payload(tiny_dataset, index),
                api_key=CALM_KEY,
            )
            assert status == 200
        texts = []
        for server in servers:
            with urllib.request.urlopen(server.url + "/v1/metrics", timeout=10) as r:
                texts.append(r.read().decode("utf-8"))
        assert any('tenant="calm"' in text for text in texts)


class TestNoisyNeighbor:
    def test_flood_is_throttled_with_accurate_retry_after(self, gated_cluster):
        gateway, _ = gated_cluster
        throttled = []
        for _ in range(20):
            status, body, headers = call(
                gateway, "GET", "/v1/methods", api_key=NOISY_KEY
            )
            if status == 429:
                throttled.append((body, headers))
            else:
                assert status == 200
        assert throttled  # burst 5 cannot cover 20 requests
        for body, headers in throttled:
            error = body["error"]
            assert error["code"] == "rate_limited"
            assert error["retryable"] is True
            hint = error["details"]["retry_after"]
            assert 0 < hint <= 5.0  # deficit refills at 5/s from a burst of 5
            header = int(headers["Retry-After"])
            assert header - 1 < hint <= header

    def test_calm_tenant_latency_survives_the_flood(self, gated_cluster, tiny_dataset):
        gateway, _ = gated_cluster
        # warm the route + result cache so both passes measure the same path.
        run_calm_pass(gateway, tiny_dataset, count=5)

        last_error = None
        for _attempt in range(3):  # latency on a shared box jitters; best of 3
            solo, solo_statuses = run_calm_pass(gateway, tiny_dataset)
            assert all(status == 200 for status in solo_statuses)

            stop = threading.Event()
            rejected = [0]

            def flood():
                while not stop.is_set():
                    status, _, _ = call(
                        gateway, "GET", "/v1/methods", api_key=NOISY_KEY
                    )
                    if status == 429:
                        rejected[0] += 1

            threads = [threading.Thread(target=flood) for _ in range(2)]
            for thread in threads:
                thread.start()
            try:
                flooded, flood_statuses = run_calm_pass(gateway, tiny_dataset)
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=10.0)

            try:
                # the flood must not cost calm a single request...
                assert all(status == 200 for status in flood_statuses)
                # ...and the noisy tenant really was being turned away.
                assert rejected[0] > 0
                # p99 within 10% of the solo baseline, plus a small absolute
                # grace: sub-millisecond baselines make a pure ratio absurd.
                assert p99(flooded) <= p99(solo) * 1.10 + 0.050
                return
            except AssertionError as exc:
                last_error = exc
        raise last_error

    def test_gate_counters_and_dashboard_rows(self, gated_cluster):
        gateway, _ = gated_cluster
        status, body, _ = call(gateway, "GET", "/v1/stats", api_key=CALM_KEY)
        assert status == 200
        gate = body["data"]["gate"]
        assert gate["requests"]["calm"] >= 1
        assert gate["throttled"]["noisy"] >= 1

        status, body, _ = call(gateway, "GET", "/v1/dashboard", api_key=CALM_KEY)
        assert status == 200
        rows = {row["tenant"]: row for row in body["data"]["tenants"]}
        assert rows["noisy"]["throttled"] >= 1
        assert rows["calm"]["requests"] >= 1
        assert rows["calm"]["throttled"] == 0
