"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rerank import segmented_rerank
from repro.eval.metrics import average_precision_at_k, precision_at_k, query_metrics
from repro.lm.losses import info_nce_loss, label_smoothed_cross_entropy
from repro.text.prefix_tree import PrefixTree
from repro.text.tokenizer import WordTokenizer
from repro.text.vocab import Vocabulary
from repro.types import ExpansionResult, RankedEntity
from repro.utils.mathx import l2_normalize, softmax
from repro.utils.rng import derive_seed

# -- strategies -----------------------------------------------------------------

entity_ids = st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=60, unique=True)
relevant_sets = st.sets(st.integers(min_value=0, max_value=500), max_size=60)
cutoffs = st.integers(min_value=1, max_value=120)
tokens = st.text(alphabet="abcdefghij", min_size=1, max_size=6)


class TestMetricProperties:
    @given(ranking=entity_ids, relevant=relevant_sets, k=cutoffs)
    def test_precision_bounded(self, ranking, relevant, k):
        value = precision_at_k(ranking, relevant, k)
        assert 0.0 <= value <= 100.0

    @given(ranking=entity_ids, relevant=relevant_sets, k=cutoffs)
    def test_average_precision_bounded(self, ranking, relevant, k):
        value = average_precision_at_k(ranking, relevant, k)
        assert 0.0 <= value <= 100.0 + 1e-9

    @given(ranking=entity_ids, k=cutoffs)
    def test_perfect_ranking_scores_100(self, ranking, k):
        relevant = set(ranking)
        k = min(k, len(ranking))
        assert average_precision_at_k(ranking, relevant, k) == 100.0
        assert precision_at_k(ranking, relevant, k) == 100.0

    @given(ranking=entity_ids, relevant=relevant_sets, k=cutoffs)
    def test_disjoint_relevant_scores_zero(self, ranking, relevant, k):
        disjoint = {r + 1000 for r in relevant}
        assert precision_at_k(ranking, disjoint, k) == 0.0
        assert average_precision_at_k(ranking, disjoint, k) == 0.0

    @given(ranking=entity_ids, relevant=relevant_sets)
    def test_comb_metric_bounded(self, ranking, relevant):
        negatives = {r + 1000 for r in relevant}
        metrics = query_metrics(ranking, relevant, negatives, cutoffs=(10,))
        assert 0.0 <= metrics.comb_map(10) <= 100.0
        assert 0.0 <= metrics.comb_p(10) <= 100.0

    @given(ranking=entity_ids, relevant=relevant_sets, k=cutoffs)
    def test_adding_relevant_items_never_lowers_precision(self, ranking, relevant, k):
        baseline = precision_at_k(ranking, relevant, k)
        enlarged = precision_at_k(ranking, relevant | set(ranking[:1]), k)
        assert enlarged >= baseline


class TestRerankProperties:
    @given(
        ids=entity_ids,
        segment_length=st.integers(min_value=1, max_value=25),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_rerank_is_a_permutation_within_segments(self, ids, segment_length, seed):
        result = ExpansionResult(
            query_id="q",
            ranking=tuple(RankedEntity(eid, 1.0 - 0.001 * i) for i, eid in enumerate(ids)),
        )
        rng = np.random.default_rng(seed)
        scores = {eid: float(rng.random()) for eid in ids}
        reranked = segmented_rerank(result, lambda e: scores[e], segment_length)
        assert sorted(reranked.entity_ids()) == sorted(ids)
        for start in range(0, len(ids), segment_length):
            original_segment = set(ids[start : start + segment_length])
            new_segment = set(reranked.entity_ids()[start : start + segment_length])
            assert original_segment == new_segment

    @given(ids=entity_ids, segment_length=st.integers(min_value=1, max_value=25))
    def test_rerank_idempotent_for_constant_scores(self, ids, segment_length):
        result = ExpansionResult(
            query_id="q",
            ranking=tuple(RankedEntity(eid, 1.0 - 0.001 * i) for i, eid in enumerate(ids)),
        )
        reranked = segmented_rerank(result, lambda e: 0.0, segment_length)
        assert reranked.entity_ids() == result.entity_ids()


class TestTextProperties:
    @given(token_lists=st.lists(st.lists(tokens, min_size=0, max_size=8), min_size=0, max_size=10))
    def test_vocabulary_roundtrip(self, token_lists):
        vocab = Vocabulary.from_token_lists(token_lists)
        for token_list in token_lists:
            assert vocab.decode(vocab.encode(token_list)) == token_list

    @given(names=st.lists(st.lists(tokens, min_size=1, max_size=4), min_size=1, max_size=30))
    def test_prefix_tree_contains_inserted_paths(self, names):
        tree = PrefixTree()
        inserted = {}
        for i, path in enumerate(names):
            name = f"entity-{i}"
            tree.insert(path, name)
            inserted[tuple(path)] = name
        # Later inserts on the same path overwrite earlier ones.
        for path, name in inserted.items():
            assert tree.is_complete(path)
        assert len(tree) == len(inserted)

    @given(text=st.text(max_size=200))
    def test_tokenizer_never_raises_and_lowercases(self, text):
        tokens = WordTokenizer().tokenize(text)
        for token in tokens:
            if token != "[MASK]":
                assert token == token.lower()

    @given(text=st.text(alphabet="abc XYZ.,!?", max_size=100))
    def test_tokenizer_deterministic(self, text):
        tokenizer = WordTokenizer()
        assert tokenizer.tokenize(text) == tokenizer.tokenize(text)


class TestMathProperties:
    @given(
        values=st.lists(
            st.floats(min_value=-50, max_value=50, allow_nan=False), min_size=1, max_size=20
        )
    )
    def test_softmax_is_distribution(self, values):
        probs = softmax(np.array(values))
        assert np.all(probs >= 0)
        assert np.isclose(probs.sum(), 1.0)

    @given(
        values=st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=1, max_size=20
        )
    )
    def test_l2_normalize_bounded(self, values):
        norm = np.linalg.norm(l2_normalize(np.array(values)))
        assert norm <= 1.0 + 1e-9

    @given(seed=st.integers(min_value=0, max_value=2**31), label=st.text(max_size=20))
    def test_derive_seed_stable_and_in_range(self, seed, label):
        a = derive_seed(seed, label)
        b = derive_seed(seed, label)
        assert a == b
        assert 0 <= a < 2**32


class TestLossProperties:
    @settings(max_examples=25)
    @given(
        batch=st.integers(min_value=1, max_value=6),
        classes=st.integers(min_value=2, max_value=10),
        smoothing=st.floats(min_value=0.0, max_value=0.5),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_cross_entropy_non_negative_finite(self, batch, classes, smoothing, seed):
        rng = np.random.default_rng(seed)
        logits = rng.normal(size=(batch, classes))
        targets = rng.integers(0, classes, size=batch)
        loss, grad = label_smoothed_cross_entropy(logits, targets, smoothing)
        assert loss >= 0.0
        assert np.isfinite(loss)
        assert np.isfinite(grad).all()
        # Gradient rows sum to ~0 (softmax minus a distribution).
        assert np.allclose(grad.sum(axis=1), 0.0, atol=1e-8)

    @settings(max_examples=25)
    @given(
        batch=st.integers(min_value=1, max_value=5),
        num_neg=st.integers(min_value=1, max_value=4),
        dim=st.integers(min_value=2, max_value=8),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_info_nce_finite(self, batch, num_neg, dim, seed):
        rng = np.random.default_rng(seed)
        anchors = l2_normalize(rng.normal(size=(batch, dim)), axis=1)
        positives = l2_normalize(rng.normal(size=(batch, dim)), axis=1)
        negatives = l2_normalize(rng.normal(size=(batch, num_neg, dim)), axis=2)
        loss, ga, gp, gn = info_nce_loss(anchors, positives, negatives)
        assert np.isfinite(loss) and loss >= 0.0
        assert np.isfinite(ga).all() and np.isfinite(gp).all() and np.isfinite(gn).all()
