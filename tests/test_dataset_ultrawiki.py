"""Tests for the UltraWiki dataset container."""

import pytest

from repro.dataset.ultrawiki import UltraWikiDataset
from repro.exceptions import DatasetError
from repro.kb.corpus import Corpus
from repro.types import Entity, FineGrainedClass, Query, Sentence, UltraFineGrainedClass


def small_container():
    entities = [
        Entity(0, "Alpha", "c", {"a": "x"}),
        Entity(1, "Beta", "c", {"a": "x"}),
        Entity(2, "Gamma", "c", {"a": "y"}),
        Entity(3, "Delta", "c", {"a": "y"}),
        Entity(4, "Distractor", None, {}),
    ]
    corpus = Corpus([Sentence(0, "Alpha is here.", (0,))])
    fine = [FineGrainedClass("c", "Class C", {"a": ("x", "y")})]
    ultra = [
        UltraFineGrainedClass(
            class_id="c#000",
            fine_class="c",
            positive_assignment={"a": "x"},
            negative_assignment={"a": "y"},
            positive_entity_ids=(0, 1),
            negative_entity_ids=(2, 3),
        )
    ]
    queries = [Query("c#000/q0", "c#000", (0,), (2,))]
    return UltraWikiDataset(entities, corpus, fine, ultra, queries, metadata={"k": 1})


class TestContainerValidation:
    def test_duplicate_entity_id_rejected(self):
        with pytest.raises(DatasetError):
            UltraWikiDataset(
                [Entity(0, "A"), Entity(0, "B")], Corpus(), [], [], []
            )

    def test_duplicate_entity_name_rejected(self):
        with pytest.raises(DatasetError):
            UltraWikiDataset(
                [Entity(0, "A"), Entity(1, "A")], Corpus(), [], [], []
            )

    def test_query_with_unknown_class_rejected(self):
        with pytest.raises(DatasetError):
            UltraWikiDataset(
                [Entity(0, "A")],
                Corpus(),
                [],
                [],
                [Query("q", "missing", (0,), ())],
            )


class TestContainerAccess:
    def test_entity_lookup_by_id_and_name(self):
        dataset = small_container()
        assert dataset.entity(2).name == "Gamma"
        assert dataset.entity_by_name("Gamma").entity_id == 2
        assert dataset.has_entity_name("Gamma")
        assert not dataset.has_entity_name("Omega")

    def test_unknown_lookups_raise(self):
        dataset = small_container()
        with pytest.raises(DatasetError):
            dataset.entity(99)
        with pytest.raises(DatasetError):
            dataset.entity_by_name("Omega")
        with pytest.raises(DatasetError):
            dataset.ultra_class("nope")

    def test_entities_sorted_by_id(self):
        dataset = small_container()
        assert [e.entity_id for e in dataset.entities()] == [0, 1, 2, 3, 4]

    def test_entities_of_fine_class(self):
        dataset = small_container()
        assert len(dataset.entities_of_fine_class("c")) == 4

    def test_distractors(self):
        dataset = small_container()
        assert [d.name for d in dataset.distractors()] == ["Distractor"]

    def test_queries_of_class(self):
        dataset = small_container()
        assert len(dataset.queries_of_class("c#000")) == 1

    def test_targets_exclude_seed_entities(self):
        dataset = small_container()
        query = dataset.queries[0]
        assert dataset.positive_targets(query) == {1}
        assert dataset.negative_targets(query) == {3}

    def test_counts(self):
        dataset = small_container()
        assert dataset.num_entities == 5
        assert dataset.num_sentences == 1


class TestFingerprint:
    def test_identical_content_gives_identical_fingerprint(self):
        assert small_container().fingerprint() == small_container().fingerprint()

    def test_corpus_content_changes_the_fingerprint(self):
        base = small_container()
        changed = small_container()
        changed.corpus = Corpus([Sentence(0, "Alpha is elsewhere.", (0,))])
        assert base.fingerprint() != changed.fingerprint()

    def test_query_changes_the_fingerprint(self):
        base = small_container()
        changed = small_container()
        changed.queries = [Query("c#000/q0", "c#000", (1,), (2,))]
        assert base.fingerprint() != changed.fingerprint()


class TestPersistence:
    def test_save_and_load_roundtrip(self, tmp_path):
        dataset = small_container()
        dataset.save(tmp_path / "ds")
        restored = UltraWikiDataset.load(tmp_path / "ds")
        assert restored.num_entities == dataset.num_entities
        assert restored.num_sentences == dataset.num_sentences
        assert set(restored.ultra_classes) == set(dataset.ultra_classes)
        assert [q.query_id for q in restored.queries] == [q.query_id for q in dataset.queries]
        assert restored.metadata == dataset.metadata
        assert restored.entity_by_name("Gamma").attributes == {"a": "y"}

    def test_roundtrip_of_generated_dataset(self, tmp_path, tiny_dataset):
        tiny_dataset.save(tmp_path / "tiny")
        restored = UltraWikiDataset.load(tmp_path / "tiny")
        assert restored.num_entities == tiny_dataset.num_entities
        assert restored.num_sentences == tiny_dataset.num_sentences
        query = tiny_dataset.queries[0]
        assert restored.positive_targets(query) == tiny_dataset.positive_targets(query)
