"""Tests for the loss functions, including finite-difference gradient checks."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.lm.losses import info_nce_loss, label_smoothed_cross_entropy
from repro.utils.mathx import l2_normalize


class TestLabelSmoothedCrossEntropy:
    def test_perfect_prediction_has_low_loss(self):
        logits = np.array([[10.0, -10.0, -10.0]])
        targets = np.array([0])
        loss, _ = label_smoothed_cross_entropy(logits, targets, smoothing=0.0)
        assert loss < 1e-3

    def test_wrong_prediction_has_high_loss(self):
        logits = np.array([[10.0, -10.0, -10.0]])
        good, _ = label_smoothed_cross_entropy(logits, np.array([0]), smoothing=0.0)
        bad, _ = label_smoothed_cross_entropy(logits, np.array([1]), smoothing=0.0)
        assert bad > good

    def test_smoothing_raises_loss_of_confident_correct_prediction(self):
        logits = np.array([[10.0, -10.0, -10.0]])
        plain, _ = label_smoothed_cross_entropy(logits, np.array([0]), smoothing=0.0)
        smoothed, _ = label_smoothed_cross_entropy(logits, np.array([0]), smoothing=0.2)
        assert smoothed > plain

    def test_gradient_shape(self):
        logits = np.random.default_rng(0).normal(size=(4, 6))
        _, grad = label_smoothed_cross_entropy(logits, np.array([0, 1, 2, 3]))
        assert grad.shape == logits.shape

    def test_gradient_matches_finite_differences(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(3, 5))
        targets = np.array([1, 0, 4])
        smoothing = 0.1
        _, grad = label_smoothed_cross_entropy(logits, targets, smoothing)
        eps = 1e-6
        for i in (0, 1, 2):
            for j in (0, 2, 4):
                bumped = logits.copy()
                bumped[i, j] += eps
                up, _ = label_smoothed_cross_entropy(bumped, targets, smoothing)
                bumped[i, j] -= 2 * eps
                down, _ = label_smoothed_cross_entropy(bumped, targets, smoothing)
                numeric = (up - down) / (2 * eps)
                assert numeric == pytest.approx(grad[i, j], abs=1e-5)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ModelError):
            label_smoothed_cross_entropy(np.zeros(3), np.array([0]))
        with pytest.raises(ModelError):
            label_smoothed_cross_entropy(np.zeros((2, 3)), np.array([0]))
        with pytest.raises(ModelError):
            label_smoothed_cross_entropy(np.zeros((1, 3)), np.array([0]), smoothing=1.0)


class TestInfoNCE:
    def _inputs(self, seed=0, batch=4, num_neg=3, dim=8):
        rng = np.random.default_rng(seed)
        anchors = l2_normalize(rng.normal(size=(batch, dim)), axis=1)
        positives = l2_normalize(rng.normal(size=(batch, dim)), axis=1)
        negatives = l2_normalize(rng.normal(size=(batch, num_neg, dim)), axis=2)
        return anchors, positives, negatives

    def test_loss_positive(self):
        loss, *_ = info_nce_loss(*self._inputs())
        assert loss > 0

    def test_aligned_positives_give_lower_loss(self):
        anchors, _, negatives = self._inputs()
        aligned_loss, *_ = info_nce_loss(anchors, anchors.copy(), negatives)
        random_loss, *_ = info_nce_loss(*self._inputs(seed=3))
        assert aligned_loss < random_loss

    def test_gradient_shapes(self):
        anchors, positives, negatives = self._inputs()
        _, ga, gp, gn = info_nce_loss(anchors, positives, negatives)
        assert ga.shape == anchors.shape
        assert gp.shape == positives.shape
        assert gn.shape == negatives.shape

    def test_anchor_gradient_matches_finite_differences(self):
        anchors, positives, negatives = self._inputs(batch=2, num_neg=2, dim=4)
        temperature = 0.2
        _, grad_anchor, _, _ = info_nce_loss(anchors, positives, negatives, temperature)
        eps = 1e-6
        for i in range(anchors.shape[0]):
            for j in range(anchors.shape[1]):
                bumped = anchors.copy()
                bumped[i, j] += eps
                up, *_ = info_nce_loss(bumped, positives, negatives, temperature)
                bumped[i, j] -= 2 * eps
                down, *_ = info_nce_loss(bumped, positives, negatives, temperature)
                numeric = (up - down) / (2 * eps)
                assert numeric == pytest.approx(grad_anchor[i, j], abs=1e-5)

    def test_invalid_inputs_rejected(self):
        anchors, positives, negatives = self._inputs()
        with pytest.raises(ModelError):
            info_nce_loss(anchors, positives[:2], negatives)
        with pytest.raises(ModelError):
            info_nce_loss(anchors, positives, negatives[:, 0, :])
        with pytest.raises(ModelError):
            info_nce_loss(anchors, positives, negatives, temperature=0.0)

    def test_temperature_scales_confidence(self):
        anchors, positives, negatives = self._inputs()
        sharp, *_ = info_nce_loss(anchors, anchors.copy(), negatives, temperature=0.05)
        soft, *_ = info_nce_loss(anchors, anchors.copy(), negatives, temperature=1.0)
        assert sharp < soft
