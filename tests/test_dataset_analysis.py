"""Tests for dataset statistics and similarity analysis (Table I, Figure 4)."""

import numpy as np

from repro.dataset.analysis import (
    PAPER_ULTRAWIKI_STATS,
    PRIOR_DATASETS,
    class_similarity_matrix,
    compute_statistics,
    dataset_comparison_table,
    intra_inter_similarity,
)


class TestStatistics:
    def test_counts_match_dataset(self, tiny_dataset):
        stats = compute_statistics(tiny_dataset)
        assert stats.num_entities == tiny_dataset.num_entities
        assert stats.num_sentences == tiny_dataset.num_sentences
        assert stats.num_ultra_classes == len(tiny_dataset.ultra_classes)
        assert stats.num_queries == len(tiny_dataset.queries)

    def test_queries_per_class_matches_config(self, tiny_dataset, tiny_config):
        stats = compute_statistics(tiny_dataset)
        assert stats.queries_per_class == tiny_config.queries_per_class

    def test_seed_counts_in_paper_range(self, tiny_dataset):
        stats = compute_statistics(tiny_dataset)
        assert 3.0 <= stats.avg_positive_seeds <= 5.0
        assert 3.0 <= stats.avg_negative_seeds <= 5.0

    def test_average_targets_positive(self, tiny_dataset):
        stats = compute_statistics(tiny_dataset)
        assert stats.avg_positive_targets >= 6
        assert stats.avg_negative_targets >= 6

    def test_to_dict_keys(self, tiny_dataset):
        payload = compute_statistics(tiny_dataset).to_dict()
        assert "class_overlap_fraction" in payload
        assert "long_tail_fraction" in payload


class TestComparisonTable:
    def test_contains_prior_datasets_and_ours(self, tiny_dataset):
        rows = dataset_comparison_table(tiny_dataset)
        names = [row["dataset"] for row in rows]
        for prior in PRIOR_DATASETS:
            assert prior in names
        assert "UltraWiki (paper)" in names
        assert any(name.startswith("UltraWiki (this repo") for name in names)

    def test_only_ultrawiki_rows_have_negative_seeds(self, tiny_dataset):
        for row in dataset_comparison_table(tiny_dataset):
            if row["dataset"].startswith("UltraWiki"):
                assert row["neg_seeds_per_query"] != "N/A"
                assert row["entity_attribution"] is True
            else:
                assert row["neg_seeds_per_query"] == "N/A"
                assert row["entity_attribution"] is False

    def test_paper_row_quotes_published_statistics(self, tiny_dataset):
        rows = {row["dataset"]: row for row in dataset_comparison_table(tiny_dataset)}
        paper = rows["UltraWiki (paper)"]
        assert paper["semantic_classes"] == PAPER_ULTRAWIKI_STATS["semantic_classes"]
        assert paper["candidate_entities"] == 50_973
        assert paper["corpus_sentences"] == 394_097


class TestSimilarityAnalysis:
    def _embeddings(self, dataset):
        rng = np.random.default_rng(0)
        embeddings = {}
        fine_names = sorted(dataset.fine_classes)
        for entity in dataset.entities():
            if entity.fine_class is None:
                continue
            base = np.zeros(len(fine_names) + 4)
            base[fine_names.index(entity.fine_class)] = 1.0
            embeddings[entity.entity_id] = base + 0.05 * rng.normal(size=base.shape)
        return embeddings

    def test_matrix_shape_and_range(self, tiny_dataset):
        class_ids, matrix = class_similarity_matrix(
            tiny_dataset, self._embeddings(tiny_dataset), max_classes=12
        )
        assert matrix.shape == (len(class_ids), len(class_ids))
        assert len(class_ids) <= 12
        assert np.all(matrix <= 1.0 + 1e-9)
        assert np.allclose(np.diag(matrix), 1.0)

    def test_intra_class_similarity_exceeds_inter(self, tiny_dataset):
        summary = intra_inter_similarity(tiny_dataset, self._embeddings(tiny_dataset))
        assert summary["intra"] > summary["inter"]

    def test_empty_embeddings_handled(self, tiny_dataset):
        class_ids, matrix = class_similarity_matrix(tiny_dataset, {})
        assert class_ids == []
        assert matrix.shape == (0, 0)

    def test_real_encoder_embeddings_show_block_structure(self, tiny_dataset, resources):
        """Figure 4's qualitative claim holds for the actual encoder output."""
        representations = resources.entity_representations(trained=True)
        summary = intra_inter_similarity(tiny_dataset, representations.hidden)
        assert summary["num_classes"] > 1
        assert summary["intra"] > summary["inter"]
