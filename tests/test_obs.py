"""Tests for the unified telemetry substrate (:mod:`repro.obs`).

Covers the metrics registry semantics (bucketing, label cardinality,
concurrent increments, Prometheus rendering), hot-path tracing (nesting,
contextvar isolation across the micro-batcher's worker threads), the
slow-query log, the ``include_timings`` debug envelope, the worker's
``/v1/metrics`` endpoint, request-id honoring, and the lint rule that
keeps new ad-hoc counter dicts out of the serving layers.
"""

from __future__ import annotations

import json
import logging
import re
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.config import ServiceConfig
from repro.core.base import Expander
from repro.obs import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsRegistry,
    Trace,
    activate,
    current_trace,
    merge_bucket_lists,
    span,
)
from repro.obs.metrics import MAX_SERIES_PER_FAMILY
from repro.serve import (
    ExpandOptions,
    ExpandRequest,
    ExpansionHTTPServer,
    ExpansionService,
)
from repro.serve.batcher import MicroBatcher
from repro.types import ExpansionResult

# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


class ObsStubExpander(Expander):
    name = "stub"

    def _fit(self, dataset) -> None:
        pass

    def _expand(self, query, top_k) -> ExpansionResult:
        scored = [(eid, 1.0 / (1.0 + eid)) for eid in self.dataset.entity_ids()]
        return ExpansionResult.from_scores(query.query_id, scored)


def make_service(dataset, **config_kwargs) -> ExpansionService:
    config = ServiceConfig(batch_wait_ms=0.0, **config_kwargs)
    return ExpansionService(
        dataset, config=config, factories={"stub": lambda _res: ObsStubExpander()}
    )


def http_get(url: str, headers: dict | None = None):
    request = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, response.read(), dict(response.headers)


def http_post(url: str, payload: dict, headers: dict | None = None):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


# ---------------------------------------------------------------------------
# counters and gauges
# ---------------------------------------------------------------------------


class TestCountersAndGauges:
    def test_counter_accumulates_per_label_set(self):
        registry = MetricsRegistry()
        hits = registry.counter("repro_t_hits_total")
        hits.inc(method="a")
        hits.inc(2, method="a")
        hits.inc(method="b")
        assert hits.value(method="a") == 3
        assert hits.value(method="b") == 1
        assert hits.total() == 4

    def test_counter_rejects_decrements(self):
        counter = MetricsRegistry().counter("repro_t_down_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways_and_tracks_max(self):
        gauge = MetricsRegistry().gauge("repro_t_size")
        gauge.set(5)
        gauge.dec(2)
        assert gauge.value() == 3
        gauge.set_max(10)
        gauge.set_max(7)  # lower: ignored
        assert gauge.value() == 10

    def test_family_type_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("repro_t_conflict")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_t_conflict")

    def test_invalid_metric_name_is_rejected(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            MetricsRegistry().counter("bad name!")

    def test_same_name_returns_the_same_family(self):
        registry = MetricsRegistry()
        assert registry.counter("repro_t_one") is registry.counter("repro_t_one")

    def test_disabled_registry_hands_out_noops(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("repro_t_off_total")
        counter.inc(5)
        assert counter.total() == 0
        histogram = registry.histogram("repro_t_off_ms")
        histogram.observe(1.0)
        assert histogram.count() == 0
        assert registry.render_prometheus() == "\n"


# ---------------------------------------------------------------------------
# histograms
# ---------------------------------------------------------------------------


class TestHistograms:
    def test_bucketing_and_percentile_interpolation(self):
        histogram = MetricsRegistry().histogram(
            "repro_t_lat_ms", buckets=(10.0, 20.0, 40.0)
        )
        for value in (5.0, 15.0, 35.0):
            histogram.observe(value)
        # p50 target rank 1.5 lands in the (10, 20] bucket, halfway through
        # its single observation: 10 + (20 - 10) * 0.5.
        assert histogram.percentile(50) == pytest.approx(15.0)
        assert histogram.count() == 3
        assert histogram.sum() == pytest.approx(55.0)

    def test_overflow_bucket_reports_the_largest_finite_bound(self):
        histogram = MetricsRegistry().histogram(
            "repro_t_inf_ms", buckets=(10.0, 20.0)
        )
        histogram.observe(500.0)
        assert histogram.percentile(99) == 20.0

    def test_merged_payload_is_cumulative_and_ends_at_inf(self):
        histogram = MetricsRegistry().histogram(
            "repro_t_merge_ms", buckets=(10.0, 20.0)
        )
        histogram.observe(5.0, method="a")
        histogram.observe(15.0, method="b")
        histogram.observe(100.0, method="b")
        merged = histogram.merged()
        assert merged["count"] == 3
        assert merged["buckets"] == [["10", 1], ["20", 2], ["+Inf", 3]]

    def test_merge_bucket_lists_joins_worker_payloads(self):
        r1 = MetricsRegistry().histogram("repro_t_w1_ms", buckets=(10.0, 20.0))
        r2 = MetricsRegistry().histogram("repro_t_w2_ms", buckets=(10.0, 20.0))
        for _ in range(9):
            r1.observe(5.0)
        r2.observe(15.0)
        fleet = merge_bucket_lists([r1.merged(), r2.merged()])
        assert fleet["count"] == 10
        assert fleet["sum"] == pytest.approx(60.0)
        assert fleet["p50"] <= 10.0
        assert fleet["p99"] > 10.0

    def test_merge_bucket_lists_of_nothing_is_zero(self):
        assert merge_bucket_lists([]) == {
            "count": 0, "sum": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0,
        }

    def test_label_cardinality_is_capped(self):
        counter = MetricsRegistry().counter("repro_t_cap_total")
        for index in range(MAX_SERIES_PER_FAMILY + 5):
            counter.inc(worker=f"w{index}")
        assert len(counter.series()) == MAX_SERIES_PER_FAMILY
        assert counter.dropped_series == 5
        # existing series keep counting after the cap is hit.
        counter.inc(worker="w0")
        assert counter.value(worker="w0") == 2

    def test_concurrent_increments_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_t_conc_total")
        histogram = registry.histogram("repro_t_conc_ms", buckets=(1.0, 10.0))

        def hammer():
            for _ in range(500):
                counter.inc(method="x")
                histogram.observe(0.5, method="x")

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.total() == 4000
        assert histogram.count() == 4000


# ---------------------------------------------------------------------------
# Prometheus rendering
# ---------------------------------------------------------------------------


class TestPrometheusRendering:
    def test_golden_exposition_text(self):
        registry = MetricsRegistry(const_labels={"dataset": "fp123"})
        hits = registry.counter("repro_test_hits_total", "Test hits.")
        hits.inc(method="alpha")
        hits.inc(2, method="beta")
        size = registry.gauge("repro_test_size", "Test size.")
        size.set(3)
        latency = registry.histogram(
            "repro_test_latency_ms", "Test latency.", buckets=(1.0, 2.0)
        )
        latency.observe(0.5)
        latency.observe(1.5)
        assert registry.render_prometheus() == (
            "# HELP repro_test_hits_total Test hits.\n"
            "# TYPE repro_test_hits_total counter\n"
            'repro_test_hits_total{dataset="fp123",method="alpha"} 1\n'
            'repro_test_hits_total{dataset="fp123",method="beta"} 2\n'
            "# HELP repro_test_latency_ms Test latency.\n"
            "# TYPE repro_test_latency_ms histogram\n"
            'repro_test_latency_ms_bucket{dataset="fp123",le="1"} 1\n'
            'repro_test_latency_ms_bucket{dataset="fp123",le="2"} 2\n'
            'repro_test_latency_ms_bucket{dataset="fp123",le="+Inf"} 2\n'
            'repro_test_latency_ms_sum{dataset="fp123"} 2\n'
            'repro_test_latency_ms_count{dataset="fp123"} 2\n'
            "# HELP repro_test_size Test size.\n"
            "# TYPE repro_test_size gauge\n"
            'repro_test_size{dataset="fp123"} 3\n'
        )

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_t_esc_total").inc(q='say "hi"\n')
        rendered = registry.render_prometheus()
        assert 'q="say \\"hi\\"\\n"' in rendered


# ---------------------------------------------------------------------------
# tracing
# ---------------------------------------------------------------------------


class TestTracing:
    def test_span_is_a_noop_without_an_active_trace(self):
        with span("anything") as active:
            assert active is None

    def test_nesting_records_parent_child(self):
        trace = Trace(request_id="req-t")
        with activate(trace):
            with span("outer"):
                with span("inner", detail="x"):
                    pass
        spans = {entry.name: entry for entry in trace.spans()}
        assert spans["outer"].parent is None
        assert spans["inner"].parent == "outer"
        assert spans["inner"].meta == {"detail": "x"}
        assert spans["inner"].duration_ms <= spans["outer"].duration_ms

    def test_traces_do_not_leak_across_threads(self):
        trace = Trace()
        seen_in_thread: list = []

        def probe():
            seen_in_thread.append(current_trace())
            with span("thread_side"):
                pass

        with activate(trace):
            worker = threading.Thread(target=probe)
            worker.start()
            worker.join()
        assert seen_in_thread == [None]  # fresh thread: no inherited trace
        assert trace.spans() == []  # and its span() was a no-op

    def test_graft_rebases_and_reparents(self):
        caller, batch = Trace(), Trace()
        batch.add_span("execute", 1.0, 2.0)
        batch.add_span("expand", 1.5, 1.0, parent="execute")
        caller.graft(batch, parent="batch")
        spans = {entry.name: entry for entry in caller.spans()}
        assert spans["execute"].parent == "batch"  # orphan adopted
        assert spans["expand"].parent == "execute"  # existing parent kept

    def test_micro_batcher_stamps_caller_traces_across_threads(self, tiny_dataset):
        """Each concurrent caller gets queue_wait + the shared execute span
        on *its own* trace, even though execution runs on a pool thread."""
        release = threading.Event()

        def execute(method, top_k, queries, retrieval=None):
            release.wait(timeout=5.0)
            return [
                ExpansionResult.from_scores(query.query_id, [(1, 1.0)])
                for query in queries
            ]

        batcher = MicroBatcher(execute, max_batch_size=2, max_wait_ms=50.0)
        queries = tiny_dataset.queries[:2]
        traces = [Trace(request_id=f"req-{i}") for i in range(2)]

        def call(index):
            with activate(traces[index]):
                future = batcher.submit("stub", queries[index], 10)
                if index == 1:
                    release.set()  # both joined (or the window flushed)
                return future.result(timeout=10)

        try:
            with ThreadPoolExecutor(max_workers=2) as pool:
                results = list(pool.map(call, range(2)))
        finally:
            release.set()
            batcher.shutdown()
        assert all(results)
        for trace in traces:
            names = [entry.name for entry in trace.spans()]
            assert names.count("queue_wait") == 1
            assert "execute" in names
            parents = {e.name: e.parent for e in trace.spans()}
            assert parents["queue_wait"] == "batch"


# ---------------------------------------------------------------------------
# service integration: include_timings + slow-query log
# ---------------------------------------------------------------------------


class TestServiceTimings:
    def test_include_timings_ships_debug_spans(self, tiny_dataset):
        service = make_service(tiny_dataset)
        query_id = tiny_dataset.queries[0].query_id
        with service:
            response = service.submit(
                ExpandRequest(
                    method="stub",
                    query_id=query_id,
                    options=ExpandOptions(top_k=5, include_timings=True),
                )
            )
        assert response.timings is not None
        names = [entry["name"] for entry in response.timings]
        assert "cache_lookup" in names
        assert "batch" in names
        assert "expand" in names
        # top-level stage spans must fit inside the end-to-end latency
        # (tolerance: timings round to µs and the clock reads differ).
        top_level = sum(
            entry["duration_ms"]
            for entry in response.timings
            if "parent" not in entry
        )
        assert top_level <= response.latency_ms + 5.0
        payload = response.to_v1_dict()
        assert [e["name"] for e in payload["debug"]["timings"]] == names

    def test_timings_are_absent_by_default(self, tiny_dataset):
        service = make_service(tiny_dataset)
        query_id = tiny_dataset.queries[0].query_id
        with service:
            response = service.submit(
                ExpandRequest(method="stub", query_id=query_id)
            )
        assert response.timings is None
        assert "debug" not in response.to_v1_dict()

    def test_slow_query_log_emits_structured_json(self, tiny_dataset, caplog):
        service = make_service(tiny_dataset, slow_query_ms=0.0)
        query_id = tiny_dataset.queries[0].query_id
        with caplog.at_level(logging.WARNING, logger="repro.obs.slowlog"):
            with service:
                service.submit(ExpandRequest(method="stub", query_id=query_id))
        records = [
            json.loads(record.message)
            for record in caplog.records
            if record.name == "repro.obs.slowlog"
        ]
        assert len(records) == 1
        entry = records[0]
        assert entry["event"] == "slow_query"
        assert entry["method"] == "stub"
        assert entry["query_id"] == query_id
        assert entry["latency_ms"] >= 0.0
        assert entry["threshold_ms"] == 0.0
        assert any(s["name"] == "batch" for s in entry["spans"])

    def test_fast_queries_stay_out_of_the_slow_log(self, tiny_dataset, caplog):
        service = make_service(tiny_dataset, slow_query_ms=1e9)
        query_id = tiny_dataset.queries[0].query_id
        with caplog.at_level(logging.WARNING, logger="repro.obs.slowlog"):
            with service:
                service.submit(ExpandRequest(method="stub", query_id=query_id))
        assert not [r for r in caplog.records if r.name == "repro.obs.slowlog"]

    def test_stats_service_block_carries_latency_percentiles(self, tiny_dataset):
        service = make_service(tiny_dataset)
        with service:
            for query in tiny_dataset.queries[:3]:
                service.submit(ExpandRequest(method="stub", query_id=query.query_id))
            stats = service.stats()
        latency = stats["service"]["latency_ms"]
        assert latency["count"] == 3
        for key in ("p50", "p90", "p99", "sum", "buckets"):
            assert key in latency


# ---------------------------------------------------------------------------
# worker HTTP surface: /v1/metrics + request-id honoring
# ---------------------------------------------------------------------------


class TestWorkerExposition:
    @pytest.fixture()
    def server(self, tiny_dataset):
        server = ExpansionHTTPServer(make_service(tiny_dataset), port=0).start()
        yield server
        server.shutdown()

    def test_metrics_endpoint_renders_prometheus_text(self, server, tiny_dataset):
        query_id = tiny_dataset.queries[0].query_id
        http_post(
            server.url + "/v1/expand", {"method": "stub", "query_id": query_id}
        )
        status, body, headers = http_get(server.url + "/v1/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        text = body.decode("utf-8")
        assert "# TYPE repro_service_requests_total counter" in text
        assert "# TYPE repro_request_latency_ms histogram" in text
        fingerprint = tiny_dataset.fingerprint()
        assert f'dataset="{fingerprint}"' in text
        assert 'method="stub"' in text
        assert re.search(r"repro_service_requests_total\{[^}]*\} 1", text)

    def test_valid_inbound_request_id_is_honored(self, server, tiny_dataset):
        query_id = tiny_dataset.queries[0].query_id
        status, envelope, headers = http_post(
            server.url + "/v1/expand",
            {"method": "stub", "query_id": query_id},
            headers={"X-Request-Id": "trace-me.01"},
        )
        assert status == 200
        assert envelope["request_id"] == "trace-me.01"
        assert headers["X-Request-Id"] == "trace-me.01"

    def test_malformed_inbound_request_id_is_replaced(self, server, tiny_dataset):
        query_id = tiny_dataset.queries[0].query_id
        status, envelope, headers = http_post(
            server.url + "/v1/expand",
            {"method": "stub", "query_id": query_id},
            headers={"X-Request-Id": "bad id\twith spaces"},
        )
        assert status == 200
        assert envelope["request_id"].startswith("req-")
        assert headers["X-Request-Id"] == envelope["request_id"]


# ---------------------------------------------------------------------------
# lint: no new ad-hoc counter dicts outside repro.obs
# ---------------------------------------------------------------------------

_AD_HOC_COUNTER = re.compile(
    r"self\._(stats|counters|metrics_dict)\s*=\s*(\{\}|\{\s*[\"']|dict\()"
)


class TestNoAdHocCounterDicts:
    def test_serving_layers_use_the_metrics_registry(self):
        """Telemetry counters belong in :mod:`repro.obs` instruments; a
        hand-rolled ``self._stats = {...}`` dict outside it regresses the
        unification this package introduced."""
        src = Path(__file__).resolve().parents[1] / "src" / "repro"
        offenders = []
        for path in sorted(src.rglob("*.py")):
            if "obs" in path.relative_to(src).parts:
                continue
            for number, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1
            ):
                if _AD_HOC_COUNTER.search(line):
                    offenders.append(f"{path.relative_to(src)}:{number}: {line.strip()}")
        assert not offenders, (
            "ad-hoc counter dicts found (use repro.obs.MetricsRegistry):\n"
            + "\n".join(offenders)
        )
