"""Tests for the co-occurrence (PPMI + SVD) embeddings."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.lm.embeddings import CooccurrenceEmbeddings, _ppmi
from repro.utils.mathx import cosine_similarity


class TestPPMI:
    def test_zero_matrix(self):
        assert np.allclose(_ppmi(np.zeros((3, 3))), 0.0)

    def test_non_negative(self):
        rng = np.random.default_rng(0)
        matrix = rng.integers(0, 5, size=(6, 6)).astype(float)
        assert np.all(_ppmi(matrix) >= 0.0)

    def test_independent_rows_have_low_pmi(self):
        # A uniform matrix has no association anywhere: PPMI is exactly zero.
        assert np.allclose(_ppmi(np.ones((4, 4))), 0.0)


class TestCooccurrenceEmbeddings:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ModelError):
            CooccurrenceEmbeddings(dim=0)
        with pytest.raises(ModelError):
            CooccurrenceEmbeddings(window=0)
        with pytest.raises(ModelError):
            CooccurrenceEmbeddings(entity_dim=-1)

    def test_unfitted_access_raises(self):
        embeddings = CooccurrenceEmbeddings()
        with pytest.raises(ModelError):
            embeddings.token_vector("x")
        with pytest.raises(ModelError):
            embeddings.entity_vector(0)

    def test_entity_dim_defaults_to_three_times_token_dim(self):
        assert CooccurrenceEmbeddings(dim=32).entity_dim == 96

    def test_fit_produces_vectors_for_all_entities(self, tiny_dataset):
        embeddings = CooccurrenceEmbeddings(dim=16, seed=1).fit(
            tiny_dataset.corpus, tiny_dataset.entities()[:100]
        )
        for entity in tiny_dataset.entities()[:100]:
            vector = embeddings.entity_vector(entity.entity_id)
            assert vector.shape == (embeddings.entity_dim,)
            assert np.isfinite(vector).all()

    def test_entity_vectors_are_unit_norm(self, tiny_dataset):
        embeddings = CooccurrenceEmbeddings(dim=16, seed=1).fit(
            tiny_dataset.corpus, tiny_dataset.entities()[:50]
        )
        for entity in tiny_dataset.entities()[:50]:
            norm = np.linalg.norm(embeddings.entity_vector(entity.entity_id))
            assert norm == pytest.approx(1.0, abs=1e-6) or norm == pytest.approx(0.0, abs=1e-6)

    def test_same_attribute_entities_more_similar(self, tiny_dataset, resources):
        """Entities sharing an attribute value should on average be closer."""
        embeddings = resources.cooccurrence_embeddings()
        phones = [
            e for e in tiny_dataset.entities() if e.fine_class == "countries"
        ][:60]
        attribute = "continent"
        same, different = [], []
        for i, a in enumerate(phones):
            for b in phones[i + 1 : i + 6]:
                similarity = embeddings.entity_similarity(a.entity_id, b.entity_id)
                if a.attributes[attribute] == b.attributes[attribute]:
                    same.append(similarity)
                else:
                    different.append(similarity)
        assert same and different
        assert np.mean(same) > np.mean(different)

    def test_entity_similarity_of_unknown_entity_is_zero(self, resources):
        embeddings = resources.cooccurrence_embeddings()
        assert embeddings.entity_similarity(10**9, 10**9 + 1) == 0.0

    def test_token_vector_lookup(self, resources):
        embeddings = resources.cooccurrence_embeddings()
        vector = embeddings.token_vector("android")
        assert vector.shape[0] == embeddings.dim

    def test_has_entity(self, tiny_dataset, resources):
        embeddings = resources.cooccurrence_embeddings()
        assert embeddings.has_entity(tiny_dataset.entities()[0].entity_id)
        assert not embeddings.has_entity(10**9)

    def test_related_tokens_closer_than_unrelated(self, resources):
        """Tokens from the same attribute phrase should be closer than random pairs."""
        embeddings = resources.cooccurrence_embeddings()
        related = cosine_similarity(
            embeddings.token_vector("android"), embeddings.token_vector("operating")
        )
        unrelated = cosine_similarity(
            embeddings.token_vector("android"), embeddings.token_vector("continent")
        )
        assert related > unrelated
