"""Tests for the evaluation metrics (PosMAP/NegMAP/P/Comb @K)."""

import pytest

from repro.eval.metrics import (
    MetricSet,
    average_precision_at_k,
    precision_at_k,
    query_metrics,
)
from repro.exceptions import EvaluationError


class TestPrecisionAtK:
    def test_perfect_ranking(self):
        assert precision_at_k([1, 2, 3], {1, 2, 3}, 3) == 100.0

    def test_no_relevant(self):
        assert precision_at_k([1, 2, 3], {9}, 3) == 0.0

    def test_partial(self):
        assert precision_at_k([1, 2, 3, 4], {1, 3}, 4) == 50.0

    def test_k_larger_than_ranking_penalises(self):
        # Only 2 of 10 slots filled with relevant items.
        assert precision_at_k([1, 2], {1, 2}, 10) == 20.0

    def test_position_does_not_matter(self):
        assert precision_at_k([9, 9, 1], {1}, 3) == precision_at_k([1, 9, 9], {1}, 3)

    def test_invalid_k(self):
        with pytest.raises(EvaluationError):
            precision_at_k([1], {1}, 0)

    def test_empty_ranking(self):
        assert precision_at_k([], {1}, 10) == 0.0


class TestAveragePrecisionAtK:
    def test_perfect_ranking(self):
        assert average_precision_at_k([1, 2, 3], {1, 2, 3}, 3) == 100.0

    def test_rank_aware(self):
        early = average_precision_at_k([1, 9, 9, 9], {1}, 4)
        late = average_precision_at_k([9, 9, 9, 1], {1}, 4)
        assert early > late

    def test_empty_relevant_set(self):
        assert average_precision_at_k([1, 2], set(), 10) == 0.0

    def test_normalised_by_min_of_relevant_and_k(self):
        # 5 relevant entities but K=2: finding 2 of them perfectly scores 100.
        assert average_precision_at_k([1, 2], {1, 2, 3, 4, 5}, 2) == 100.0

    def test_bounded_by_100(self):
        assert average_precision_at_k(list(range(50)), set(range(25)), 10) <= 100.0

    def test_invalid_k(self):
        with pytest.raises(EvaluationError):
            average_precision_at_k([1], {1}, -1)


class TestQueryMetrics:
    def test_all_cutoffs_present(self):
        metrics = query_metrics([1, 2, 3], {1}, {2}, cutoffs=(1, 2, 3))
        for k in (1, 2, 3):
            assert k in metrics.pos_map
            assert k in metrics.neg_p

    def test_comb_formula(self):
        metrics = query_metrics([1, 2, 3, 4], {1, 2}, {3, 4}, cutoffs=(4,))
        expected = (metrics.pos_map[4] + 100.0 - metrics.neg_map[4]) / 2.0
        assert metrics.comb_map(4) == pytest.approx(expected)

    def test_perfect_ranking_comb_is_100(self):
        # All positives first, no negatives anywhere in the list.
        metrics = query_metrics([1, 2], {1, 2}, {3, 4}, cutoffs=(2,))
        assert metrics.comb_map(2) == 100.0
        assert metrics.comb_p(2) == 100.0

    def test_worst_ranking_comb_is_0(self):
        metrics = query_metrics([3, 4], {1, 2}, {3, 4}, cutoffs=(2,))
        assert metrics.comb_map(2) == 0.0

    def test_value_lookup(self):
        metrics = query_metrics([1, 2, 3], {1}, {3}, cutoffs=(3,))
        assert metrics.value("pos", "map", 3) == metrics.pos_map[3]
        assert metrics.value("neg", "p", 3) == metrics.neg_p[3]
        assert metrics.value("comb", "map", 3) == metrics.comb_map(3)
        with pytest.raises(EvaluationError):
            metrics.value("banana", "map", 3)

    def test_average_over_map_and_p(self):
        metrics = query_metrics([1, 2, 3], {1, 2}, {3}, cutoffs=(2, 3))
        manual = (
            metrics.pos_map[2] + metrics.pos_map[3] + metrics.pos_p[2] + metrics.pos_p[3]
        ) / 4
        assert metrics.average("pos") == pytest.approx(manual)

    def test_average_map_only(self):
        metrics = query_metrics([1, 2, 3], {1, 2}, {3}, cutoffs=(2, 3))
        manual = (metrics.pos_map[2] + metrics.pos_map[3]) / 2
        assert metrics.average_map("pos") == pytest.approx(manual)


class TestMetricSetMean:
    def test_mean_of_identical_sets(self):
        a = query_metrics([1, 2], {1}, {2}, cutoffs=(2,))
        mean = MetricSet.mean([a, a, a])
        assert mean.pos_map[2] == a.pos_map[2]

    def test_mean_averages_values(self):
        a = query_metrics([1, 2], {1, 2}, set(), cutoffs=(2,))  # pos P@2 = 100
        b = query_metrics([3, 4], {1, 2}, set(), cutoffs=(2,))  # pos P@2 = 0
        mean = MetricSet.mean([a, b])
        assert mean.pos_p[2] == pytest.approx(50.0)

    def test_empty_collection_rejected(self):
        with pytest.raises(EvaluationError):
            MetricSet.mean([])

    def test_inconsistent_cutoffs_rejected(self):
        a = query_metrics([1], {1}, set(), cutoffs=(1,))
        b = query_metrics([1], {1}, set(), cutoffs=(2,))
        with pytest.raises(EvaluationError):
            MetricSet.mean([a, b])

    def test_to_dict_roundtrip_fields(self):
        payload = query_metrics([1, 2], {1}, {2}, cutoffs=(2,)).to_dict()
        assert payload["cutoffs"] == [2]
        assert 2 in payload["pos_map"]
