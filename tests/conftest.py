"""Shared fixtures.

The tiny dataset and the shared model resources are expensive enough (a few
seconds) that they are built once per test session; tests must therefore
treat them as read-only.
"""

from __future__ import annotations

import pytest

from repro.config import DatasetConfig, EncoderConfig
from repro.core.resources import SharedResources
from repro.dataset.builder import build_dataset


@pytest.fixture(scope="session")
def tiny_config() -> DatasetConfig:
    return DatasetConfig.tiny(seed=13)


@pytest.fixture(scope="session")
def tiny_dataset(tiny_config):
    """A small but fully-featured dataset shared by the whole test session."""
    return build_dataset(tiny_config)


@pytest.fixture(scope="session")
def resources(tiny_dataset):
    """Shared model resources fitted on the tiny dataset (default configs)."""
    return SharedResources(tiny_dataset, encoder_config=EncoderConfig())


@pytest.fixture(scope="session")
def sample_query(tiny_dataset):
    """A deterministic representative query."""
    return tiny_dataset.queries[0]
