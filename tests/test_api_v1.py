"""Tests for the v1 protocol layer: envelopes, error taxonomy, options,
pagination, and the async fit-job subsystem."""

from __future__ import annotations

import time

import pytest

import repro.api.v1 as apiv1
from repro.api import (
    API_VERSION,
    ExpandOptions,
    error_payload,
    exception_for_payload,
    new_request_id,
)
from repro.api.jobs import JobManager
from repro.config import ServiceConfig
from repro.core.base import Expander
from repro.exceptions import (
    DatasetError,
    JobConflictError,
    JobNotFoundError,
    ServiceError,
    ServiceUnavailableError,
    UnknownMethodError,
)
from repro.serve import ExpandRequest, ExpansionService
from repro.types import ExpansionResult


class CountingExpander(Expander):
    name = "stub"

    def __init__(self, fit_delay: float = 0.0):
        super().__init__()
        self.fit_calls = 0
        self.fit_delay = fit_delay

    def _fit(self, dataset) -> None:
        self.fit_calls += 1
        if self.fit_delay:
            time.sleep(self.fit_delay)

    def _expand(self, query, top_k) -> ExpansionResult:
        scored = [(eid, 1.0 / (1.0 + eid)) for eid in self.dataset.entity_ids()]
        return ExpansionResult.from_scores(query.query_id, scored)


def make_service(dataset, fit_delay: float = 0.0):
    created: list[CountingExpander] = []

    def factory(_resources):
        expander = CountingExpander(fit_delay=fit_delay)
        created.append(expander)
        return expander

    service = ExpansionService(
        dataset,
        config=ServiceConfig(batch_wait_ms=0.0),
        factories={"stub": factory},
    )
    return service, created


@pytest.fixture()
def api(tiny_dataset):
    service, created = make_service(tiny_dataset)
    with service:
        yield apiv1.ApiV1(service), service, created


class TestEnvelope:
    def test_request_ids_are_unique_and_prefixed(self):
        ids = {new_request_id() for _ in range(100)}
        assert len(ids) == 100
        assert all(rid.startswith("req-") for rid in ids)

    def test_success_envelope_shape(self, api):
        dispatcher, _, _ = api
        result = dispatcher.dispatch("GET", "/v1/healthz")
        body = apiv1.render_v1_body(result, "req-test")
        assert body == {
            "api_version": API_VERSION,
            "request_id": "req-test",
            "data": {"status": "ok"},
        }

    def test_error_envelope_shape(self, api):
        dispatcher, _, _ = api
        result = dispatcher.dispatch("POST", "/v1/expand", {"method": "nope", "query_id": "q"})
        assert result.status == 404
        body = apiv1.render_v1_body(result, "req-test")
        assert body["api_version"] == API_VERSION
        assert set(body["error"]) == {"error", "code", "message", "details", "retryable"}
        assert body["error"]["code"] == "unknown_method"

    def test_unknown_v1_route_is_enveloped_404(self, api):
        dispatcher, _, _ = api
        result = dispatcher.dispatch("GET", "/v1/nothing")
        assert result.status == 404
        assert result.error["code"] == "not_found"


class TestErrorTaxonomy:
    @pytest.mark.parametrize(
        "exc, status, code, retryable",
        [
            (ServiceError("bad"), 400, "invalid_request", False),
            (UnknownMethodError("nope"), 404, "unknown_method", False),
            (DatasetError("missing"), 404, "not_found", False),
            (JobNotFoundError("gone"), 404, "job_not_found", False),
            (JobConflictError("busy"), 409, "conflict", False),
            (ServiceUnavailableError("down"), 503, "unavailable", True),
            (RuntimeError("boom"), 500, "internal", True),
        ],
    )
    def test_exception_to_payload(self, exc, status, code, retryable):
        got_status, payload = error_payload(exc)
        assert got_status == status
        assert payload["code"] == code
        assert payload["retryable"] is retryable
        assert payload["error"] == type(exc).__name__

    def test_round_trip_back_to_exception_classes(self):
        for exc in (
            UnknownMethodError("nope"),
            DatasetError("missing"),
            JobNotFoundError("gone"),
            JobConflictError("busy"),
            ServiceUnavailableError("down"),
        ):
            _, payload = error_payload(exc)
            rebuilt = exception_for_payload(payload)
            assert type(rebuilt) is type(exc)
            assert str(rebuilt) == str(exc)

    def test_details_survive_the_payload(self):
        exc = JobConflictError("busy")
        exc.details = {"job_id": "fit-1"}
        _, payload = error_payload(exc)
        assert payload["details"] == {"job_id": "fit-1"}
        assert exception_for_payload(payload).details == {"job_id": "fit-1"}


class TestExpandOptions:
    def test_defaults(self):
        options = ExpandOptions.from_dict({})
        assert options == ExpandOptions()

    def test_rejects_unknown_fields(self):
        with pytest.raises(ServiceError):
            ExpandOptions.from_dict({"topk": 5})

    @pytest.mark.parametrize(
        "payload",
        [
            {"top_k": True},
            {"top_k": 0},
            {"offset": -1},
            {"offset": True},
            {"limit": 0},
            {"use_cache": 1},
            {"return_names": "yes"},
        ],
    )
    def test_rejects_bad_values(self, payload):
        with pytest.raises(ServiceError):
            ExpandOptions.from_dict(payload)

    def test_request_rejects_mixed_option_spellings(self):
        with pytest.raises(ServiceError):
            ExpandRequest.from_dict(
                {"method": "m", "query_id": "q", "top_k": 5, "options": {"top_k": 5}}
            )

    def test_request_rejects_boolean_ids_and_top_k(self):
        """Satellite: int(True) == 1 must not smuggle booleans into ids."""
        with pytest.raises(ServiceError):
            ExpandRequest.from_dict({"method": "m", "query_id": "q", "top_k": True})
        with pytest.raises(ServiceError):
            ExpandRequest.from_dict(
                {"method": "m", "class_id": "c", "positive_seed_ids": [True]}
            )
        with pytest.raises(ServiceError):
            ExpandRequest.from_dict(
                {"method": "m", "class_id": "c",
                 "positive_seed_ids": [1], "negative_seed_ids": [2, False]}
            )


class TestPagination:
    def test_offset_limit_slice_the_ranking(self, api, tiny_dataset):
        dispatcher, service, _ = api
        qid = tiny_dataset.queries[0].query_id
        full = service.submit(
            ExpandRequest(method="stub", query_id=qid, options=ExpandOptions(top_k=10))
        )
        page = service.submit(
            ExpandRequest(
                method="stub",
                query_id=qid,
                options=ExpandOptions(top_k=10, offset=4, limit=3),
            )
        )
        assert page.total == 10
        assert page.offset == 4
        assert page.entity_ids() == full.entity_ids()[4:7]
        # pagination is a view over the same cached ranking
        assert page.cached is True

    def test_return_names_false_omits_names_on_the_wire(self, api, tiny_dataset):
        dispatcher, _, _ = api
        result = dispatcher.dispatch(
            "POST",
            "/v1/expand",
            {
                "method": "stub",
                "query_id": tiny_dataset.queries[0].query_id,
                "options": {"top_k": 5, "return_names": False},
            },
        )
        assert result.status == 200
        rows = result.data.to_v1_dict()["ranking"]
        assert rows and all(set(row) == {"entity_id", "score"} for row in rows)


class TestBatchEndpoint:
    def test_items_fail_independently(self, api, tiny_dataset):
        dispatcher, _, _ = api
        qid = tiny_dataset.queries[0].query_id
        result = dispatcher.dispatch(
            "POST",
            "/v1/expand/batch",
            {
                "requests": [
                    {"method": "stub", "query_id": qid, "options": {"top_k": 5}},
                    {"method": "nope", "query_id": qid},
                ]
            },
        )
        assert result.status == 200
        first, second = result.data["responses"]
        assert len(first["response"]["ranking"]) == 5
        assert second["error"]["code"] == "unknown_method"

    def test_empty_and_oversized_batches_are_rejected(self, api):
        dispatcher, _, _ = api
        assert dispatcher.dispatch("POST", "/v1/expand/batch", {"requests": []}).status == 400
        too_many = {"requests": [{"method": "stub"}] * (apiv1.MAX_BATCH_REQUESTS + 1)}
        assert dispatcher.dispatch("POST", "/v1/expand/batch", too_many).status == 400


class TestFitJobs:
    def test_fit_job_lifecycle_and_warm_expand(self, tiny_dataset):
        """Acceptance: POST /v1/fits is async; the later expand never fits."""
        service, created = make_service(tiny_dataset, fit_delay=0.2)
        with service:
            dispatcher = apiv1.ApiV1(service)
            started = time.perf_counter()
            result = dispatcher.dispatch("POST", "/v1/fits", {"method": "stub"})
            submit_s = time.perf_counter() - started
            assert result.status == 202
            assert submit_s < 0.15  # returned before the 0.2 s fit finished
            job = result.data["job"]
            assert job["status"] in ("queued", "running")

            final = service.jobs.wait(job["job_id"], timeout=10.0)
            assert final.status == "succeeded"
            assert final.outcome == "fitted"
            assert created[0].fit_calls == 1

            fits_before = service.stats()["registry"]["fits"]
            expand = dispatcher.dispatch(
                "POST",
                "/v1/expand",
                {"method": "stub", "query_id": tiny_dataset.queries[0].query_id},
            )
            assert expand.status == 200
            # the expand was served warm: no in-request fit happened.
            assert service.stats()["registry"]["fits"] == fits_before == 1
            assert created[0].fit_calls == 1

    def test_conflicting_fit_is_409_with_job_id(self, tiny_dataset):
        service, _ = make_service(tiny_dataset, fit_delay=0.2)
        with service:
            dispatcher = apiv1.ApiV1(service)
            first = dispatcher.dispatch("POST", "/v1/fits", {"method": "stub"})
            second = dispatcher.dispatch("POST", "/v1/fits", {"method": "stub"})
            assert second.status == 409
            assert second.error["code"] == "conflict"
            assert second.error["details"]["job_id"] == first.data["job"]["job_id"]
            service.jobs.wait(first.data["job"]["job_id"], timeout=10.0)

    def test_unknown_method_and_job_are_404(self, api):
        dispatcher, _, _ = api
        assert dispatcher.dispatch("POST", "/v1/fits", {"method": "nope"}).status == 404
        missing = dispatcher.dispatch("GET", "/v1/fits/fit-does-not-exist")
        assert missing.status == 404
        assert missing.error["code"] == "job_not_found"

    def test_failed_fit_reports_the_taxonomy_error(self, tiny_dataset):
        def exploding(_resources):
            raise RuntimeError("factory exploded")

        service = ExpansionService(
            tiny_dataset,
            config=ServiceConfig(batch_wait_ms=0.0),
            factories={"boom": exploding},
        )
        with service:
            job = service.start_fit("boom")
            final = service.jobs.wait(job.job_id, timeout=10.0)
            assert final.status == "failed"
            assert final.error["code"] == "internal"
            assert "factory exploded" in final.error["message"]

    def test_pinned_fit_survives_eviction_pressure(self, tiny_dataset):
        service, created = make_service(tiny_dataset)
        with service:
            job = service.start_fit("stub", pin=True)
            service.jobs.wait(job.job_id, timeout=10.0)
            assert "stub" in service.stats()["registry"]["pinned"]

    def test_jobs_listing_is_most_recent_first(self, tiny_dataset):
        service, _ = make_service(tiny_dataset)
        with service:
            dispatcher = apiv1.ApiV1(service)
            job = service.start_fit("stub")
            service.jobs.wait(job.job_id, timeout=10.0)
            listing = dispatcher.dispatch("GET", "/v1/fits")
            assert listing.status == 200
            assert listing.data["count"] == 1
            assert listing.data["jobs"][0]["job_id"] == job.job_id

    def test_shutdown_fails_queued_jobs(self, tiny_dataset):
        service, _ = make_service(tiny_dataset, fit_delay=0.3)
        running = service.start_fit("stub")
        service.close()
        job = service.jobs.get(running.job_id)
        # either it finished before shutdown joined, or it was failed as queued
        assert job.status in ("succeeded", "failed", "running")
        with pytest.raises(ServiceUnavailableError):
            service.start_fit("stub")


class TestJobManagerHistory:
    def test_history_is_bounded_to_finished_jobs(self, tiny_dataset):
        service, _ = make_service(tiny_dataset)
        with service:
            manager = JobManager(service.registry, history_limit=3)
            job_ids = []
            for _ in range(6):
                job = manager.submit("stub")
                manager.wait(job.job_id, timeout=10.0)
                job_ids.append(job.job_id)
            assert len(manager.list()) <= 4  # limit + the in-flight slot
            with pytest.raises(JobNotFoundError):
                manager.get(job_ids[0])
            manager.shutdown()
