"""Numpy language-model substrates.

These components stand in for the paper's pretrained models:

* :class:`~repro.lm.context_encoder.ContextEncoder` — BERT-base masked-entity
  encoder substitute (hidden state at the ``[MASK]`` position);
* :class:`~repro.lm.causal_lm.CausalEntityLM` — LLaMA-7B substitute serving
  next-token distributions and entity-conditional probabilities;
* :class:`~repro.lm.oracle.OracleLLM` — GPT-4 substitute with ground-truth
  access degraded by popularity-dependent noise and hallucinations.
"""

from repro.lm.optim import AdamOptimizer
from repro.lm.losses import (
    info_nce_loss,
    label_smoothed_cross_entropy,
)
from repro.lm.embeddings import CooccurrenceEmbeddings
from repro.lm.context_encoder import ContextEncoder, EntityRepresentations
from repro.lm.projection import ProjectionHead
from repro.lm.causal_lm import CausalEntityLM, NGramLanguageModel
from repro.lm.oracle import OracleLLM

__all__ = [
    "AdamOptimizer",
    "info_nce_loss",
    "label_smoothed_cross_entropy",
    "CooccurrenceEmbeddings",
    "ContextEncoder",
    "EntityRepresentations",
    "ProjectionHead",
    "CausalEntityLM",
    "NGramLanguageModel",
    "OracleLLM",
]
