"""Simulated GPT-4 oracle.

The paper uses GPT-4 in three roles: (i) as a prompt-only baseline expander,
(ii) to mine the contrastive training lists ``L_pos`` / ``L_neg`` from the
initial expansion, and (iii) implicitly as the quality ceiling for
chain-of-thought labels.  This class reproduces all three with a noisy view
of the ground-truth attributes:

* the probability of mis-reading an attribute grows as entity popularity
  shrinks (GPT-4's documented weakness on long-tail entities);
* a fraction of generated entries are hallucinated names that do not exist
  in the candidate vocabulary;
* inferring *negative* attributes (contrasting positive and negative seeds)
  carries extra error, matching the paper's observation that negative
  attribute reasoning is the hardest step.
"""

from __future__ import annotations

from collections import Counter
from typing import Mapping, Sequence

from repro.config import OracleConfig
from repro.exceptions import ModelError
from repro.types import Entity
from repro.utils.rng import RandomState

_FAKE_NAME_PARTS = (
    "Zephyr", "Quantum", "Nimbus", "Vertex", "Aurora", "Solstice", "Pinnacle",
    "Mirage", "Cascade", "Obelisk",
)


class OracleLLM:
    """A noisy, ground-truth-backed large language model stand-in."""

    def __init__(
        self,
        entities: Sequence[Entity],
        attribute_values: Mapping[str, Mapping[str, tuple[str, ...]]],
        config: OracleConfig | None = None,
        class_descriptions: Mapping[str, str] | None = None,
    ):
        """``attribute_values`` maps fine class → attribute → possible values."""
        self.config = config or OracleConfig()
        self.config.validate()
        self._rng = RandomState(self.config.seed)
        self._entities = {entity.entity_id: entity for entity in entities}
        self._attribute_values = {
            cls: {attr: tuple(vals) for attr, vals in attrs.items()}
            for cls, attrs in attribute_values.items()
        }
        self._class_descriptions = dict(class_descriptions or {})
        #: cached noisy attribute reads so the oracle is self-consistent.
        self._belief_cache: dict[tuple[int, str], str | None] = {}

    # -- attribute knowledge ---------------------------------------------------
    def _error_probability(self, entity: Entity) -> float:
        long_tail_weight = 1.0 - max(min(entity.popularity, 1.0), 0.0)
        return min(
            1.0,
            self.config.base_error_rate
            + long_tail_weight * self.config.long_tail_error_rate,
        )

    def read_attribute(self, entity_id: int, attribute: str) -> str | None:
        """The oracle's belief about an attribute value (noisy, cached)."""
        key = (entity_id, attribute)
        if key in self._belief_cache:
            return self._belief_cache[key]
        entity = self._entities.get(entity_id)
        if entity is None:
            raise ModelError(f"unknown entity {entity_id}")
        true_value = entity.attributes.get(attribute)
        belief: str | None
        if true_value is None:
            belief = None
        else:
            rng = self._rng.child("read", entity_id, attribute)
            if rng.random() < self._error_probability(entity):
                choices = self._attribute_values.get(entity.fine_class or "", {}).get(
                    attribute, ()
                )
                wrong = [value for value in choices if value != true_value]
                belief = wrong[rng.integers(0, len(wrong))] if wrong else None
            else:
                belief = true_value
        self._belief_cache[key] = belief
        return belief

    # -- reasoning -------------------------------------------------------------
    def infer_shared_attributes(self, entity_ids: Sequence[int]) -> dict[str, str]:
        """Attributes on which the (noisily read) entities agree almost unanimously.

        A high agreement threshold (80% of the seeds) keeps attributes the
        seeds merely share by chance from being mistaken for the intended
        constraint — the same conservative reading a careful prompt would
        elicit from GPT-4.
        """
        if not entity_ids:
            return {}
        first = self._entities.get(entity_ids[0])
        if first is None or first.fine_class is None:
            return {}
        attributes = self._attribute_values.get(first.fine_class, {})
        threshold = max(2, int(0.8 * len(entity_ids) + 0.5))
        shared: dict[str, str] = {}
        for attribute in attributes:
            votes = Counter(
                value
                for value in (
                    self.read_attribute(eid, attribute) for eid in entity_ids
                )
                if value is not None
            )
            if not votes:
                continue
            value, count = votes.most_common(1)[0]
            if count >= threshold:
                shared[attribute] = value
        return shared

    def infer_positive_attributes(self, positive_seed_ids: Sequence[int]) -> dict[str, str]:
        """CoT step: attributes shared by the positive seeds."""
        return self.infer_shared_attributes(positive_seed_ids)

    def infer_negative_attributes(
        self,
        positive_seed_ids: Sequence[int],
        negative_seed_ids: Sequence[int],
    ) -> dict[str, str]:
        """CoT step: attributes shared by negative seeds that differ from the positives.

        This comparison is harder than positive inference (two constraints
        must hold simultaneously), so an additional confusion step is applied:
        with some probability the oracle reports an unrelated attribute.
        """
        negative_shared = self.infer_shared_attributes(negative_seed_ids)
        positive_shared = self.infer_shared_attributes(positive_seed_ids)
        inferred = {
            attribute: value
            for attribute, value in negative_shared.items()
            if positive_shared.get(attribute) != value
        }
        if not negative_seed_ids:
            return inferred
        first = self._entities.get(negative_seed_ids[0])
        if first is None or first.fine_class is None:
            return inferred
        rng = self._rng.child("neg_infer", tuple(sorted(negative_seed_ids)))
        confused: dict[str, str] = {}
        attribute_space = self._attribute_values.get(first.fine_class, {})
        for attribute, value in inferred.items():
            if rng.random() < 2.0 * self.config.base_error_rate:
                other_attributes = [a for a in attribute_space if a != attribute]
                if other_attributes:
                    wrong_attr = other_attributes[rng.integers(0, len(other_attributes))]
                    values = attribute_space[wrong_attr]
                    confused[wrong_attr] = values[rng.integers(0, len(values))]
                    continue
            confused[attribute] = value
        return confused

    def infer_class_name(self, seed_ids: Sequence[int]) -> str:
        """CoT step: a generated class name reflecting the inferred positive attributes."""
        if not seed_ids:
            return "entities"
        first = self._entities.get(seed_ids[0])
        if first is None or first.fine_class is None:
            return "entities"
        base = self._class_descriptions.get(first.fine_class, first.fine_class)
        shared = self.infer_shared_attributes(seed_ids)
        if shared:
            detail = ", ".join(f"{attr} = {value}" for attr, value in sorted(shared.items()))
            return f"{base} with {detail}"
        return base

    # -- selection / expansion ----------------------------------------------------
    def _match_score(self, entity_id: int, assignment: Mapping[str, str]) -> int:
        return sum(
            1
            for attribute, value in assignment.items()
            if self.read_attribute(entity_id, attribute) == value
        )

    def select_similar(
        self,
        seed_ids: Sequence[int],
        candidate_ids: Sequence[int],
        top_t: int = 10,
    ) -> list[int]:
        """Return the ``top_t`` candidates the oracle judges most similar to the seeds.

        Used to mine ``L_pos`` / ``L_neg`` from the initial expansion list
        during ultra-fine-grained contrastive learning.
        """
        shared = self.infer_shared_attributes(seed_ids)
        scored = []
        for candidate in candidate_ids:
            entity = self._entities.get(candidate)
            if entity is None:
                continue
            score = self._match_score(candidate, shared) if shared else 0
            scored.append((candidate, score, entity.popularity))
        scored.sort(key=lambda item: (-item[1], -item[2], item[0]))
        return [candidate for candidate, _, _ in scored[:top_t]]

    def expand(
        self,
        positive_seed_ids: Sequence[int],
        negative_seed_ids: Sequence[int],
        candidate_ids: Sequence[int],
        top_k: int = 100,
    ) -> list[str]:
        """The GPT-4 baseline: a ranked list of generated entity *names*.

        The list may contain hallucinated names (which do not exist in the
        candidate vocabulary) and misses long-tail entities whose attributes
        the oracle mis-reads — both behaviours reported in Section VI-B(5).
        """
        positive_assignment = self.infer_shared_attributes(positive_seed_ids)
        negative_shared = self.infer_shared_attributes(negative_seed_ids)
        negative_assignment = {
            attribute: value
            for attribute, value in negative_shared.items()
            if positive_assignment.get(attribute) != value
        }
        rng = self._rng.child(
            "expand", tuple(sorted(positive_seed_ids)), tuple(sorted(negative_seed_ids))
        )
        seeds = set(positive_seed_ids) | set(negative_seed_ids)
        scored: list[tuple[float, str]] = []
        for candidate in candidate_ids:
            if candidate in seeds:
                continue
            entity = self._entities.get(candidate)
            if entity is None:
                continue
            # Knowledge gate: the oracle simply does not recall very obscure
            # entities often enough to include them.
            if rng.child(candidate).random() < 0.6 * self._error_probability(entity):
                continue
            positive_match = self._match_score(candidate, positive_assignment)
            negative_match = self._match_score(candidate, negative_assignment)
            score = (
                2.0 * positive_match
                - 2.0 * negative_match
                + 0.2 * entity.popularity
            )
            scored.append((score, entity.name))
        scored.sort(key=lambda item: (-item[0], item[1]))
        names = [name for _, name in scored[:top_k]]

        # Hallucinations: insert fabricated names at random positions.
        output: list[str] = []
        for name in names:
            if rng.random() < self.config.hallucination_rate:
                fake = (
                    f"{_FAKE_NAME_PARTS[rng.integers(0, len(_FAKE_NAME_PARTS))]} "
                    f"{_FAKE_NAME_PARTS[rng.integers(0, len(_FAKE_NAME_PARTS))]}"
                )
                output.append(fake)
            output.append(name)
        return output[:top_k]
