"""Causal entity language model: the LLaMA-7B substitute.

GenExpan (Section V-B) needs three capabilities from its backbone LM:

1. next-token distributions for (prefix-tree constrained) beam search;
2. the conditional probability ``P(e' | "{e} is similar to")`` used by the
   entity-selection score (Eq. 8, geometric mean over the tokens of ``e'``);
3. knowledge about entities injected by continued pre-training on the corpus.

The substitute combines an interpolated token n-gram LM (fluency / next-token
distributions) with entity co-occurrence embeddings (entity knowledge).  The
"continued pre-training" step of the paper corresponds to fitting both on the
given corpus; the "- Further pretrain" ablation of Table III drops the corpus
and leaves only a weak prior derived from entity surface forms.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.config import CausalLMConfig
from repro.exceptions import ModelError
from repro.kb.corpus import Corpus
from repro.lm.embeddings import CooccurrenceEmbeddings
from repro.text.prefix_tree import PrefixTree
from repro.text.tokenizer import WordTokenizer
from repro.types import Entity
from repro.utils.rng import RandomState

_BOS = "<s>"
_EOS = "</s>"

#: joins context tokens into one JSON key; the tokenizer never emits it.
_CTX_SEPARATOR = "\x1f"


class NGramLanguageModel:
    """An interpolated n-gram LM with additive smoothing."""

    def __init__(self, order: int = 3, smoothing: float = 0.1):
        if order < 1:
            raise ModelError("order must be >= 1")
        if smoothing <= 0:
            raise ModelError("smoothing must be positive")
        self.order = order
        self.smoothing = smoothing
        #: counts[n][context_tuple][token] for n-gram order n+1.
        self._counts: list[dict[tuple, Counter]] = [
            defaultdict(Counter) for _ in range(order)
        ]
        self._vocab: set[str] = set()
        self._total_tokens = 0

    def fit(self, token_sequences: Iterable[Sequence[str]]) -> "NGramLanguageModel":
        """Accumulate n-gram counts from token sequences (BOS/EOS are added)."""
        for sequence in token_sequences:
            tokens = [_BOS] * (self.order - 1) + list(sequence) + [_EOS]
            self._vocab.update(tokens)
            for i in range(self.order - 1, len(tokens)):
                token = tokens[i]
                self._total_tokens += 1
                for n in range(self.order):
                    context = tuple(tokens[i - n : i])
                    self._counts[n][context][token] += 1
        return self

    @property
    def vocabulary(self) -> set[str]:
        return set(self._vocab)

    def _order_prob(self, n: int, context: tuple, token: str) -> float:
        counter = self._counts[n].get(context)
        vocab_size = max(len(self._vocab), 1)
        if counter is None:
            return 1.0 / vocab_size
        total = sum(counter.values())
        return (counter.get(token, 0) + self.smoothing) / (
            total + self.smoothing * vocab_size
        )

    def probability(self, context: Sequence[str], token: str) -> float:
        """Interpolated probability of ``token`` given ``context``."""
        context = list(context)
        probability = 0.0
        weight_total = 0.0
        for n in range(self.order):
            weight = float(n + 1)  # higher orders weigh more
            ctx = tuple(context[len(context) - n :]) if n > 0 else ()
            probability += weight * self._order_prob(n, ctx, token)
            weight_total += weight
        return probability / weight_total

    def logprob(self, context: Sequence[str], token: str) -> float:
        return float(np.log(max(self.probability(context, token), 1e-12)))

    def sequence_logprob(self, tokens: Sequence[str], context: Sequence[str] = ()) -> float:
        """Sum of token log-probabilities of ``tokens`` continuing ``context``."""
        history = list(context)
        total = 0.0
        for token in tokens:
            total += self.logprob(history, token)
            history.append(token)
        return total

    # -- persistence ------------------------------------------------------------
    def to_state(self) -> dict:
        """A JSON-serialisable snapshot of the fitted counts.

        Counter insertion order is preserved (JSON objects round-trip key
        order) because ``next_token_candidates`` breaks count ties by it.
        """
        return {
            "order": self.order,
            "smoothing": self.smoothing,
            "total_tokens": self._total_tokens,
            "vocab": list(self._vocab),
            "counts": [
                {
                    _CTX_SEPARATOR.join(context): dict(counter)
                    for context, counter in table.items()
                }
                for table in self._counts
            ],
        }

    @classmethod
    def from_state(cls, state: dict) -> "NGramLanguageModel":
        """Reconstruct a model from :meth:`to_state` output."""
        model = cls(order=int(state["order"]), smoothing=float(state["smoothing"]))
        model._total_tokens = int(state["total_tokens"])
        model._vocab = set(state["vocab"])
        counts = state["counts"]
        if len(counts) != model.order:
            raise ModelError(
                f"n-gram state has {len(counts)} count tables, expected {model.order}"
            )
        for n, table in enumerate(counts):
            for joined, counter in table.items():
                context = tuple(joined.split(_CTX_SEPARATOR)) if joined else ()
                model._counts[n][context] = Counter(
                    {token: int(count) for token, count in counter.items()}
                )
        return model

    def next_token_candidates(self, context: Sequence[str], top_k: int = 50) -> list[tuple[str, float]]:
        """Most likely next tokens after ``context`` (highest-order match first)."""
        context = list(context)
        merged: Counter = Counter()
        for n in range(self.order - 1, -1, -1):
            ctx = tuple(context[len(context) - n :]) if n > 0 else ()
            counter = self._counts[n].get(ctx)
            if counter:
                merged.update(counter)
            if len(merged) >= top_k:
                break
        scored = [
            (token, self.logprob(context, token)) for token, _ in merged.most_common(top_k * 2)
        ]
        scored.sort(key=lambda pair: -pair[1])
        return scored[:top_k]


class CausalEntityLM:
    """Entity-aware causal LM used by GenExpan."""

    def __init__(self, config: CausalLMConfig | None = None):
        self.config = config or CausalLMConfig()
        self.config.validate()
        self._tokenizer = WordTokenizer()
        self._rng = RandomState(self.config.seed)
        self._ngram = NGramLanguageModel(
            order=self.config.ngram_order, smoothing=self.config.smoothing
        )
        self._embeddings: CooccurrenceEmbeddings | None = None
        self._entities_by_id: dict[int, Entity] = {}
        self._name_tokens: dict[int, frozenset[str]] = {}
        self._fitted = False

    # -- fitting --------------------------------------------------------------
    def fit(
        self, corpus: Corpus, entities: list[Entity], progress=None
    ) -> "CausalEntityLM":
        """(Continually pre-)train the LM.

        When ``config.further_pretrain`` is set, the n-gram LM ingests the
        corpus sentences and entity co-occurrence embeddings are fitted on it;
        otherwise only entity surface forms are available (a weak prior that
        mirrors using LLaMA without the domain corpus).  ``progress`` (a
        :class:`repro.obs.progress.ProgressReporter`, optional) receives
        step fractions as the pre-training stages complete.
        """
        self._entities_by_id = {entity.entity_id: entity for entity in entities}
        self._name_tokens = {
            entity.entity_id: frozenset(self._tokenizer.tokenize_entity_name(entity.name))
            for entity in entities
        }
        name_sequences = [
            self._tokenizer.tokenize_entity_name(entity.name) for entity in entities
        ]
        if self.config.further_pretrain:
            sentence_sequences = [
                self._tokenizer.tokenize(sentence.text) for sentence in corpus
            ]
            self._ngram.fit(sentence_sequences)
            if progress is not None:
                progress.step(0.3)
            self._ngram.fit(name_sequences)
            if progress is not None:
                progress.step(0.4)
            self._embeddings = CooccurrenceEmbeddings(
                dim=self.config.embedding_dim, seed=self.config.seed
            ).fit(
                corpus,
                entities,
                progress=progress.subrange(0.4, 1.0) if progress is not None else None,
            )
        else:
            self._ngram.fit(name_sequences)
            self._embeddings = None
        if progress is not None:
            progress.step(1.0)
        self._fitted = True
        return self

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise ModelError("causal LM is not fitted")

    # -- persistence ------------------------------------------------------------
    def save_state(self, directory: str | Path) -> None:
        """Persist the continued-pre-training products (counts + embeddings).

        ``save_state``/``load_state`` implement the substrate persistence
        protocol (:mod:`repro.substrate`); the fitted LM is stored once as a
        content-addressed substrate artifact that GenExpan's method manifest
        references.  Entity surface-form lookups are *not* saved: they are
        cheap to rebuild and must come from the dataset the state is
        restored against.
        """
        from repro.store.serialization import write_json_state

        self._require_fitted()
        directory = Path(directory)
        write_json_state(
            directory / "causal_lm.json",
            {
                "config": {
                    "seed": self.config.seed,
                    "ngram_order": self.config.ngram_order,
                    "smoothing": self.config.smoothing,
                    "embedding_dim": self.config.embedding_dim,
                    "affinity_weight": self.config.affinity_weight,
                    "further_pretrain": self.config.further_pretrain,
                },
                "has_embeddings": self._embeddings is not None,
            },
        )
        write_json_state(directory / "ngram.json", self._ngram.to_state())
        if self._embeddings is not None:
            self._embeddings.save(directory / "embeddings")

    @classmethod
    def load_state(
        cls, directory: str | Path, entities: list[Entity], mmap: bool = True
    ) -> "CausalEntityLM":
        """Rebuild a fitted LM from :meth:`save_state` output and ``entities``."""
        from repro.store.serialization import read_json_state

        directory = Path(directory)
        meta = read_json_state(directory / "causal_lm.json")
        lm = cls(CausalLMConfig(**meta["config"]))
        lm._ngram = NGramLanguageModel.from_state(read_json_state(directory / "ngram.json"))
        if meta.get("has_embeddings"):
            lm._embeddings = CooccurrenceEmbeddings.load(directory / "embeddings", mmap=mmap)
        lm._entities_by_id = {entity.entity_id: entity for entity in entities}
        lm._name_tokens = {
            entity.entity_id: frozenset(lm._tokenizer.tokenize_entity_name(entity.name))
            for entity in entities
        }
        lm._fitted = True
        return lm

    # -- entity affinity ---------------------------------------------------------
    def entity_affinity(self, entity_a: int, entity_b: int) -> float:
        """Similarity prior between two entities in [0, 1].

        With continued pre-training this is the cosine of corpus co-occurrence
        embeddings (shifted to [0, 1]); without it, the Jaccard overlap of
        name tokens — a deliberately weak general-knowledge prior.
        """
        self._require_fitted()
        if self._embeddings is not None and self._embeddings.has_entity(entity_a) and self._embeddings.has_entity(entity_b):
            return 0.5 * (1.0 + self._embeddings.entity_similarity(entity_a, entity_b))
        tokens_a = self._name_tokens.get(entity_a, frozenset())
        tokens_b = self._name_tokens.get(entity_b, frozenset())
        if not tokens_a or not tokens_b:
            return 0.0
        return len(tokens_a & tokens_b) / len(tokens_a | tokens_b)

    def prompt_affinity(self, entity_id: int, prompt_entity_ids: Sequence[int]) -> float:
        """Mean affinity between ``entity_id`` and the prompt entities."""
        if not prompt_entity_ids:
            return 0.0
        return float(
            np.mean([self.entity_affinity(entity_id, pid) for pid in prompt_entity_ids])
        )

    # -- scoring ---------------------------------------------------------------------
    def _prompt_tokens(self, prompt_entity_ids: Sequence[int]) -> list[str]:
        names = [
            self._entities_by_id[pid].name
            for pid in prompt_entity_ids
            if pid in self._entities_by_id
        ]
        text = ", ".join(names) + "," if names else ""
        return self._tokenizer.tokenize(text)

    def entity_logprob(
        self, entity_id: int, prompt_entity_ids: Sequence[int]
    ) -> float:
        """Length-normalised log-probability of generating the entity name."""
        self._require_fitted()
        entity = self._entities_by_id.get(entity_id)
        if entity is None:
            raise ModelError(f"unknown entity {entity_id}")
        tokens = self._tokenizer.tokenize_entity_name(entity.name)
        if not tokens:
            return float(np.log(1e-12))
        context = self._prompt_tokens(prompt_entity_ids)
        return self._ngram.sequence_logprob(tokens, context) / len(tokens)

    def score_entity_given_prompt(
        self, entity_id: int, prompt_entity_ids: Sequence[int]
    ) -> float:
        """Blended generation score used during constrained decoding."""
        affinity = self.prompt_affinity(entity_id, prompt_entity_ids)
        lm_logprob = self.entity_logprob(entity_id, prompt_entity_ids)
        # Map the length-normalised log-prob to a bounded scale before blending.
        lm_component = float(np.exp(lm_logprob))
        w = self.config.affinity_weight
        return w * affinity + (1.0 - w) * lm_component

    def conditional_similarity(self, generated_id: int, seed_id: int) -> float:
        """``P(seed | "{generated} is similar to")`` with geometric-mean length norm.

        This is Eq. 8's building block: the probability the LM assigns to the
        seed entity's name when prompted with the generated entity.
        """
        self._require_fitted()
        generated = self._entities_by_id.get(generated_id)
        seed = self._entities_by_id.get(seed_id)
        if generated is None or seed is None:
            return 0.0
        prompt = self._tokenizer.tokenize(f"{generated.name} is similar to")
        seed_tokens = self._tokenizer.tokenize_entity_name(seed.name)
        if not seed_tokens:
            return 0.0
        logprob = self._ngram.sequence_logprob(seed_tokens, prompt) / len(seed_tokens)
        lm_probability = float(np.exp(logprob))
        affinity = self.entity_affinity(generated_id, seed_id)
        w = self.config.affinity_weight
        return w * affinity + (1.0 - w) * lm_probability

    def conditional_similarity_batch(
        self, generated_ids: Sequence[int], seed_ids: Sequence[int]
    ) -> dict[int, float]:
        """Mean :meth:`conditional_similarity` to ``seed_ids`` for each
        generated entity, computed as one batch.

        The n-gram probability of a token only looks at the last
        ``order - 1`` tokens of its context, so the LM walk over the seed
        name depends on the *prompt tail* alone — identical (``"similar
        to"``) for every generated entity.  The |G| x |S| sequence walks of
        the sequential path therefore collapse to one memoised walk per
        ``(prompt tail, seed)``; the per-pair affinity term and the
        seed-order summation are kept verbatim, so every returned mean is
        bitwise identical to averaging sequential
        :meth:`conditional_similarity` calls.
        """
        self._require_fitted()
        if not seed_ids:
            return {entity_id: 0.0 for entity_id in generated_ids}
        tail_len = max(self._ngram.order - 1, 0)
        seed_tokens: dict[int, list[str]] = {}
        for seed_id in seed_ids:
            seed = self._entities_by_id.get(seed_id)
            seed_tokens[seed_id] = (
                self._tokenizer.tokenize_entity_name(seed.name)
                if seed is not None
                else []
            )
        lm_cache: dict[tuple, float] = {}
        w = self.config.affinity_weight
        means: dict[int, float] = {}
        for generated_id in generated_ids:
            generated = self._entities_by_id.get(generated_id)
            if generated is None:
                means[generated_id] = 0.0
                continue
            prompt = self._tokenizer.tokenize(f"{generated.name} is similar to")
            tail = tuple(prompt[max(0, len(prompt) - tail_len):])
            total = 0.0
            for seed_id in seed_ids:
                tokens = seed_tokens[seed_id]
                if not tokens:
                    continue  # the sequential path scores these pairs 0.0
                key = (tail, seed_id)
                lm_probability = lm_cache.get(key)
                if lm_probability is None:
                    logprob = self._ngram.sequence_logprob(tokens, tail) / len(tokens)
                    lm_probability = float(np.exp(logprob))
                    lm_cache[key] = lm_probability
                affinity = self.entity_affinity(generated_id, seed_id)
                total += w * affinity + (1.0 - w) * lm_probability
            means[generated_id] = total / len(seed_ids)
        return means

    # -- generation ---------------------------------------------------------------------
    def generate_constrained(
        self,
        prompt_entity_ids: Sequence[int],
        prefix_tree: PrefixTree,
        beam_width: int = 20,
        exclude_names: set[str] | None = None,
        max_length: int = 8,
    ) -> list[tuple[str, float]]:
        """Prefix-tree constrained beam search (Figure 6).

        Returns up to ``beam_width`` (entity name, score) pairs.  Every
        returned name is guaranteed to be a candidate entity because decoding
        follows root-to-leaf paths of the prefix tree.
        """
        self._require_fitted()
        exclude_names = exclude_names or set()
        context = self._prompt_tokens(prompt_entity_ids)
        name_to_id = {
            entity.name: entity_id for entity_id, entity in self._entities_by_id.items()
        }

        def token_score(prefix: list[str], token: str) -> float:
            lm = self._ngram.logprob(context + prefix, token)
            reachable = prefix_tree.entities_with_prefix(prefix + [token])
            affinities = [
                self.prompt_affinity(name_to_id[name], prompt_entity_ids)
                for name in reachable[:20]
                if name in name_to_id
            ]
            best_affinity = max(affinities) if affinities else 0.0
            w = self.config.affinity_weight
            return w * float(np.log(max(best_affinity, 1e-6))) + (1.0 - w) * lm

        beams: list[tuple[list[str], float]] = [([], 0.0)]
        completed: dict[str, float] = {}
        for _ in range(max_length):
            expansions: list[tuple[list[str], float]] = []
            for prefix, score in beams:
                allowed = prefix_tree.allowed_next(prefix)
                entity_name = prefix_tree.entity_at(prefix)
                if entity_name is not None and entity_name not in exclude_names:
                    normalised = score / max(len(prefix), 1)
                    if normalised > completed.get(entity_name, -np.inf):
                        completed[entity_name] = normalised
                for token in allowed:
                    expansions.append(
                        (prefix + [token], score + token_score(prefix, token))
                    )
            if not expansions:
                break
            expansions.sort(key=lambda item: -item[1] / max(len(item[0]), 1))
            beams = expansions[: beam_width * 2]
        # Flush any completed entities still sitting on the beam.
        for prefix, score in beams:
            entity_name = prefix_tree.entity_at(prefix)
            if entity_name is not None and entity_name not in exclude_names:
                normalised = score / max(len(prefix), 1)
                if normalised > completed.get(entity_name, -np.inf):
                    completed[entity_name] = normalised
        ranked = sorted(completed.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:beam_width]

    def generate_unconstrained(
        self,
        prompt_entity_ids: Sequence[int],
        beam_width: int = 20,
        max_length: int = 5,
    ) -> list[tuple[str, float]]:
        """Unconstrained sampling-free generation (the "- Prefix constrain" ablation).

        Greedy-ish beam expansion over the raw n-gram vocabulary; the returned
        strings frequently are not valid candidate entities, which is exactly
        the failure mode the prefix constraint removes.
        """
        self._require_fitted()
        context = self._prompt_tokens(prompt_entity_ids)
        beams: list[tuple[list[str], float]] = [([], 0.0)]
        outputs: list[tuple[str, float]] = []
        for _ in range(max_length):
            expansions: list[tuple[list[str], float]] = []
            for prefix, score in beams:
                for token, logprob in self._ngram.next_token_candidates(
                    context + prefix, top_k=beam_width
                ):
                    if token in (_BOS,):
                        continue
                    if token == _EOS:
                        if prefix:
                            outputs.append((" ".join(prefix), score / len(prefix)))
                        continue
                    expansions.append((prefix + [token], score + logprob))
            if not expansions:
                break
            expansions.sort(key=lambda item: -item[1] / max(len(item[0]), 1))
            beams = expansions[:beam_width]
        for prefix, score in beams:
            if prefix:
                outputs.append((" ".join(prefix), score / len(prefix)))
        outputs.sort(key=lambda item: -item[1])
        # Deduplicate while keeping order.
        seen: set[str] = set()
        unique: list[tuple[str, float]] = []
        for name, score in outputs:
            if name not in seen:
                seen.add(name)
                unique.append((name, score))
        return unique[:beam_width]

    @property
    def is_fitted(self) -> bool:
        return self._fitted
