"""Co-occurrence embeddings: the "pre-training" substitute.

BERT and LLaMA arrive pre-trained; the numpy substitutes get their prior
knowledge from a classic PPMI + truncated-SVD factorisation of co-occurrence
counts over the corpus.  Two views are produced:

* **token embeddings** from token–token co-occurrence within sentences, used
  to initialise the context encoder;
* **entity embeddings** from entity–context-token co-occurrence, used by the
  causal LM's affinity component and by the CaSE baseline's distributed
  representation feature.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from pathlib import Path

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.linalg import svds

from repro.exceptions import ModelError
from repro.kb.corpus import Corpus
from repro.text.tokenizer import WordTokenizer
from repro.text.vocab import SPECIAL_TOKENS, Vocabulary
from repro.types import Entity
from repro.utils.mathx import l2_normalize


def _ppmi(matrix: np.ndarray) -> np.ndarray:
    """Positive pointwise mutual information of a dense count matrix."""
    total = matrix.sum()
    if total <= 0:
        return np.zeros_like(matrix, dtype=np.float64)
    row = matrix.sum(axis=1, keepdims=True)
    col = matrix.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        pmi = np.log((matrix * total) / np.maximum(row * col, 1e-12))
    pmi[~np.isfinite(pmi)] = 0.0
    return np.maximum(pmi, 0.0)


def _truncated_svd(matrix: np.ndarray, dim: int, seed: int) -> np.ndarray:
    """Left singular vectors scaled by singular values, truncated to ``dim``."""
    if matrix.size == 0:
        return np.zeros((matrix.shape[0], dim))
    effective_dim = min(dim, min(matrix.shape) - 1)
    if effective_dim < 1:
        # Degenerate case: not enough columns/rows for SVD; pad with zeros.
        return np.zeros((matrix.shape[0], dim))
    sparse = coo_matrix(matrix)
    rng = np.random.default_rng(seed)
    u, s, _ = svds(sparse.astype(np.float64), k=effective_dim, random_state=rng)
    order = np.argsort(-s)
    u = u[:, order]
    s = s[order]
    vectors = u * np.sqrt(s)[None, :]
    if effective_dim < dim:
        vectors = np.pad(vectors, ((0, 0), (0, dim - effective_dim)))
    # ``svds`` returns F-ordered factors; rows must be C-contiguous so that
    # downstream dot products hit the same BLAS kernel as vectors that
    # round-trip through the artifact store (strided vs contiguous ddot
    # differ in the last ulps, which would break save→load ranking parity).
    return np.ascontiguousarray(vectors)


class CooccurrenceEmbeddings:
    """PPMI-SVD embeddings for tokens and entities.

    ``dim`` controls the token embeddings; ``entity_dim`` (default: three
    times ``dim``) controls the entity embeddings.  Entity vectors keep more
    dimensions because the downstream rankers need the full attribute-level
    detail of each entity's context profile, whereas token embeddings only
    seed the context encoder.
    """

    def __init__(
        self, dim: int = 64, window: int = 6, seed: int = 0, entity_dim: int | None = None
    ):
        if dim <= 0:
            raise ModelError("dim must be positive")
        if window <= 0:
            raise ModelError("window must be positive")
        if entity_dim is not None and entity_dim <= 0:
            raise ModelError("entity_dim must be positive")
        self.dim = dim
        self.entity_dim = entity_dim if entity_dim is not None else 3 * dim
        self.window = window
        self.seed = seed
        self._tokenizer = WordTokenizer()
        self.vocabulary: Vocabulary | None = None
        self.token_vectors: np.ndarray | None = None
        self._entity_vectors: dict[int, np.ndarray] = {}

    # -- fitting ----------------------------------------------------------------
    def fit(
        self, corpus: Corpus, entities: list[Entity], progress=None
    ) -> "CooccurrenceEmbeddings":
        """Fit token and entity embeddings on ``corpus``.

        ``progress`` (a :class:`repro.obs.progress.ProgressReporter`,
        optional) receives step fractions as each fitting stage — token
        counting, token SVD, entity counting, entity SVD — completes.
        """
        sentences = list(corpus)
        token_lists = [self._tokenizer.tokenize(s.text) for s in sentences]
        self.vocabulary = Vocabulary.from_token_lists(token_lists)
        vocab_size = len(self.vocabulary)

        # Token-token co-occurrence within a sliding window.
        token_counts: dict[tuple[int, int], float] = defaultdict(float)
        report_every = max(1, len(token_lists) // 8)
        for index, tokens in enumerate(token_lists):
            ids = self.vocabulary.encode(tokens)
            for i, center in enumerate(ids):
                lo = max(0, i - self.window)
                hi = min(len(ids), i + self.window + 1)
                for j in range(lo, hi):
                    if i == j:
                        continue
                    token_counts[(center, ids[j])] += 1.0 / (1.0 + abs(i - j))
            if progress is not None and (index + 1) % report_every == 0:
                progress.step(0.35 * (index + 1) / len(token_lists))
        token_matrix = np.zeros((vocab_size, vocab_size))
        for (a, b), count in token_counts.items():
            token_matrix[a, b] = count
        self.token_vectors = _truncated_svd(_ppmi(token_matrix), self.dim, self.seed)
        if progress is not None:
            progress.step(0.55)

        # Entity-context co-occurrence: counts of context tokens over all
        # sentences mentioning the entity (the entity's own name tokens are
        # excluded so the embedding reflects *context*, not the surface form).
        entity_rows: list[np.ndarray] = []
        entity_ids: list[int] = []
        report_every = max(1, len(entities) // 8)
        for index, entity in enumerate(entities):
            context_counts: Counter[int] = Counter()
            name_tokens = set(self._tokenizer.tokenize_entity_name(entity.name))
            for sentence in corpus.sentences_of(entity.entity_id):
                for token in self._tokenizer.tokenize(sentence.text):
                    if token in name_tokens:
                        continue
                    context_counts[self.vocabulary.id_of(token)] += 1
            row = np.zeros(vocab_size)
            for token_id, count in context_counts.items():
                row[token_id] = count
            entity_rows.append(row)
            entity_ids.append(entity.entity_id)
            if progress is not None and (index + 1) % report_every == 0:
                progress.step(0.55 + 0.3 * (index + 1) / len(entities))

        if entity_rows:
            entity_matrix = _ppmi(np.stack(entity_rows))
            entity_vectors = _truncated_svd(
                entity_matrix, self.entity_dim, self.seed + 1
            )
            entity_vectors = l2_normalize(entity_vectors, axis=1)
            self._entity_vectors = {
                entity_id: entity_vectors[i] for i, entity_id in enumerate(entity_ids)
            }
        if progress is not None:
            progress.step(1.0)
        return self

    # -- access ---------------------------------------------------------------
    def token_vector(self, token: str) -> np.ndarray:
        if self.vocabulary is None or self.token_vectors is None:
            raise ModelError("embeddings are not fitted")
        return self.token_vectors[self.vocabulary.id_of(token)]

    def entity_vector(self, entity_id: int) -> np.ndarray:
        if not self._entity_vectors:
            raise ModelError("embeddings are not fitted")
        if entity_id not in self._entity_vectors:
            raise ModelError(f"no embedding for entity {entity_id}")
        return self._entity_vectors[entity_id]

    def has_entity(self, entity_id: int) -> bool:
        return entity_id in self._entity_vectors

    def entity_vectors(self) -> dict[int, np.ndarray]:
        return dict(self._entity_vectors)

    def entity_similarity(self, entity_a: int, entity_b: int) -> float:
        """Cosine similarity between two entity embeddings (0 when unknown)."""
        if entity_a not in self._entity_vectors or entity_b not in self._entity_vectors:
            return 0.0
        return float(
            np.dot(self._entity_vectors[entity_a], self._entity_vectors[entity_b])
        )

    # -- persistence ------------------------------------------------------------
    def save(self, directory: str | Path) -> None:
        """Persist vocabulary, token vectors, and entity vectors.

        The SVD behind these embeddings is one of the most expensive steps of
        every fit, so they are first-class artifact state: ``save``/``load``
        implement the substrate persistence protocol (:mod:`repro.substrate`)
        and the provider stores them once, content-addressed, for every
        method that consumes them.
        """
        from repro.store.serialization import save_array, save_vector_map, write_json_state

        if self.vocabulary is None or self.token_vectors is None:
            raise ModelError("embeddings are not fitted")
        directory = Path(directory)
        write_json_state(
            directory / "embeddings.json",
            {
                "dim": self.dim,
                "entity_dim": self.entity_dim,
                "window": self.window,
                "seed": self.seed,
                "vocabulary": list(self.vocabulary),
            },
        )
        save_array(directory / "token_vectors.npy", self.token_vectors)
        save_vector_map(directory, "entity", self._entity_vectors)

    @classmethod
    def load(cls, directory: str | Path, mmap: bool = True) -> "CooccurrenceEmbeddings":
        """Reconstruct embeddings written by :meth:`save` without refitting."""
        from repro.store.serialization import load_array, load_vector_map, read_json_state

        directory = Path(directory)
        meta = read_json_state(directory / "embeddings.json")
        instance = cls(
            dim=int(meta["dim"]),
            window=int(meta["window"]),
            seed=int(meta["seed"]),
            entity_dim=int(meta["entity_dim"]),
        )
        # The saved token list preserves id order (specials first), so
        # re-adding in sequence reproduces the exact token ↔ id mapping.
        instance.vocabulary = Vocabulary(
            token for token in meta["vocabulary"] if token not in SPECIAL_TOKENS
        )
        instance.token_vectors = load_array(directory / "token_vectors.npy", mmap=mmap)
        instance._entity_vectors = load_vector_map(directory, "entity", mmap=mmap)
        return instance
