"""Loss functions used by the encoder and the contrastive head.

Both losses return ``(loss_value, gradient_wrt_logits_or_similarities)`` so
that the calling model can back-propagate through its own layers without a
generic autograd engine.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError
from repro.utils.mathx import softmax


def label_smoothed_cross_entropy(
    logits: np.ndarray, targets: np.ndarray, smoothing: float = 0.1
) -> tuple[float, np.ndarray]:
    """Label-smoothed cross-entropy over a batch (Eq. 4 of the paper).

    Parameters
    ----------
    logits:
        ``(batch, num_classes)`` unnormalised scores.
    targets:
        ``(batch,)`` integer class indices.
    smoothing:
        Smoothing factor ``eta``; the target distribution places
        ``1 - eta`` on the gold class and spreads ``eta`` uniformly over the
        remaining classes, which softens the penalty on entities semantically
        close to the gold entity.

    Returns
    -------
    (loss, grad):
        Mean loss over the batch and the gradient with respect to the logits.
    """
    logits = np.asarray(logits, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ModelError("logits must be 2-D (batch, num_classes)")
    if targets.shape[0] != logits.shape[0]:
        raise ModelError("targets batch size does not match logits")
    if not 0.0 <= smoothing < 1.0:
        raise ModelError("smoothing must be in [0, 1)")

    batch, num_classes = logits.shape
    probs = softmax(logits, axis=1)
    smooth_target = np.full(
        (batch, num_classes), smoothing / max(num_classes - 1, 1), dtype=np.float64
    )
    smooth_target[np.arange(batch), targets] = 1.0 - smoothing

    log_probs = np.log(np.clip(probs, 1e-12, 1.0))
    loss = float(-np.sum(smooth_target * log_probs) / batch)
    grad = (probs - smooth_target) / batch
    return loss, grad


def info_nce_loss(
    anchors: np.ndarray,
    positives: np.ndarray,
    negatives: np.ndarray,
    temperature: float = 0.1,
) -> tuple[float, np.ndarray, np.ndarray, np.ndarray]:
    """InfoNCE contrastive loss (Oord et al., 2018).

    Parameters
    ----------
    anchors, positives:
        ``(batch, dim)`` L2-normalised embeddings; row ``i`` of ``positives``
        is the positive for row ``i`` of ``anchors``.
    negatives:
        ``(batch, num_negatives, dim)`` L2-normalised negative embeddings per
        anchor.
    temperature:
        Softmax temperature.

    Returns
    -------
    (loss, grad_anchors, grad_positives, grad_negatives)
    """
    anchors = np.asarray(anchors, dtype=np.float64)
    positives = np.asarray(positives, dtype=np.float64)
    negatives = np.asarray(negatives, dtype=np.float64)
    if anchors.shape != positives.shape:
        raise ModelError("anchors and positives must have the same shape")
    if negatives.ndim != 3 or negatives.shape[0] != anchors.shape[0]:
        raise ModelError("negatives must be (batch, num_negatives, dim)")
    if temperature <= 0:
        raise ModelError("temperature must be positive")

    batch, dim = anchors.shape
    num_neg = negatives.shape[1]

    pos_sim = np.sum(anchors * positives, axis=1) / temperature  # (batch,)
    neg_sim = np.einsum("bd,bnd->bn", anchors, negatives) / temperature  # (batch, n)

    logits = np.concatenate([pos_sim[:, None], neg_sim], axis=1)  # (batch, 1+n)
    probs = softmax(logits, axis=1)
    loss = float(np.mean(-np.log(np.clip(probs[:, 0], 1e-12, 1.0))))

    # d loss / d logits
    grad_logits = probs.copy()
    grad_logits[:, 0] -= 1.0
    grad_logits /= batch * temperature

    grad_anchors = (
        grad_logits[:, :1] * positives
        + np.einsum("bn,bnd->bd", grad_logits[:, 1:], negatives)
    )
    grad_positives = grad_logits[:, :1] * anchors
    grad_negatives = grad_logits[:, 1:, None] * anchors[:, None, :]
    return loss, grad_anchors, grad_positives, grad_negatives
