"""Masked-entity context encoder: the BERT-base substitute.

RetExpan's entity representation step (Section V-A.1) replaces entity
mentions with ``[MASK]``, feeds the sentence through BERT-base, and reads the
hidden state at the mask position; an entity-prediction head (MLP + softmax
over candidate entities, label-smoothed cross-entropy) refines the encoder.

The numpy substitute keeps that exact contract:

* the *input* is a masked sentence;
* the *hidden state at the mask position* is a distance-weighted pooling of
  pretrained context-token embeddings passed through a small trained MLP;
* the *entity-prediction head* maps the hidden state to a distribution over
  candidate entities and is trained with label-smoothed cross-entropy;
* an entity's representation is the mean hidden state over the sentences
  that mention it (Eq. 2) and, for ProbExpan, the mean *probability
  distribution* at the mask position is also exposed.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.config import EncoderConfig
from repro.exceptions import ModelError
from repro.kb.corpus import Corpus
from repro.lm.embeddings import CooccurrenceEmbeddings
from repro.lm.losses import label_smoothed_cross_entropy
from repro.lm.optim import AdamOptimizer
from repro.text.tokenizer import MASK_TOKEN, WordTokenizer
from repro.text.vocab import Vocabulary
from repro.types import Entity
from repro.utils.mathx import l2_normalize, softmax
from repro.utils.rng import RandomState


@dataclass
class EntityRepresentations:
    """Entity features produced by the encoder.

    ``hidden`` maps entity id → hidden-state representation (RetExpan's
    choice); ``distribution`` maps entity id → probability-distribution
    representation (ProbExpan's choice).  The paper attributes the
    RetExpan-vs-ProbExpan gap to this difference, so both are first-class.
    """

    hidden: dict[int, np.ndarray]
    distribution: dict[int, np.ndarray]

    def vector(self, entity_id: int, kind: str = "hidden") -> np.ndarray:
        store = self.hidden if kind == "hidden" else self.distribution
        if entity_id not in store:
            raise ModelError(f"no representation for entity {entity_id}")
        return store[entity_id]

    def has(self, entity_id: int) -> bool:
        return entity_id in self.hidden

    def ids(self) -> list[int]:
        return sorted(self.hidden)

    def matrix(self, entity_ids: list[int], kind: str = "hidden") -> np.ndarray:
        store = self.hidden if kind == "hidden" else self.distribution
        return np.stack([store[eid] for eid in entity_ids])

    # -- persistence -------------------------------------------------------------
    def save(self, directory: str | Path) -> None:
        """Persist both vector maps as mmap-friendly ``.npy`` pairs.

        ``save``/``load`` implement the substrate persistence protocol
        (:mod:`repro.substrate`): the representations are the persisted
        product of the (memory-only) :class:`ContextEncoder`, stored once
        per ``(encoder params, trained)`` arm and shared by RetExpan and
        ProbExpan instead of being embedded in each method artifact.
        """
        from repro.store.serialization import save_vector_map

        directory = Path(directory)
        save_vector_map(directory, "hidden", self.hidden)
        save_vector_map(directory, "distribution", self.distribution)

    @classmethod
    def load(cls, directory: str | Path, mmap: bool = True) -> "EntityRepresentations":
        """Load maps written by :meth:`save`; vectors stay memory-mapped."""
        from repro.store.serialization import load_vector_map

        directory = Path(directory)
        return cls(
            hidden=load_vector_map(directory, "hidden", mmap=mmap),
            distribution=load_vector_map(directory, "distribution", mmap=mmap),
        )


class ContextEncoder:
    """Trainable masked-entity context encoder."""

    def __init__(self, config: EncoderConfig | None = None):
        self.config = config or EncoderConfig()
        self.config.validate()
        self._tokenizer = WordTokenizer()
        self._rng = RandomState(self.config.seed)
        self.vocabulary: Vocabulary | None = None
        self._token_embeddings: np.ndarray | None = None
        self._entity_index: dict[int, int] = {}
        self._entity_ids: list[int] = []
        self._params: dict[str, np.ndarray] = {}
        self._fitted = False
        self._trained = False
        #: cached pooled context features per (sentence_id, entity_id).
        self._feature_cache: dict[tuple[int, int], np.ndarray] = {}
        #: inverse document frequency per token id (computed at fit time).
        self._idf: np.ndarray | None = None
        #: pretrained entity-level co-occurrence vectors (when available).
        self._pretrained_entity_vectors: dict[int, np.ndarray] = {}

    # -- feature extraction ------------------------------------------------------
    def _pool_context(self, masked_text: str) -> np.ndarray:
        """IDF- and distance-weighted average of context-token embeddings.

        Weighting each token by its inverse document frequency keeps the
        ubiquitous template words from dominating the pooled feature and lets
        the attribute-bearing words (operating systems, continents, ...)
        drive the representation — the analogue of BERT's attention focusing
        on informative context.
        """
        if self.vocabulary is None or self._token_embeddings is None:
            raise ModelError("encoder is not fitted")
        tokens = self._tokenizer.tokenize(masked_text)
        if MASK_TOKEN not in tokens:
            tokens = [MASK_TOKEN] + tokens
        mask_pos = tokens.index(MASK_TOKEN)
        window = self.config.context_window
        pooled = np.zeros(self.config.embedding_dim)
        total_weight = 0.0
        for offset, token in enumerate(tokens):
            if token == MASK_TOKEN:
                continue
            distance = abs(offset - mask_pos)
            if distance > window:
                continue
            token_id = self.vocabulary.id_of(token)
            idf = float(self._idf[token_id]) if self._idf is not None else 1.0
            weight = idf / (1.0 + 0.3 * distance)
            pooled += weight * self._token_embeddings[token_id]
            total_weight += weight
        if total_weight > 0:
            pooled /= total_weight
        return pooled

    def _compute_idf(self, corpus: Corpus) -> None:
        """Inverse document frequency of every vocabulary token over the corpus."""
        document_frequency = np.zeros(len(self.vocabulary))
        num_documents = 0
        for sentence in corpus:
            num_documents += 1
            seen = {self.vocabulary.id_of(t) for t in self._tokenizer.tokenize(sentence.text)}
            for token_id in seen:
                document_frequency[token_id] += 1
        self._idf = np.log((1.0 + num_documents) / (1.0 + document_frequency))

    def _features_for(self, corpus: Corpus, entity: Entity) -> list[np.ndarray]:
        """Pooled features of all (capped) masked sentences mentioning ``entity``."""
        sentences = corpus.sentences_of(entity.entity_id)
        sentences = sentences[: self.config.max_sentences_per_entity]
        features = []
        for sentence in sentences:
            key = (sentence.sentence_id, entity.entity_id)
            if key not in self._feature_cache:
                masked = Corpus.masked_text(sentence, entity.name)
                self._feature_cache[key] = self._pool_context(masked)
            features.append(self._feature_cache[key])
        return features

    # -- forward / backward --------------------------------------------------------
    def _forward_hidden(self, features: np.ndarray) -> np.ndarray:
        """Hidden states for a batch of pooled context features."""
        pre = features @ self._params["W1"] + self._params["b1"]
        return np.tanh(pre)

    def _forward_logits(self, hidden: np.ndarray) -> np.ndarray:
        return hidden @ self._params["W2"] + self._params["b2"]

    # -- fitting -------------------------------------------------------------------
    def fit(
        self,
        corpus: Corpus,
        entities: list[Entity],
        pretrained: CooccurrenceEmbeddings | None = None,
        train: bool = True,
        progress=None,
    ) -> "ContextEncoder":
        """Fit the encoder on ``corpus`` restricted to ``entities``.

        ``pretrained`` supplies token embeddings (the "pre-trained BERT"
        analogue); when omitted, embeddings are trained from random
        initialisation which is markedly weaker.  ``train=False`` skips the
        entity-prediction task, which is the "- Entity prediction" ablation
        of Table III.  ``progress`` (a
        :class:`repro.obs.progress.ProgressReporter`, optional) receives
        per-epoch step fractions while the training loop runs.
        """
        generator = self._rng.child("init").generator
        if pretrained is not None and pretrained.vocabulary is not None:
            self.vocabulary = pretrained.vocabulary
            self._pretrained_entity_vectors = pretrained.entity_vectors()
            vectors = pretrained.token_vectors
            if vectors.shape[1] >= self.config.embedding_dim:
                self._token_embeddings = vectors[:, : self.config.embedding_dim].copy()
            else:
                pad = self.config.embedding_dim - vectors.shape[1]
                self._token_embeddings = np.pad(vectors, ((0, 0), (0, pad)))
        else:
            token_lists = [
                self._tokenizer.tokenize(sentence.text) for sentence in corpus
            ]
            self.vocabulary = Vocabulary.from_token_lists(token_lists)
            self._token_embeddings = generator.normal(
                0.0, 0.1, size=(len(self.vocabulary), self.config.embedding_dim)
            )

        self._compute_idf(corpus)
        self._entity_ids = [entity.entity_id for entity in entities]
        self._entity_index = {eid: i for i, eid in enumerate(self._entity_ids)}
        num_entities = len(self._entity_ids)
        emb, hid = self.config.embedding_dim, self.config.hidden_dim
        scale1 = 1.0 / np.sqrt(emb)
        scale2 = 1.0 / np.sqrt(hid)
        self._params = {
            "W1": generator.normal(0.0, scale1, size=(emb, hid)),
            "b1": np.zeros(hid),
            "W2": generator.normal(0.0, scale2, size=(hid, num_entities)),
            "b2": np.zeros(num_entities),
        }
        self._fitted = True
        self._trained = False

        if train and self.config.epochs > 0:
            self._train(corpus, entities, progress=progress)
            self._trained = True
        if progress is not None:
            progress.step(1.0)
        return self

    def _training_examples(
        self, corpus: Corpus, entities: list[Entity]
    ) -> tuple[np.ndarray, np.ndarray]:
        """All (pooled feature, entity index) pairs from the corpus."""
        feature_rows: list[np.ndarray] = []
        labels: list[int] = []
        for entity in entities:
            index = self._entity_index[entity.entity_id]
            for feature in self._features_for(corpus, entity):
                feature_rows.append(feature)
                labels.append(index)
        if not feature_rows:
            raise ModelError("corpus provides no training sentences for the entities")
        return np.stack(feature_rows), np.asarray(labels, dtype=np.int64)

    def _train(self, corpus: Corpus, entities: list[Entity], progress=None) -> None:
        features, labels = self._training_examples(corpus, entities)
        optimizer = AdamOptimizer(self._params, learning_rate=self.config.learning_rate)
        rng = self._rng.child("train").generator
        num_examples = features.shape[0]
        batch_size = min(self.config.batch_size, num_examples)
        num_batches = (num_examples + batch_size - 1) // batch_size
        total_steps = self.config.epochs * num_batches
        step = 0
        for epoch in range(self.config.epochs):
            order = rng.permutation(num_examples)
            for start in range(0, num_examples, batch_size):
                batch_idx = order[start : start + batch_size]
                x = features[batch_idx]
                y = labels[batch_idx]
                hidden = self._forward_hidden(x)
                logits = self._forward_logits(hidden)
                _, grad_logits = label_smoothed_cross_entropy(
                    logits, y, smoothing=self.config.label_smoothing
                )
                grad_w2 = hidden.T @ grad_logits
                grad_b2 = grad_logits.sum(axis=0)
                grad_hidden = grad_logits @ self._params["W2"].T
                grad_pre = grad_hidden * (1.0 - hidden**2)
                grad_w1 = x.T @ grad_pre
                grad_b1 = grad_pre.sum(axis=0)
                optimizer.step(
                    {"W1": grad_w1, "b1": grad_b1, "W2": grad_w2, "b2": grad_b2}
                )
                step += 1
                if progress is not None:
                    progress.step(
                        step / total_steps,
                        epoch=epoch + 1,
                        total_epochs=self.config.epochs,
                    )

    # -- inference -------------------------------------------------------------------
    def _combine(self, pretrained_part: np.ndarray, hidden: np.ndarray) -> np.ndarray:
        """Combine the pretrained entity feature with the trained hidden state.

        Both parts are L2-normalised and weighted before concatenation so that
        cosine similarity on the combined vector is the weighted average of
        the two signals: the pretrained context feature preserves
        fine-grained-class recall while the entity-prediction-refined hidden
        state sharpens ultra-fine-grained distinctions.  ``hidden_weight``
        controls the balance.
        """
        weight = self.config.hidden_weight
        return np.concatenate(
            [
                np.sqrt(1.0 - weight) * l2_normalize(pretrained_part),
                np.sqrt(weight) * l2_normalize(hidden),
            ],
            axis=-1,
        )

    def encode_masked_text(self, masked_text: str) -> np.ndarray:
        """Representation of one masked sentence (hidden state at the mask)."""
        if not self._fitted:
            raise ModelError("encoder is not fitted")
        feature = self._pool_context(masked_text)
        if self._trained:
            hidden = self._forward_hidden(feature[None, :])[0]
            return self._combine(feature, hidden)
        # Without the entity-prediction refinement the pooled pretrained
        # feature itself is the representation (Table III ablation).
        return feature

    def predict_distribution(self, masked_text: str) -> np.ndarray:
        """Probability distribution over candidate entities at the mask position."""
        if not self._fitted:
            raise ModelError("encoder is not fitted")
        feature = self._pool_context(masked_text)
        hidden = self._forward_hidden(feature[None, :])
        return softmax(self._forward_logits(hidden), axis=1)[0]

    def entity_representations(
        self, corpus: Corpus, entities: list[Entity], with_distributions: bool = True
    ) -> EntityRepresentations:
        """Mean hidden-state (and distribution) representation per entity."""
        if not self._fitted:
            raise ModelError("encoder is not fitted")
        hidden_store: dict[int, np.ndarray] = {}
        distribution_store: dict[int, np.ndarray] = {}
        for entity in entities:
            features = self._features_for(corpus, entity)
            if not features:
                continue
            stacked = np.stack(features)
            pooled_mean = stacked.mean(axis=0)
            # The pretrained part prefers the entity-level co-occurrence vector
            # (the closest analogue of BERT's pretrained contextual knowledge
            # about the entity); the window-pooled mean is the fallback.
            pretrained_part = self._pretrained_entity_vectors.get(
                entity.entity_id, pooled_mean
            )
            if self._trained:
                hidden_mean = self._forward_hidden(stacked).mean(axis=0)
                hidden_store[entity.entity_id] = self._combine(
                    pretrained_part, hidden_mean
                )
            else:
                # Without the entity-prediction refinement only the raw
                # pretrained features are available (Table III ablation): a
                # lower-capacity slice of the pretrained entity vector,
                # falling back to the window-pooled context average.
                if entity.entity_id in self._pretrained_entity_vectors:
                    ablated_dim = self.config.embedding_dim
                    hidden_store[entity.entity_id] = np.asarray(
                        pretrained_part[:ablated_dim], dtype=np.float64
                    )
                else:
                    hidden_store[entity.entity_id] = pooled_mean
            if with_distributions:
                trained_hidden = self._forward_hidden(stacked)
                probs = softmax(self._forward_logits(trained_hidden), axis=1)
                distribution_store[entity.entity_id] = probs.mean(axis=0)
        return EntityRepresentations(hidden=hidden_store, distribution=distribution_store)

    @property
    def hidden_dim(self) -> int:
        """Dimensionality of the representation returned by ``encode_masked_text``."""
        if self._trained:
            return self.config.embedding_dim + self.config.hidden_dim
        return self.config.embedding_dim

    @property
    def is_fitted(self) -> bool:
        return self._fitted
