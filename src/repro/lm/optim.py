"""A minimal Adam optimiser for the numpy models."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError


class AdamOptimizer:
    """Adam (Kingma & Ba, 2015) over a named collection of numpy parameters.

    Parameters are registered once; ``step`` applies one update given a
    mapping of gradients with the same keys and shapes.
    """

    def __init__(
        self,
        parameters: dict[str, np.ndarray],
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ):
        if learning_rate <= 0:
            raise ModelError("learning_rate must be positive")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ModelError("betas must be in [0, 1)")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._parameters = parameters
        self._m = {name: np.zeros_like(value) for name, value in parameters.items()}
        self._v = {name: np.zeros_like(value) for name, value in parameters.items()}
        self._t = 0

    def step(self, gradients: dict[str, np.ndarray]) -> None:
        """Apply one Adam update in place on the registered parameters."""
        self._t += 1
        for name, grad in gradients.items():
            if name not in self._parameters:
                raise ModelError(f"gradient for unknown parameter {name!r}")
            param = self._parameters[name]
            if grad.shape != param.shape:
                raise ModelError(
                    f"gradient shape {grad.shape} does not match parameter "
                    f"{name!r} shape {param.shape}"
                )
            m = self._m[name]
            v = self._v[name]
            m[:] = self.beta1 * m + (1.0 - self.beta1) * grad
            v[:] = self.beta2 * v + (1.0 - self.beta2) * (grad * grad)
            m_hat = m / (1.0 - self.beta1**self._t)
            v_hat = v / (1.0 - self.beta2**self._t)
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    @property
    def num_steps(self) -> int:
        return self._t
