"""MLP projection head for contrastive learning.

Section V-A.2: "Contrastive learning is conducted in a new hypersphere space
to prevent semantic collapse, which is transformed by another MLP-based
mapping head f_cl and l-2 normalization."  The head here maps an input
feature (entity representation concatenated with its query's seed context)
to an L2-normalised vector and is trained with InfoNCE.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError
from repro.lm.losses import info_nce_loss
from repro.lm.optim import AdamOptimizer
from repro.utils.mathx import l2_normalize
from repro.utils.rng import RandomState


class ProjectionHead:
    """Two-layer MLP followed by L2 normalisation."""

    def __init__(
        self,
        input_dim: int,
        output_dim: int,
        hidden_dim: int | None = None,
        seed: int = 0,
    ):
        if input_dim <= 0 or output_dim <= 0:
            raise ModelError("dimensions must be positive")
        hidden_dim = hidden_dim or max(output_dim, input_dim // 2)
        generator = RandomState(seed).generator
        self.input_dim = input_dim
        self.output_dim = output_dim
        self.hidden_dim = hidden_dim
        self._params = {
            "W1": generator.normal(0.0, 1.0 / np.sqrt(input_dim), size=(input_dim, hidden_dim)),
            "b1": np.zeros(hidden_dim),
            "W2": generator.normal(0.0, 1.0 / np.sqrt(hidden_dim), size=(hidden_dim, output_dim)),
            "b2": np.zeros(output_dim),
        }

    # -- persistence ------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """A copy of the trained parameters, keyed like ``_params``."""
        return {key: value.copy() for key, value in self._params.items()}

    def load_state_dict(self, params: dict[str, np.ndarray]) -> None:
        """Replace the parameters with ``params`` (shape-checked)."""
        for key, current in self._params.items():
            if key not in params:
                raise ModelError(f"projection state lacks parameter {key!r}")
            incoming = np.asarray(params[key], dtype=np.float64)
            if incoming.shape != current.shape:
                raise ModelError(
                    f"projection parameter {key!r} has shape {incoming.shape}, "
                    f"expected {current.shape}"
                )
            self._params[key] = incoming

    # -- forward --------------------------------------------------------------
    def _forward_raw(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return (hidden activation, unnormalised output)."""
        hidden = np.tanh(x @ self._params["W1"] + self._params["b1"])
        out = hidden @ self._params["W2"] + self._params["b2"]
        return hidden, out

    def project(self, x: np.ndarray) -> np.ndarray:
        """Project a batch (or single vector) onto the unit hypersphere."""
        single = x.ndim == 1
        batch = x[None, :] if single else x
        if batch.shape[1] != self.input_dim:
            raise ModelError(
                f"expected input dim {self.input_dim}, got {batch.shape[1]}"
            )
        _, out = self._forward_raw(batch)
        projected = l2_normalize(out, axis=1)
        return projected[0] if single else projected

    # -- training ----------------------------------------------------------------
    def _backward(
        self,
        x: np.ndarray,
        hidden: np.ndarray,
        out: np.ndarray,
        grad_normalised: np.ndarray,
    ) -> dict[str, np.ndarray]:
        """Gradients of the parameters given gradient w.r.t. the normalised output."""
        # Back-prop through L2 normalisation: y = o / ||o||.
        norms = np.maximum(np.linalg.norm(out, axis=1, keepdims=True), 1e-12)
        normalised = out / norms
        grad_out = (
            grad_normalised
            - normalised * np.sum(grad_normalised * normalised, axis=1, keepdims=True)
        ) / norms

        grad_w2 = hidden.T @ grad_out
        grad_b2 = grad_out.sum(axis=0)
        grad_hidden = grad_out @ self._params["W2"].T
        grad_pre = grad_hidden * (1.0 - hidden**2)
        grad_w1 = x.T @ grad_pre
        grad_b1 = grad_pre.sum(axis=0)
        return {"W1": grad_w1, "b1": grad_b1, "W2": grad_w2, "b2": grad_b2}

    def train_info_nce(
        self,
        anchors: np.ndarray,
        positives: np.ndarray,
        negatives: np.ndarray,
        epochs: int = 3,
        batch_size: int = 32,
        learning_rate: float = 5e-3,
        temperature: float = 0.1,
        seed: int = 0,
    ) -> list[float]:
        """Train the head with InfoNCE on pre-built triplets.

        ``anchors`` / ``positives`` are ``(n, input_dim)``; ``negatives`` is
        ``(n, num_negatives, input_dim)``.  Returns the mean loss per epoch.
        """
        if anchors.shape[0] == 0:
            return []
        if anchors.shape != positives.shape or negatives.shape[0] != anchors.shape[0]:
            raise ModelError("triplet arrays have inconsistent shapes")
        optimizer = AdamOptimizer(self._params, learning_rate=learning_rate)
        rng = RandomState(seed).generator
        num = anchors.shape[0]
        batch_size = min(batch_size, num)
        history: list[float] = []
        for _ in range(epochs):
            order = rng.permutation(num)
            epoch_losses: list[float] = []
            for start in range(0, num, batch_size):
                idx = order[start : start + batch_size]
                a, p, n = anchors[idx], positives[idx], negatives[idx]
                batch, num_neg, dim = n.shape

                hidden_a, out_a = self._forward_raw(a)
                hidden_p, out_p = self._forward_raw(p)
                n_flat = n.reshape(batch * num_neg, dim)
                hidden_n, out_n = self._forward_raw(n_flat)

                za = l2_normalize(out_a, axis=1)
                zp = l2_normalize(out_p, axis=1)
                zn = l2_normalize(out_n, axis=1).reshape(batch, num_neg, -1)

                loss, grad_a, grad_p, grad_n = info_nce_loss(
                    za, zp, zn, temperature=temperature
                )
                epoch_losses.append(loss)

                grads_a = self._backward(a, hidden_a, out_a, grad_a)
                grads_p = self._backward(p, hidden_p, out_p, grad_p)
                grads_n = self._backward(
                    n_flat, hidden_n, out_n, grad_n.reshape(batch * num_neg, -1)
                )
                total = {
                    key: grads_a[key] + grads_p[key] + grads_n[key]
                    for key in grads_a
                }
                optimizer.step(total)
            history.append(float(np.mean(epoch_losses)))
        return history
