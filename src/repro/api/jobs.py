"""Asynchronous fit jobs over the expander registry.

A cold ``Expander.fit`` is the dominant cost of serving a method (~50x a
warm restore in the PR 2 benchmark) and used to stall a caller's *first*
``/expand`` synchronously.  :class:`JobManager` turns warming into a
first-class, non-blocking operation: ``POST /v1/fits`` enqueues a
:class:`FitJob` and returns ``202`` immediately, one background worker drains
the queue through :meth:`ExpanderRegistry.get` (restore-from-store when an
artifact exists, train otherwise), and ``GET /v1/fits/<id>`` reports the
outcome — so the first query after a successful job is served without an
in-request fit.

One worker thread is deliberate: fits are heavyweight (they own the CPU and
allocate model-sized memory), so running them serially keeps a burst of fit
requests from starving the serving path.
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.api.errors import error_payload
from repro.exceptions import (
    JobConflictError,
    JobNotFoundError,
    ServiceUnavailableError,
)
from repro.obs.progress import ProgressReporter, phase_window
from repro.obs.trace import current_tenant

#: terminal :class:`FitJob` states.
FINISHED_STATES = frozenset({"succeeded", "failed", "cancelled"})


@dataclass
class FitJob:
    """One asynchronous fit of a method, tracked from queue to completion."""

    job_id: str
    method: str
    pin: bool = False
    #: ``queued`` -> ``running`` -> ``succeeded`` | ``failed``; a queued job
    #: may instead be ``cancelled`` before the worker picks it up.
    status: str = "queued"
    created_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    #: how the fit was satisfied: ``already_fitted`` | ``restored`` | ``fitted``.
    outcome: str | None = None
    #: where a running fit currently is: ``restoring`` (store lookup),
    #: ``fitting_substrates`` (shared substrate fits), ``training`` (the
    #: method's own fit), or ``publishing`` (write-through).  ``None`` while
    #: queued; a finished job keeps the last phase it reached.
    phase: str | None = None
    #: wall-clock seconds spent in each phase the job passed through (a
    #: phase re-entered accumulates); populated as phases complete, so a
    #: poller watching a running job sees durations for finished phases.
    phase_seconds: dict = field(default_factory=dict)
    #: overall completion fraction in [0, 1], monotonically increasing while
    #: the job runs (phase-local step fractions folded through
    #: :data:`~repro.obs.progress.PHASE_WINDOWS`); ``None`` while queued,
    #: pinned to 1.0 on success.
    progress: float | None = None
    #: the training loop's current epoch / configured total, when the phase
    #: underway reports them (the encoder and LM fits do).
    epoch: int | None = None
    total_epochs: int | None = None
    #: taxonomy error payload when ``status == "failed"``.
    error: dict | None = field(default=None)
    #: tenant that requested the fit (captured at submit time while the
    #: request's contextvars are live); usage-metering only, NOT on the wire.
    tenant: str | None = field(default=None, repr=False)

    @property
    def finished(self) -> bool:
        return self.status in FINISHED_STATES

    def to_dict(self) -> dict:
        duration_ms = None
        if self.started_at is not None and self.finished_at is not None:
            duration_ms = (self.finished_at - self.started_at) * 1000.0
        progress = None
        if self.progress is not None:
            progress = {
                "fraction": self.progress,
                "epoch": self.epoch,
                "total_epochs": self.total_epochs,
            }
        return {
            "job_id": self.job_id,
            "method": self.method,
            "pin": self.pin,
            "status": self.status,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "duration_ms": duration_ms,
            "outcome": self.outcome,
            "phase": self.phase,
            "phase_seconds": dict(self.phase_seconds),
            "progress": progress,
            "error": self.error,
        }


class JobManager:
    """Queues and executes fit jobs against one :class:`ExpanderRegistry`."""

    def __init__(self, registry, clock: Callable[[], float] = time.time,
                 history_limit: int = 64, admission=None, usage=None):
        """``registry`` is any object with the ``ExpanderRegistry`` surface
        (``ensure_known``/``is_fitted``/``get``/``pin``/``stats``, with
        ``get``/``pin`` accepting a ``progress`` phase callback); ``clock``
        stamps job timestamps and is injectable for tests.  ``admission``
        (an :class:`~repro.gate.AdmissionController`) makes fit execution
        compete for slots on the batch lane — waiting, never shedding: a
        job the server accepted should run late rather than vanish.
        ``usage`` (a :class:`~repro.obs.UsageMeter`) bills each job's fit
        wall-time to the tenant that submitted it."""
        self.registry = registry
        self.admission = admission
        self.usage = usage
        self.clock = clock
        self.history_limit = history_limit
        self._cond = threading.Condition()
        self._jobs: dict[str, FitJob] = {}
        #: insertion-ordered job ids (history pruning drops from the left).
        self._order: deque[str] = deque()
        self._pending: deque[str] = deque()
        #: method -> job_id of the queued/running job (at most one per method).
        self._active: dict[str, str] = {}
        self._worker: threading.Thread | None = None
        self._closed = False
        self._submitted = 0

    # -- public API --------------------------------------------------------------
    def submit(self, method: str, pin: bool = False) -> FitJob:
        """Enqueue a fit for ``method`` and return the job immediately.

        Raises :class:`UnknownMethodError` for unservable methods and
        :class:`JobConflictError` when a job for the same method is already
        queued or running (its id is carried in ``details.job_id``).
        """
        self.registry.ensure_known(method)
        name = method.strip().lower()
        with self._cond:
            if self._closed:
                raise ServiceUnavailableError("job manager is shut down")
            active_id = self._active.get(name)
            if active_id is not None:
                active_job = self._jobs.get(active_id)
                status = active_job.status if active_job is not None else "active"
                conflict = JobConflictError(
                    f"a fit job for {name!r} is already {status}"
                )
                conflict.details = {"job_id": active_id, "method": name}
                raise conflict
            self._submitted += 1
            job = FitJob(
                job_id=f"fit-{self._submitted}-{uuid.uuid4().hex[:6]}",
                method=name,
                pin=pin,
                created_at=self.clock(),
                tenant=current_tenant(),
            )
            self._jobs[job.job_id] = job
            self._order.append(job.job_id)
            self._active[name] = job.job_id
            self._pending.append(job.job_id)
            self._prune_locked()
            self._ensure_worker_locked()
            self._cond.notify_all()
            return job

    def get(self, job_id: str) -> FitJob:
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise JobNotFoundError(f"no fit job {job_id!r}")
            return job

    def cancel(self, job_id: str) -> FitJob:
        """Cancel a *queued* job; running or finished jobs conflict (409).

        Cancellation is only offered while the job sits in the queue — a
        running fit owns the worker thread and model-sized allocations, and
        tearing that down mid-train would leave the registry in an undefined
        state, so callers get a deterministic conflict instead.
        """
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise JobNotFoundError(f"no fit job {job_id!r}")
            if job.status != "queued":
                conflict = JobConflictError(
                    f"fit job {job_id!r} is {job.status}; only queued jobs "
                    "can be cancelled"
                )
                conflict.details = {"job_id": job_id, "status": job.status}
                raise conflict
            self._pending.remove(job_id)
            # Terminal status is assigned last (same contract as _execute):
            # a reader that sees "cancelled" also sees finished_at, and the
            # method slot is free for resubmission in the same instant.
            job.finished_at = self.clock()
            job.status = "cancelled"
            self._active.pop(job.method, None)
            self._cond.notify_all()
            return job

    def list(self) -> list[FitJob]:
        """All tracked jobs, most recently created first."""
        with self._cond:
            return [self._jobs[job_id] for job_id in reversed(self._order)]

    def wait(self, job_id: str, timeout: float = 60.0) -> FitJob:
        """Block until ``job_id`` finishes; mainly for tests and the CLI."""
        deadline = time.monotonic() + timeout
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise JobNotFoundError(f"no fit job {job_id!r}")
            while not job.finished:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._cond.wait(timeout=remaining):
                    raise TimeoutError(f"fit job {job_id!r} did not finish in time")
            return job

    def stats(self) -> dict:
        with self._cond:
            by_status: dict[str, int] = {}
            for job in self._jobs.values():
                by_status[job.status] = by_status.get(job.status, 0) + 1
            return {
                "submitted": self._submitted,
                "tracked": len(self._jobs),
                "pending": len(self._pending),
                "by_status": by_status,
            }

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop accepting jobs, fail everything still queued, join the worker."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            while self._pending:
                job = self._jobs[self._pending.popleft()]
                job.finished_at = self.clock()
                _, job.error = error_payload(
                    ServiceUnavailableError("service shut down before the fit ran")
                )
                job.status = "failed"
                self._active.pop(job.method, None)
            self._cond.notify_all()
            worker = self._worker
        if worker is not None:
            worker.join(timeout=timeout)

    # -- worker ------------------------------------------------------------------
    def _ensure_worker_locked(self) -> None:
        if self._worker is None or not self._worker.is_alive():
            self._worker = threading.Thread(
                target=self._run_loop, name="repro-fit-jobs", daemon=True
            )
            self._worker.start()

    def _run_loop(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._closed:
                    self._cond.wait()
                if self._closed and not self._pending:
                    return
                job = self._jobs[self._pending.popleft()]
                job.status = "running"
                job.started_at = self.clock()
            self._execute(job)

    def _execute(self, job: FitJob) -> None:
        phase_started: list[tuple[str, float] | None] = [None]

        def close_phase_locked() -> None:
            open_phase = phase_started[0]
            if open_phase is None:
                return
            name, started = open_phase
            job.phase_seconds[name] = (
                job.phase_seconds.get(name, 0.0) + time.perf_counter() - started
            )
            phase_started[0] = None

        def on_phase(phase: str) -> None:
            # Phase transitions are monotonic and only written by this
            # worker; readers snapshot the field without the lock, so a
            # plain assignment under the condition keeps them coherent.
            with self._cond:
                close_phase_locked()
                phase_started[0] = (phase, time.perf_counter())
                job.phase = phase
                # Entering a phase means everything before its window is done.
                job.progress = max(job.progress or 0.0, phase_window(phase)[0])

        def on_step(
            fraction: float, epoch: int | None, total_epochs: int | None
        ) -> None:
            # Fold the phase-local fraction into the overall bar.  max()
            # keeps the fraction monotonic even when a later stage of the
            # same phase restarts its local count (substrate cache hits
            # jumping to 1.0, multi-substrate subranges, ...).
            with self._cond:
                start, end = phase_window(job.phase)
                overall = start + (end - start) * fraction
                if job.progress is None or overall > job.progress:
                    job.progress = overall
                if epoch is not None:
                    job.epoch = epoch
                if total_epochs is not None:
                    job.total_epochs = total_epochs

        reporter = ProgressReporter(on_phase=on_phase, on_step=on_step)

        try:
            if self.admission is not None:
                # fits ride the batch lane and wait for a slot (shed=False):
                # interactive traffic preempts them, but they never 503.
                self.admission.acquire("batch", shed=False)
            try:
                already_fitted = self.registry.is_fitted(job.method)
                stats_before = self.registry.stats()
                if job.pin:
                    self.registry.pin(job.method, progress=reporter)
                else:
                    self.registry.get(job.method, progress=reporter)
                stats_after = self.registry.stats()
            finally:
                if self.admission is not None:
                    self.admission.release()
            # Per-method wall-time entries change exactly when this method
            # was fitted/restored; global counters would misattribute
            # concurrent restores of *other* methods to this job.
            if already_fitted:
                outcome = "already_fitted"
            elif self._method_stat_changed(stats_before, stats_after, job.method,
                                           "fit_seconds"):
                outcome = "fitted"
            elif self._method_stat_changed(stats_before, stats_after, job.method,
                                           "restore_seconds"):
                outcome = "restored"
            else:
                # another caller raced us through the fit lock and won.
                outcome = "already_fitted"
        except Exception as exc:  # noqa: BLE001 - reported through the job
            with self._cond:
                # status is assigned last: readers snapshot job fields without
                # the lock, and seeing a terminal status must imply the
                # error/outcome/finished_at fields are already populated.
                # _active is released in the same critical section, so a
                # poller that saw a terminal status can always resubmit
                # without racing a stale conflict.
                close_phase_locked()
                job.finished_at = self.clock()
                _, job.error = error_payload(exc)
                job.status = "failed"
                self._active.pop(job.method, None)
                self._cond.notify_all()
            self._charge_fit(job)
            return
        with self._cond:
            close_phase_locked()
            job.outcome = outcome
            job.progress = 1.0
            job.finished_at = self.clock()
            job.status = "succeeded"
            self._active.pop(job.method, None)
            self._cond.notify_all()
        self._charge_fit(job)

    def _charge_fit(self, job: FitJob) -> None:
        """Bill the job's wall-time to its submitting tenant — success or
        failure alike, since the compute was spent either way."""
        if self.usage is None:
            return
        if job.started_at is None or job.finished_at is None:
            return
        self.usage.charge_fit(
            job.tenant, max(0.0, job.finished_at - job.started_at), method=job.method
        )

    @staticmethod
    def _method_stat_changed(before: dict, after: dict, method: str, key: str) -> bool:
        return before[key].get(method) != after[key].get(method)

    def _prune_locked(self) -> None:
        """Cap history: drop the oldest *finished* jobs beyond the limit."""
        excess = len(self._order) - self.history_limit
        if excess <= 0:
            return
        kept: deque[str] = deque()
        for job_id in self._order:
            if excess > 0 and self._jobs[job_id].finished:
                del self._jobs[job_id]
                excess -= 1
            else:
                kept.append(job_id)
        self._order = kept
