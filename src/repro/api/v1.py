"""The transport-agnostic v1 route dispatcher.

:class:`ApiV1` maps ``(verb, path, payload)`` onto an
:class:`ExpansionService` and returns an :class:`ApiResult` — status, domain
data, and (on failure) a taxonomy error payload.  Two renderers turn a result
into a wire body: :func:`render_v1_body` wraps it in the versioned envelope,
:func:`render_legacy_body` produces the exact pre-v1 shapes so the deprecated
unversioned routes can delegate here instead of keeping a second code path.

Both the HTTP front-end (:mod:`repro.serve.server`) and the client SDK's
in-process transport (:mod:`repro.client.transport`) drive this same
dispatcher, which is what guarantees transport parity: same routes, same
statuses, same envelopes, same errors.

Routes::

    GET  /v1/healthz         liveness probe
    GET  /v1/methods         servable methods + persistence/artifact state
    GET  /v1/stats           merged service/cache/registry/batcher/jobs counters
    POST /v1/expand          one ExpandRequest (v1 wire shape, paginated)
    POST /v1/expand/batch    {"requests": [...]} -> per-item response or error
    POST   /v1/fits            start an async fit job -> 202 + job id
    GET    /v1/fits            list tracked fit jobs
    GET    /v1/fits/<job_id>   one fit job's status/outcome/phase (a running
                               job reports restoring / fitting_substrates /
                               training / publishing)
    DELETE /v1/fits/<job_id>   cancel a queued job (409 if running/finished)
    GET  /v1/traces            search kept traces (?tenant=&method=
                               &min_duration_ms=&error=&limit=)
    GET  /v1/traces/<trace_id> one kept trace with its full span tree
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Mapping
from urllib.parse import parse_qs

from repro.api.envelope import error_envelope, success_envelope
from repro.api.errors import error_payload, route_not_found_payload
from repro.exceptions import DatasetError, ServiceError
from repro.obs import current_tenant, span, tenant_scope
from repro.serve.protocol import ExpandRequest
from repro.utils.iox import to_jsonable

#: hard cap on ``/v1/expand/batch`` fan-out per HTTP request.
MAX_BATCH_REQUESTS = 64

#: threads used to push a batch through the service concurrently, so the
#: micro-batcher can coalesce the items into real ``expand_batch`` calls.
_BATCH_CONCURRENCY = 8


@dataclass
class ApiResult:
    """One dispatched call: HTTP status plus either data or a taxonomy error."""

    status: int
    data: Any | None = None
    error: dict | None = None
    #: result-cache outcome of an expand call, for the access log.
    cached: bool | None = None


class ApiV1:
    """Routes v1 calls onto one :class:`ExpansionService`."""

    def __init__(self, service):
        self.service = service
        #: long-lived pool for batch fan-out (created on first batch call, so
        #: one-shot clients that never batch pay nothing).
        self._batch_pool: ThreadPoolExecutor | None = None
        self._batch_pool_lock = threading.Lock()
        self._static_routes: dict[
            tuple[str, str], Callable[[Mapping | None], ApiResult]
        ] = {
            ("GET", "/v1/healthz"): lambda _payload: self.healthz(),
            ("GET", "/v1/methods"): lambda _payload: self.methods(),
            ("GET", "/v1/stats"): lambda _payload: self.stats(),
            ("POST", "/v1/expand"): self.expand,
            ("POST", "/v1/expand/batch"): self.expand_batch,
            ("POST", "/v1/fits"): self.start_fit,
            ("GET", "/v1/fits"): lambda _payload: self.list_fits(),
        }

    # -- dispatch ----------------------------------------------------------------
    def resolves(self, verb: str, path: str) -> bool:
        """Whether a handler exists for ``(verb, path)`` — lets transports
        answer 404 *before* reading a request body."""
        path, _, query = path.partition("?")
        return self._find(verb.upper(), path, query) is not None

    def dispatch(
        self,
        verb: str,
        path: str,
        payload: Mapping | None = None,
        query: str = "",
    ) -> ApiResult:
        """Serve one call; never raises — failures become taxonomy errors.

        ``query`` is the raw query string; in-process transports may instead
        leave it embedded in ``path`` (``/v1/traces?limit=5``) and it is
        split off here."""
        if "?" in path:
            path, _, embedded = path.partition("?")
            query = query or embedded
        handler = self._find(verb.upper(), path, query)
        if handler is None:
            return ApiResult(status=404, error=route_not_found_payload(path))
        try:
            return handler(payload)
        except Exception as exc:  # noqa: BLE001 - rendered into the envelope
            status, error = error_payload(exc)
            return ApiResult(status=status, error=error)

    def _find(
        self, verb: str, path: str, query: str = ""
    ) -> "Callable[[Mapping | None], ApiResult] | None":
        handler = self._static_routes.get((verb, path))
        if handler is not None:
            return handler
        if verb == "GET" and path == "/v1/traces":
            return lambda _payload: self.list_traces(query)
        if verb == "GET" and path.startswith("/v1/traces/"):
            trace_id = path[len("/v1/traces/"):]
            if trace_id and "/" not in trace_id:
                return lambda _payload: self.trace_detail(trace_id)
        if verb in ("GET", "DELETE") and path.startswith("/v1/fits/"):
            job_id = path[len("/v1/fits/"):]
            if job_id and "/" not in job_id:
                if verb == "GET":
                    return lambda _payload: self.fit_status(job_id)
                return lambda _payload: self.cancel_fit(job_id)
        return None

    # -- handlers ----------------------------------------------------------------
    def healthz(self) -> ApiResult:
        return ApiResult(status=200, data={"status": "ok"})

    def methods(self) -> ApiResult:
        return ApiResult(status=200, data={"methods": self.service.methods()})

    def stats(self) -> ApiResult:
        return ApiResult(status=200, data=self.service.stats())

    def expand(self, payload: Mapping | None) -> ApiResult:
        request = ExpandRequest.from_dict(payload)
        response = self.service.submit(request)
        return ApiResult(status=200, data=response, cached=response.cached)

    def expand_batch(self, payload: Mapping | None) -> ApiResult:
        if not isinstance(payload, Mapping):
            raise ServiceError("batch payload must be a JSON object")
        items = payload.get("requests")
        if not isinstance(items, (list, tuple)) or not items:
            raise ServiceError('batch payload needs a non-empty "requests" array')
        if len(items) > MAX_BATCH_REQUESTS:
            raise ServiceError(
                f"batch size {len(items)} exceeds the limit of {MAX_BATCH_REQUESTS}"
            )

        # ContextVars don't cross the pool boundary: capture the tenant here
        # and re-bind it on each worker thread so per-item metrics and
        # admission attribution stay with the caller's tenant.
        tenant = current_tenant()

        def run_one(item) -> dict:
            try:
                with tenant_scope(tenant):
                    # fan-out items ride the batch lane so a big batch cannot
                    # starve concurrent interactive expands under admission.
                    response = self.service.submit(
                        ExpandRequest.from_dict(item), lane="batch"
                    )
            except Exception as exc:  # noqa: BLE001 - reported per item
                _, error = error_payload(exc)
                return {"error": error}
            return {"response": response.to_v1_dict()}

        # Concurrent submission lets the micro-batcher coalesce the items.
        # The span lives on the handler thread: per-item traces cannot share
        # the caller's Trace across the pool, but the fan-out's wall time
        # still shows up in a gateway-joined tree.
        with span("expand_batch", items=len(items)):
            results = list(self._pool().map(run_one, items))
        return ApiResult(
            status=200, data={"responses": results, "count": len(results)}
        )

    def _pool(self) -> ThreadPoolExecutor:
        with self._batch_pool_lock:
            if self._batch_pool is None:
                self._batch_pool = ThreadPoolExecutor(
                    max_workers=_BATCH_CONCURRENCY,
                    thread_name_prefix="repro-api-batch",
                )
            return self._batch_pool

    def close(self) -> None:
        """Release the batch pool (owned by whoever owns this dispatcher —
        the HTTP server or a client transport)."""
        with self._batch_pool_lock:
            pool, self._batch_pool = self._batch_pool, None
        if pool is not None:
            pool.shutdown(wait=False)

    def start_fit(self, payload: Mapping | None) -> ApiResult:
        if not isinstance(payload, Mapping):
            raise ServiceError("fit payload must be a JSON object")
        unknown = set(payload) - {"method", "pin"}
        if unknown:
            raise ServiceError(f"unknown fit fields: {sorted(unknown)}")
        method = payload.get("method")
        if not isinstance(method, str) or not method.strip():
            raise ServiceError("fit payload must name a method")
        pin = payload.get("pin", False)
        if not isinstance(pin, bool):
            raise ServiceError("pin must be a boolean")
        job = self.service.start_fit(method, pin=pin)
        return ApiResult(status=202, data={"job": job.to_dict()})

    def list_fits(self) -> ApiResult:
        jobs = [job.to_dict() for job in self.service.fit_jobs()]
        return ApiResult(status=200, data={"jobs": jobs, "count": len(jobs)})

    def fit_status(self, job_id: str) -> ApiResult:
        return ApiResult(status=200, data={"job": self.service.fit_job(job_id).to_dict()})

    def cancel_fit(self, job_id: str) -> ApiResult:
        return ApiResult(
            status=200, data={"job": self.service.cancel_fit(job_id).to_dict()}
        )

    # -- trace search ------------------------------------------------------------
    def _collector(self):
        collector = getattr(self.service, "traces", None)
        if collector is None:
            raise ServiceError(
                "tracing is not enabled on this service (set trace_sample_rate)"
            )
        return collector

    def list_traces(self, query: str = "") -> ApiResult:
        rows = self._collector().query(**parse_trace_query(query))
        return ApiResult(status=200, data={"traces": rows, "count": len(rows)})

    def trace_detail(self, trace_id: str) -> ApiResult:
        record = self._collector().get(trace_id)
        if record is None:
            raise DatasetError(f"no kept trace {trace_id!r}")
        return ApiResult(status=200, data={"trace": record})


def parse_trace_query(query: str) -> dict:
    """Parse a ``/v1/traces`` query string into TraceCollector.query kwargs.

    Shared by the worker API and the gateway, so the search surface stays
    identical at both tiers.  Raises :class:`ServiceError` (400) on
    malformed values rather than silently ignoring them.
    """
    params = parse_qs(query or "", keep_blank_values=False)
    filters: dict = {}
    tenant = (params.get("tenant") or [None])[-1]
    if tenant:
        filters["tenant"] = tenant
    method = (params.get("method") or [None])[-1]
    if method:
        filters["method"] = method
    raw = (params.get("min_duration_ms") or [None])[-1]
    if raw is not None:
        try:
            filters["min_duration_ms"] = float(raw)
        except ValueError as exc:
            raise ServiceError("min_duration_ms must be a number") from exc
    raw = (params.get("error") or [None])[-1]
    if raw is not None:
        lowered = raw.strip().lower()
        if lowered in ("1", "true", "yes"):
            filters["error"] = True
        elif lowered in ("0", "false", "no"):
            filters["error"] = False
        else:
            raise ServiceError('error filter must be "true" or "false"')
    raw = (params.get("limit") or [None])[-1]
    if raw is not None:
        try:
            filters["limit"] = int(raw)
        except ValueError as exc:
            raise ServiceError("limit must be an integer") from exc
    return filters


# -- rendering -------------------------------------------------------------------------
def _render_data(data: Any) -> Any:
    if hasattr(data, "to_v1_dict"):
        return data.to_v1_dict()
    return to_jsonable(data)


def render_v1_body(result: ApiResult, request_id: str) -> dict:
    """An :class:`ApiResult` as the versioned envelope body."""
    if result.error is not None:
        return error_envelope(request_id, result.error)
    return success_envelope(request_id, _render_data(result.data))


def render_legacy_body(result: ApiResult) -> dict:
    """An :class:`ApiResult` as the pre-v1 wire shape (deprecated routes)."""
    if result.error is not None:
        return {"error": result.error["error"], "message": result.error["message"]}
    if hasattr(result.data, "to_legacy_dict"):
        return result.data.to_legacy_dict()
    return to_jsonable(result.data)
