"""The transport-agnostic v1 route dispatcher.

:class:`ApiV1` maps ``(verb, path, payload)`` onto an
:class:`ExpansionService` and returns an :class:`ApiResult` — status, domain
data, and (on failure) a taxonomy error payload.  Two renderers turn a result
into a wire body: :func:`render_v1_body` wraps it in the versioned envelope,
:func:`render_legacy_body` produces the exact pre-v1 shapes so the deprecated
unversioned routes can delegate here instead of keeping a second code path.

Both the HTTP front-end (:mod:`repro.serve.server`) and the client SDK's
in-process transport (:mod:`repro.client.transport`) drive this same
dispatcher, which is what guarantees transport parity: same routes, same
statuses, same envelopes, same errors.

Routes::

    GET  /v1/healthz         liveness probe
    GET  /v1/methods         servable methods + persistence/artifact state
    GET  /v1/stats           merged service/cache/registry/batcher/jobs counters
    POST /v1/expand          one ExpandRequest (v1 wire shape, paginated)
    POST /v1/expand/batch    {"requests": [...]} -> per-item response or error
    POST   /v1/fits            start an async fit job -> 202 + job id
    GET    /v1/fits            list tracked fit jobs
    GET    /v1/fits/<job_id>   one fit job's status/outcome/phase (a running
                               job reports restoring / fitting_substrates /
                               training / publishing)
    DELETE /v1/fits/<job_id>   cancel a queued job (409 if running/finished)
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.api.envelope import error_envelope, success_envelope
from repro.api.errors import error_payload, route_not_found_payload
from repro.exceptions import ServiceError
from repro.obs import current_tenant, tenant_scope
from repro.serve.protocol import ExpandRequest
from repro.utils.iox import to_jsonable

#: hard cap on ``/v1/expand/batch`` fan-out per HTTP request.
MAX_BATCH_REQUESTS = 64

#: threads used to push a batch through the service concurrently, so the
#: micro-batcher can coalesce the items into real ``expand_batch`` calls.
_BATCH_CONCURRENCY = 8


@dataclass
class ApiResult:
    """One dispatched call: HTTP status plus either data or a taxonomy error."""

    status: int
    data: Any | None = None
    error: dict | None = None
    #: result-cache outcome of an expand call, for the access log.
    cached: bool | None = None


class ApiV1:
    """Routes v1 calls onto one :class:`ExpansionService`."""

    def __init__(self, service):
        self.service = service
        #: long-lived pool for batch fan-out (created on first batch call, so
        #: one-shot clients that never batch pay nothing).
        self._batch_pool: ThreadPoolExecutor | None = None
        self._batch_pool_lock = threading.Lock()
        self._static_routes: dict[
            tuple[str, str], Callable[[Mapping | None], ApiResult]
        ] = {
            ("GET", "/v1/healthz"): lambda _payload: self.healthz(),
            ("GET", "/v1/methods"): lambda _payload: self.methods(),
            ("GET", "/v1/stats"): lambda _payload: self.stats(),
            ("POST", "/v1/expand"): self.expand,
            ("POST", "/v1/expand/batch"): self.expand_batch,
            ("POST", "/v1/fits"): self.start_fit,
            ("GET", "/v1/fits"): lambda _payload: self.list_fits(),
        }

    # -- dispatch ----------------------------------------------------------------
    def resolves(self, verb: str, path: str) -> bool:
        """Whether a handler exists for ``(verb, path)`` — lets transports
        answer 404 *before* reading a request body."""
        return self._find(verb.upper(), path) is not None

    def dispatch(self, verb: str, path: str, payload: Mapping | None = None) -> ApiResult:
        """Serve one call; never raises — failures become taxonomy errors."""
        handler = self._find(verb.upper(), path)
        if handler is None:
            return ApiResult(status=404, error=route_not_found_payload(path))
        try:
            return handler(payload)
        except Exception as exc:  # noqa: BLE001 - rendered into the envelope
            status, error = error_payload(exc)
            return ApiResult(status=status, error=error)

    def _find(
        self, verb: str, path: str
    ) -> "Callable[[Mapping | None], ApiResult] | None":
        handler = self._static_routes.get((verb, path))
        if handler is not None:
            return handler
        if verb in ("GET", "DELETE") and path.startswith("/v1/fits/"):
            job_id = path[len("/v1/fits/"):]
            if job_id and "/" not in job_id:
                if verb == "GET":
                    return lambda _payload: self.fit_status(job_id)
                return lambda _payload: self.cancel_fit(job_id)
        return None

    # -- handlers ----------------------------------------------------------------
    def healthz(self) -> ApiResult:
        return ApiResult(status=200, data={"status": "ok"})

    def methods(self) -> ApiResult:
        return ApiResult(status=200, data={"methods": self.service.methods()})

    def stats(self) -> ApiResult:
        return ApiResult(status=200, data=self.service.stats())

    def expand(self, payload: Mapping | None) -> ApiResult:
        request = ExpandRequest.from_dict(payload)
        response = self.service.submit(request)
        return ApiResult(status=200, data=response, cached=response.cached)

    def expand_batch(self, payload: Mapping | None) -> ApiResult:
        if not isinstance(payload, Mapping):
            raise ServiceError("batch payload must be a JSON object")
        items = payload.get("requests")
        if not isinstance(items, (list, tuple)) or not items:
            raise ServiceError('batch payload needs a non-empty "requests" array')
        if len(items) > MAX_BATCH_REQUESTS:
            raise ServiceError(
                f"batch size {len(items)} exceeds the limit of {MAX_BATCH_REQUESTS}"
            )

        # ContextVars don't cross the pool boundary: capture the tenant here
        # and re-bind it on each worker thread so per-item metrics and
        # admission attribution stay with the caller's tenant.
        tenant = current_tenant()

        def run_one(item) -> dict:
            try:
                with tenant_scope(tenant):
                    # fan-out items ride the batch lane so a big batch cannot
                    # starve concurrent interactive expands under admission.
                    response = self.service.submit(
                        ExpandRequest.from_dict(item), lane="batch"
                    )
            except Exception as exc:  # noqa: BLE001 - reported per item
                _, error = error_payload(exc)
                return {"error": error}
            return {"response": response.to_v1_dict()}

        # Concurrent submission lets the micro-batcher coalesce the items.
        results = list(self._pool().map(run_one, items))
        return ApiResult(
            status=200, data={"responses": results, "count": len(results)}
        )

    def _pool(self) -> ThreadPoolExecutor:
        with self._batch_pool_lock:
            if self._batch_pool is None:
                self._batch_pool = ThreadPoolExecutor(
                    max_workers=_BATCH_CONCURRENCY,
                    thread_name_prefix="repro-api-batch",
                )
            return self._batch_pool

    def close(self) -> None:
        """Release the batch pool (owned by whoever owns this dispatcher —
        the HTTP server or a client transport)."""
        with self._batch_pool_lock:
            pool, self._batch_pool = self._batch_pool, None
        if pool is not None:
            pool.shutdown(wait=False)

    def start_fit(self, payload: Mapping | None) -> ApiResult:
        if not isinstance(payload, Mapping):
            raise ServiceError("fit payload must be a JSON object")
        unknown = set(payload) - {"method", "pin"}
        if unknown:
            raise ServiceError(f"unknown fit fields: {sorted(unknown)}")
        method = payload.get("method")
        if not isinstance(method, str) or not method.strip():
            raise ServiceError("fit payload must name a method")
        pin = payload.get("pin", False)
        if not isinstance(pin, bool):
            raise ServiceError("pin must be a boolean")
        job = self.service.start_fit(method, pin=pin)
        return ApiResult(status=202, data={"job": job.to_dict()})

    def list_fits(self) -> ApiResult:
        jobs = [job.to_dict() for job in self.service.fit_jobs()]
        return ApiResult(status=200, data={"jobs": jobs, "count": len(jobs)})

    def fit_status(self, job_id: str) -> ApiResult:
        return ApiResult(status=200, data={"job": self.service.fit_job(job_id).to_dict()})

    def cancel_fit(self, job_id: str) -> ApiResult:
        return ApiResult(
            status=200, data={"job": self.service.cancel_fit(job_id).to_dict()}
        )


# -- rendering -------------------------------------------------------------------------
def _render_data(data: Any) -> Any:
    if hasattr(data, "to_v1_dict"):
        return data.to_v1_dict()
    return to_jsonable(data)


def render_v1_body(result: ApiResult, request_id: str) -> dict:
    """An :class:`ApiResult` as the versioned envelope body."""
    if result.error is not None:
        return error_envelope(request_id, result.error)
    return success_envelope(request_id, _render_data(result.data))


def render_legacy_body(result: ApiResult) -> dict:
    """An :class:`ApiResult` as the pre-v1 wire shape (deprecated routes)."""
    if result.error is not None:
        return {"error": result.error["error"], "message": result.error["message"]}
    if hasattr(result.data, "to_legacy_dict"):
        return result.data.to_legacy_dict()
    return to_jsonable(result.data)
