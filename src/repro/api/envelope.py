"""Versioned response envelopes of the public expansion API.

Every v1 response — success or error — is wrapped in one envelope shape::

    {"api_version": "v1", "request_id": "req-...", "data": {...}}
    {"api_version": "v1", "request_id": "req-...", "error": {...}}

``api_version`` lets clients detect protocol drift without sniffing bodies,
and the server-assigned ``request_id`` (also echoed in the ``X-Request-Id``
header and the access log) gives every request a correlation handle across
client retries, server logs, and bug reports.
"""

from __future__ import annotations

import uuid
from typing import Any

#: protocol version served under the ``/v1/*`` routes.
API_VERSION = "v1"

#: header carrying the server-assigned request id.
REQUEST_ID_HEADER = "X-Request-Id"


def new_request_id() -> str:
    """A fresh server-assigned request id (``req-`` + 16 hex chars)."""
    return f"req-{uuid.uuid4().hex[:16]}"


def success_envelope(request_id: str, data: Any) -> dict:
    """Wrap a JSON-able payload in the v1 success envelope."""
    return {"api_version": API_VERSION, "request_id": request_id, "data": data}


def error_envelope(request_id: str, error: dict) -> dict:
    """Wrap a taxonomy error payload in the v1 error envelope."""
    return {"api_version": API_VERSION, "request_id": request_id, "error": error}
