"""Versioned response envelopes of the public expansion API.

Every v1 response — success or error — is wrapped in one envelope shape::

    {"api_version": "v1", "request_id": "req-...", "data": {...}}
    {"api_version": "v1", "request_id": "req-...", "error": {...}}

``api_version`` lets clients detect protocol drift without sniffing bodies,
and the ``request_id`` (also echoed in the ``X-Request-Id`` header and the
access log) gives every request a correlation handle across client retries,
server logs, and bug reports.  A client may supply its own id in the
``X-Request-Id`` request header: a syntactically valid one is honored
end-to-end (gateway -> worker -> envelope), a malformed one is replaced with
a fresh server-assigned id.
"""

from __future__ import annotations

import string
import uuid
from typing import Any

#: protocol version served under the ``/v1/*`` routes.
API_VERSION = "v1"

#: header carrying the request id (client-supplied or server-assigned).
REQUEST_ID_HEADER = "X-Request-Id"

#: characters allowed in a client-supplied request id.
_REQUEST_ID_CHARS = frozenset(string.ascii_letters + string.digits + "._-")

#: length ceiling for client-supplied request ids.
MAX_REQUEST_ID_LENGTH = 128


def new_request_id() -> str:
    """A fresh server-assigned request id (``req-`` + 16 hex chars)."""
    return f"req-{uuid.uuid4().hex[:16]}"


def is_valid_request_id(value: object) -> bool:
    """Whether a client-supplied ``X-Request-Id`` may be honored verbatim.

    Purely syntactic: non-empty, bounded length, and restricted to
    URL/log-safe characters so a hostile header cannot inject into JSON
    access logs or response headers.
    """
    return (
        isinstance(value, str)
        and 0 < len(value) <= MAX_REQUEST_ID_LENGTH
        and all(ch in _REQUEST_ID_CHARS for ch in value)
    )


def success_envelope(request_id: str, data: Any) -> dict:
    """Wrap a JSON-able payload in the v1 success envelope."""
    return {"api_version": API_VERSION, "request_id": request_id, "data": data}


def error_envelope(request_id: str, error: dict) -> dict:
    """Wrap a taxonomy error payload in the v1 error envelope."""
    return {"api_version": API_VERSION, "request_id": request_id, "error": error}
