"""The structured error taxonomy of the v1 API.

Every failure crossing the API boundary is rendered as one payload shape::

    {"error": "<exception class>", "code": "<stable code>",
     "message": "...", "details": {...}, "retryable": bool}

``code`` is the machine-readable contract: it is stable across refactors of
the exception hierarchy, maps deterministically to an HTTP status, and tells
clients whether retrying can help (``retryable``).  The same table is used in
both directions — the server maps exceptions to payloads
(:func:`error_payload`) and the client SDK maps payloads back to the matching
exception class (:func:`exception_for_payload`) so in-process and HTTP
callers observe identical error types.
"""

from __future__ import annotations

from repro.exceptions import (
    AuthenticationError,
    DatasetError,
    JobConflictError,
    JobNotFoundError,
    RateLimitedError,
    ReproError,
    ServiceError,
    ServiceUnavailableError,
    UnknownMethodError,
)

# -- stable error codes ---------------------------------------------------------------
CODE_INVALID_REQUEST = "invalid_request"
CODE_UNKNOWN_METHOD = "unknown_method"
CODE_NOT_FOUND = "not_found"
CODE_JOB_NOT_FOUND = "job_not_found"
CODE_CONFLICT = "conflict"
CODE_UNAUTHENTICATED = "unauthenticated"
CODE_RATE_LIMITED = "rate_limited"
CODE_UNAVAILABLE = "unavailable"
CODE_INTERNAL = "internal"

#: exception class -> (HTTP status, code, retryable); ordered most-specific
#: first because the mapping walks it with ``isinstance``.
_TAXONOMY: tuple[tuple[type[BaseException], int, str, bool], ...] = (
    (JobNotFoundError, 404, CODE_JOB_NOT_FOUND, False),
    (JobConflictError, 409, CODE_CONFLICT, False),
    (UnknownMethodError, 404, CODE_UNKNOWN_METHOD, False),
    (AuthenticationError, 401, CODE_UNAUTHENTICATED, False),
    (RateLimitedError, 429, CODE_RATE_LIMITED, True),
    (ServiceUnavailableError, 503, CODE_UNAVAILABLE, True),
    (DatasetError, 404, CODE_NOT_FOUND, False),
    (ReproError, 400, CODE_INVALID_REQUEST, False),
)

#: code -> exception class raised by the client SDK; the inverse of the
#: table above, so both transports surface the same exception types.
_CLIENT_EXCEPTIONS: dict[str, type[ReproError]] = {
    CODE_INVALID_REQUEST: ServiceError,
    CODE_UNKNOWN_METHOD: UnknownMethodError,
    CODE_NOT_FOUND: DatasetError,
    CODE_JOB_NOT_FOUND: JobNotFoundError,
    CODE_CONFLICT: JobConflictError,
    CODE_UNAUTHENTICATED: AuthenticationError,
    CODE_RATE_LIMITED: RateLimitedError,
    CODE_UNAVAILABLE: ServiceUnavailableError,
    CODE_INTERNAL: ServiceError,
}


def error_payload(exc: BaseException) -> tuple[int, dict]:
    """Map an exception to ``(http_status, taxonomy payload)``."""
    for exc_type, status, code, retryable in _TAXONOMY:
        if isinstance(exc, exc_type):
            break
    else:
        status, code, retryable = 500, CODE_INTERNAL, True
    return status, {
        "error": type(exc).__name__,
        "code": code,
        "message": str(exc),
        "details": dict(getattr(exc, "details", {}) or {}),
        "retryable": retryable,
    }


def route_not_found_payload(path: str) -> dict:
    """The taxonomy payload for a path no handler serves."""
    return {
        "error": "NotFound",
        "code": CODE_NOT_FOUND,
        "message": f"no route {path!r}",
        "details": {"path": path},
        "retryable": False,
    }


def exception_for_payload(error: dict) -> ReproError:
    """Reconstruct the exception a taxonomy payload describes (client side)."""
    code = error.get("code", CODE_INTERNAL)
    exc_type = _CLIENT_EXCEPTIONS.get(code, ServiceError)
    exc = exc_type(error.get("message", f"server error (code={code})"))
    details = error.get("details")
    if details:
        exc.details = dict(details)
    return exc


def is_retryable(error: dict) -> bool:
    """Whether a taxonomy payload marks the failure as retryable."""
    return bool(error.get("retryable", False))
