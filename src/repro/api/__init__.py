"""The versioned public API of the expansion service.

This package owns everything about the v1 protocol that is independent of a
transport:

* :mod:`repro.api.envelope` — the ``{api_version, request_id, data|error}``
  response envelope and server-assigned request ids;
* :mod:`repro.api.errors` — the structured error taxonomy
  ``{error, code, message, details, retryable}`` mapped to HTTP statuses in
  both directions (server render / client raise);
* :mod:`repro.api.options` — :class:`ExpandOptions`, the typed per-request
  serving options threaded through :class:`ExpansionService`;
* :mod:`repro.api.jobs` — the async fit-job subsystem behind
  ``POST /v1/fits``;
* :mod:`repro.api.v1` — the transport-agnostic route dispatcher shared by
  the HTTP server and the client SDK's in-process transport (imported as a
  submodule, not re-exported here, to keep this package import-light).
"""

from repro.api.envelope import (
    API_VERSION,
    REQUEST_ID_HEADER,
    error_envelope,
    new_request_id,
    success_envelope,
)
from repro.api.errors import (
    error_payload,
    exception_for_payload,
    is_retryable,
    route_not_found_payload,
)
from repro.api.jobs import FitJob, JobManager
from repro.api.options import ExpandOptions

__all__ = [
    "API_VERSION",
    "REQUEST_ID_HEADER",
    "new_request_id",
    "success_envelope",
    "error_envelope",
    "error_payload",
    "exception_for_payload",
    "is_retryable",
    "route_not_found_payload",
    "FitJob",
    "JobManager",
    "ExpandOptions",
]
