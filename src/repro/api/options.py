"""Expansion request options — one typed object instead of loose kwargs.

:class:`ExpandOptions` carries everything about *how* to serve an expansion
(ranked-list size, caching, pagination, name resolution) separately from
*what* to expand (the query addressing on
:class:`~repro.serve.protocol.ExpandRequest`).  The service threads the whole
object down the request path, so adding an option is one field here rather
than a new kwarg on every layer.

The module also owns the strict JSON integer coercion shared by the request
parsers: JSON booleans are *rejected* where ids or counts are expected,
because ``int(True) == 1`` would otherwise silently turn ``true`` into
entity id 1 or ``top_k`` 1.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Mapping

from repro.exceptions import ServiceError


def coerce_int(value: Any, field_name: str, minimum: int | None = None) -> int:
    """``value`` as an int, rejecting bools and sub-minimum values."""
    if isinstance(value, bool):
        raise ServiceError(f"{field_name} must be an integer, not a boolean")
    try:
        coerced = int(value)
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"{field_name} must be an integer, got {value!r}") from exc
    if minimum is not None and coerced < minimum:
        raise ServiceError(f"{field_name} must be >= {minimum}, got {coerced}")
    return coerced


def coerce_optional_int(
    value: Any, field_name: str, minimum: int | None = None
) -> int | None:
    """Like :func:`coerce_int` but passes ``None`` through."""
    return None if value is None else coerce_int(value, field_name, minimum)


def coerce_bool(value: Any, field_name: str) -> bool:
    """``value`` as a bool, rejecting everything that is not a JSON boolean."""
    if not isinstance(value, bool):
        raise ServiceError(f"{field_name} must be a boolean, got {value!r}")
    return value


def coerce_str(value: Any, field_name: str) -> str:
    """``value`` as a str, rejecting everything that is not a JSON string."""
    if not isinstance(value, str):
        raise ServiceError(f"{field_name} must be a string, got {value!r}")
    return value


@dataclass(frozen=True)
class ExpandOptions:
    """How one expansion request should be served."""

    #: ranked-list size; ``None`` uses the service's ``default_top_k``.
    top_k: int | None = None
    #: set to ``False`` to bypass the result cache (always recompute).
    use_cache: bool = True
    #: pagination into the ranked list: skip the first ``offset`` entries ...
    offset: int = 0
    #: ... and return at most ``limit`` entries (``None`` = the rest).
    limit: int | None = None
    #: resolve entity ids to surface forms; ``False`` halves the wire size.
    return_names: bool = True
    #: return per-stage trace timings in a ``debug.timings`` block of the
    #: response (cache lookup, batch queue wait, execution, ...).
    include_timings: bool = False
    #: candidate retrieval strategy: ``"auto"`` (probed ANN once the
    #: vocabulary is large enough), ``"on"`` (force probed retrieval), or
    #: ``"off"`` (force the exact full-vocabulary scan).
    ann: str = "auto"
    #: override the number of probed ANN lists (``None`` = index default).
    nprobe: int | None = None

    def validate(self) -> None:
        if isinstance(self.top_k, bool) or (
            self.top_k is not None and self.top_k <= 0
        ):
            raise ServiceError("top_k must be a positive integer")
        if isinstance(self.offset, bool) or self.offset < 0:
            raise ServiceError("offset must be a non-negative integer")
        if isinstance(self.limit, bool) or (self.limit is not None and self.limit <= 0):
            raise ServiceError("limit must be a positive integer or null")
        if self.ann not in ("auto", "on", "off"):
            raise ServiceError("ann must be one of 'auto', 'on', 'off'")
        if isinstance(self.nprobe, bool) or (
            self.nprobe is not None and self.nprobe < 1
        ):
            raise ServiceError("nprobe must be a positive integer or null")

    def resolved_top_k(self, default: int) -> int:
        return self.top_k if self.top_k is not None else default

    def retrieval_profile(self):
        """The :class:`~repro.retrieval.RetrievalProfile` these options ask for."""
        from repro.retrieval import RetrievalProfile

        return RetrievalProfile(ann=self.ann, nprobe=self.nprobe)

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ExpandOptions":
        """Parse a JSON ``options`` object, rejecting unknown fields."""
        if not isinstance(payload, Mapping):
            raise ServiceError("options must be a JSON object")
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ServiceError(f"unknown options fields: {sorted(unknown)}")
        options = cls(
            top_k=coerce_optional_int(payload.get("top_k"), "top_k", minimum=1),
            use_cache=coerce_bool(payload.get("use_cache", True), "use_cache"),
            offset=coerce_int(payload.get("offset", 0), "offset", minimum=0),
            limit=coerce_optional_int(payload.get("limit"), "limit", minimum=1),
            return_names=coerce_bool(
                payload.get("return_names", True), "return_names"
            ),
            include_timings=coerce_bool(
                payload.get("include_timings", False), "include_timings"
            ),
            ann=coerce_str(payload.get("ann", "auto"), "ann"),
            nprobe=coerce_optional_int(payload.get("nprobe"), "nprobe", minimum=1),
        )
        options.validate()
        return options

    def to_dict(self) -> dict:
        return {
            "top_k": self.top_k,
            "use_cache": self.use_cache,
            "offset": self.offset,
            "limit": self.limit,
            "return_names": self.return_names,
            "include_timings": self.include_timings,
            "ann": self.ann,
            "nprobe": self.nprobe,
        }
