"""Lazily-fitted, shared expanders for the serving layer.

``Expander.fit`` is by far the most expensive step of every method (training
the context encoder, continued pre-training of the causal LM, ...), so an
online service must amortise it: the :class:`ExpanderRegistry` fits each
named method **at most once per dataset** and hands the same fitted instance
to every request.

Entries are keyed by ``(method, dataset.fingerprint())`` so a registry can
outlive dataset reloads without serving a model trained on stale data.
Fitting is guarded by a per-key lock: when N requests race for an unfitted
method, one fits while the other N-1 block, and nobody fits twice.  A small
LRU bound keeps memory in check; frequently-used methods can be pinned to
exempt them from eviction.

With an :class:`~repro.store.ArtifactStore` attached, fits also become
durable: a registry miss first tries to *restore* the fitted state from disk
(written by an earlier process, a prefit run, or a sibling worker), and a
fresh fit is written through to the store so the next restart skips it.
Corrupt or version-mismatched artifacts are evicted and refitted — the store
can only ever make a fit cheaper, never wrong.

Resident expanders also share one :class:`~repro.substrate.SubstrateProvider`
(through the registry's :class:`SharedResources` pool): the co-occurrence
embeddings, entity representations, and causal LM behind the methods exist
**once** in memory per dataset regardless of how many methods are resident,
and substrate fits restore from (and write through to) the registry's store
as content-addressed artifacts.  Substrate hit/miss/fit counters surface
under ``stats()["substrates"]`` (and ``/v1/stats``).

Across *processes*, the store also carries a :class:`~repro.store.FitLock`:
before paying a cold fit, the registry elects a leader via an atomic lock
file in the store directory, so N workers sharing a store pay each fit
exactly once — the leader trains and publishes, the waiters restore the
published artifact.  A stuck or dead leader goes stale and waiters fall back
to fitting locally; the lock can delay a fit, never block serving.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import TYPE_CHECKING, Callable, Mapping

from repro.baselines import CGExpan, CaSE, GPT4Expander, ProbExpan, SetExpan
from repro.core.base import Expander
from repro.core.resources import SharedResources
from repro.dataset.ultrawiki import UltraWikiDataset
from repro.exceptions import (
    ArtifactNotFoundError,
    ArtifactVersionError,
    ServiceError,
    StoreError,
    UnknownMethodError,
)
from repro.genexpan import GenExpan
from repro.obs import MetricsRegistry, ProgressReporter, span
from repro.obs.progress import NULL_PROGRESS
from repro.retexpan import RetExpan
from repro.store.fitlock import DEFAULT_STALE_SECONDS, FitLock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store import ArtifactStore

#: canonical method name -> factory over the shared substrates.
ExpanderFactory = Callable[[SharedResources], Expander]

DEFAULT_FACTORIES: dict[str, ExpanderFactory] = {
    "retexpan": lambda res: RetExpan(resources=res),
    "genexpan": lambda res: GenExpan(resources=res),
    "setexpan": lambda res: SetExpan(),
    "case": lambda res: CaSE(resources=res),
    "cgexpan": lambda res: CGExpan(resources=res),
    "probexpan": lambda res: ProbExpan(resources=res),
    "gpt4": lambda res: GPT4Expander(resources=res),
}


class ExpanderRegistry:
    """Fits and pins named expanders against one dataset."""

    def __init__(
        self,
        dataset: UltraWikiDataset,
        resources: SharedResources | None = None,
        factories: Mapping[str, ExpanderFactory] | None = None,
        capacity: int = 8,
        store: "ArtifactStore | None" = None,
        fit_lock: bool = True,
        fit_lock_wait_seconds: float = 600.0,
        fit_lock_stale_seconds: float = DEFAULT_STALE_SECONDS,
        metrics: MetricsRegistry | None = None,
    ):
        """``fit_lock`` elects a cross-process leader (via a lock file in the
        store directory) before any cold fit, so sibling workers sharing the
        store pay each fit once; it is a no-op without a ``store``."""
        if capacity < 1:
            raise ServiceError("registry capacity must be >= 1")
        self.dataset = dataset
        # The pool's substrate provider shares the registry's store, so
        # substrate fits restore from (and write through to) the same
        # content-addressed artifacts the method manifests reference.  An
        # injected pool that already has its own store keeps it.
        if resources is None:
            resources = SharedResources(dataset, store=store, fit_lock=fit_lock)
        elif store is not None:
            resources.provider.attach_store(store)
        self.resources = resources
        self.capacity = capacity
        self.store = store
        self.fit_lock_enabled = bool(fit_lock) and store is not None
        self.fit_lock_wait_seconds = fit_lock_wait_seconds
        self.fit_lock_stale_seconds = fit_lock_stale_seconds
        self._factories = dict(
            DEFAULT_FACTORIES if factories is None else factories
        )
        self._fingerprint = dataset.fingerprint()
        self._lock = threading.Lock()
        #: (method, fingerprint) -> fitted expander, in recency order.
        self._entries: OrderedDict[tuple[str, str], Expander] = OrderedDict()
        self._pinned: set[tuple[str, str]] = set()
        self._fit_locks: dict[tuple[str, str], threading.Lock] = {}
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._fits = self.metrics.counter(
            "repro_registry_fits_total", "Expander fits paid by this process."
        )
        self._hits = self.metrics.counter(
            "repro_registry_hits_total", "Registry lookups served a resident expander."
        )
        self._evictions = self.metrics.counter(
            "repro_registry_evictions_total", "Fitted expanders dropped from the LRU."
        )
        #: artifact-store traffic counters (all zero when no store is attached).
        self._restore_hits = self.metrics.counter(
            "repro_registry_restore_hits_total", "Expander restores from the store."
        )
        self._restore_misses = self.metrics.counter(
            "repro_registry_restore_misses_total", "Store restores that missed."
        )
        self._write_throughs = self.metrics.counter(
            "repro_registry_write_throughs_total", "Fits written through to the store."
        )
        self._store_errors = self.metrics.counter(
            "repro_registry_store_errors_total", "Store failures absorbed while serving."
        )
        #: cross-process fit-lock traffic counters.
        self._fit_lock_acquires = self.metrics.counter(
            "repro_registry_fitlock_acquires_total", "Cross-process fit-lock wins."
        )
        self._fit_lock_waits = self.metrics.counter(
            "repro_registry_fitlock_waits_total", "Waits behind another fit leader."
        )
        self._fit_lock_restores = self.metrics.counter(
            "repro_registry_fitlock_restores_total",
            "Restores of a leader-published artifact after a wait.",
        )
        self._fit_lock_timeouts = self.metrics.counter(
            "repro_registry_fitlock_timeouts_total",
            "Local fallback fits after a stuck leader exceeded the wait budget.",
        )
        # Substrate counters join the same registry so /v1/metrics exposes
        # the full picture; an injected provider replays its prior values.
        self.resources.provider.attach_metrics(self.metrics)
        #: wall-clock seconds of the most recent fit / restore per method.
        self._fit_seconds: dict[str, float] = {}
        self._restore_seconds: dict[str, float] = {}
        #: cached persistence metadata per method (from a throwaway instance).
        self._descriptions: dict[str, dict] = {}

    # -- lookup ------------------------------------------------------------------
    def methods(self) -> list[str]:
        """The method names this registry can serve."""
        return sorted(self._factories)

    def is_fitted(self, method: str) -> bool:
        with self._lock:
            return self._key(method) in self._entries

    def peek(self, method: str) -> Expander | None:
        """The fitted expander if present, without fitting or touching LRU order."""
        with self._lock:
            return self._entries.get(self._key(method))

    def _key(self, method: str) -> tuple[str, str]:
        return (method.strip().lower(), self._fingerprint)

    def ensure_known(self, method: str) -> None:
        """Raise :class:`UnknownMethodError` unless ``method`` is servable."""
        if self._key(method)[0] not in self._factories:
            raise UnknownMethodError(
                f"unknown method {method!r}; available: {self.methods()}"
            )

    def describe(self, method: str) -> dict:
        """Static persistence metadata of a method, without fitting it.

        Built once per method from a throwaway (unfitted) factory instance —
        construction is cheap for every registered expander; only ``fit``
        trains models — and cached for subsequent ``/v1/methods`` calls.
        """
        self.ensure_known(method)
        name = self._key(method)[0]
        with self._lock:
            cached = self._descriptions.get(name)
            if cached is not None:
                return dict(cached)
        prototype = self._factories[name](self.resources)
        description = {
            "supports_persistence": bool(prototype.supports_persistence),
            "state_version": int(prototype.state_version),
        }
        with self._lock:
            self._descriptions[name] = description
            return dict(description)

    def artifact_available(self, method: str) -> bool | None:
        """Whether the store holds an artifact for ``method`` on the current
        dataset fingerprint; ``None`` when no store is attached."""
        if self.store is None:
            return None
        name = self._key(method)[0]
        try:
            return self.store.contains(name, self._fingerprint)
        except (StoreError, OSError):
            return False

    def get(
        self,
        method: str,
        progress: "Callable[[str], None] | ProgressReporter | None" = None,
    ) -> Expander:
        """The fitted expander for ``method``, fitting it on first use.

        ``progress`` (used by async fit jobs) receives the phase the
        materialisation is in: ``restoring``, ``fitting_substrates``,
        ``training``, or ``publishing``.  A cache hit reports nothing.
        A plain ``Callable[[str], None]`` gets phases only; a
        :class:`~repro.obs.progress.ProgressReporter` additionally receives
        fractional step progress from the substrate training loops.
        """
        self.ensure_known(method)
        key = self._key(method)
        name = key[0]
        with self._lock:
            expander = self._entries.get(key)
            if expander is not None:
                self._entries.move_to_end(key)
                self._hits.inc()
                return expander
            fit_lock = self._fit_locks.setdefault(key, threading.Lock())
        # Fit outside the registry lock so other methods stay servable, but
        # under the per-key lock so concurrent requests fit at most once.
        with fit_lock:
            with self._lock:
                expander = self._entries.get(key)
                if expander is not None:
                    self._entries.move_to_end(key)
                    self._hits.inc()
                    return expander
            expander = self._materialize(name, ProgressReporter.adapt(progress))
            with self._lock:
                self._entries[key] = expander
                self._evict_locked()
            return expander

    def _materialize(self, name: str, progress: ProgressReporter) -> Expander:
        """Produce a fitted expander: restore from the store when possible,
        otherwise fit — with a cross-process fit lock electing one leader per
        ``(method, fingerprint)`` so a fleet sharing the store trains once."""
        expander = self._factories[name](self.resources)
        progress.phase("restoring")
        with span("store_restore", method=name):
            restored = self._try_restore(name, expander)
        if restored:
            return expander
        if not (self.fit_lock_enabled and expander.supports_persistence):
            return self._fit_and_publish(name, expander, progress)
        lock = FitLock(
            self.store.root,
            name,
            self._fingerprint,
            stale_after=self.fit_lock_stale_seconds,
        )
        deadline = time.monotonic() + self.fit_lock_wait_seconds
        contended = False
        while True:
            if lock.try_acquire():
                try:
                    self._fit_lock_acquires.inc()
                    # Another leader may have published between our restore
                    # miss and winning the lock (it can finish entirely
                    # inside that window, so even an uncontended acquire is
                    # not proof of absence).  A cheap manifest-existence
                    # probe gates the full checksum-verified restore so the
                    # plain cold-fit path stays a single restore miss.
                    if (contended or self.artifact_available(name)) and (
                        self._try_restore(name, expander)
                    ):
                        self._fit_lock_restores.inc()
                        return expander
                    return self._fit_and_publish(name, expander, progress)
                finally:
                    lock.release()
            contended = True
            self._fit_lock_waits.inc()
            freed = lock.wait(timeout=max(0.0, deadline - time.monotonic()))
            if self._try_restore(name, expander):
                self._fit_lock_restores.inc()
                return expander
            if not freed or time.monotonic() >= deadline:
                # The leader is stuck past our wait budget (or failed without
                # publishing): fit locally — liveness beats single-payer.
                self._fit_lock_timeouts.inc()
                return self._fit_and_publish(name, expander, progress)
            # The lock was freed but nothing was published (the leader
            # crashed or its method cannot persist): stand for election.

    def _fit_and_publish(
        self,
        name: str,
        expander: Expander,
        progress: ProgressReporter = NULL_PROGRESS,
    ) -> Expander:
        # Resolve the declared substrates first: a warm provider (another
        # resident method, or a persisted substrate artifact) makes the
        # training phase below method-only work, and fit jobs can report
        # the two phases separately.  Each dependency gets an equal slice of
        # the ``fitting_substrates`` phase, so its training loop's step
        # fractions land in the right portion of the overall bar.
        dependencies = expander.substrate_dependencies()
        if dependencies:
            progress.phase("fitting_substrates")
            provider = self.resources.provider
            total = len(dependencies)
            with span("fit_substrates", method=name):
                for index, (kind, params) in enumerate(dependencies):
                    provider.get(
                        kind,
                        params,
                        progress=progress.subrange(index / total, (index + 1) / total),
                    )
        progress.phase("training")
        started = time.perf_counter()
        with span("train", method=name):
            expander.fit(self.dataset)
        elapsed = time.perf_counter() - started
        self._fits.inc()
        with self._lock:
            self._fit_seconds[name] = elapsed
        progress.phase("publishing")
        with span("publish", method=name):
            self._write_through(name, expander)
        return expander

    def _try_restore(self, name: str, expander: Expander) -> bool:
        """Restore ``expander`` from the artifact store; False means refit.

        A corrupt or version-mismatched artifact is evicted so the
        write-through after the fallback fit replaces it with a good one.
        """
        if self.store is None or not expander.supports_persistence:
            return False
        started = time.perf_counter()
        try:
            self.store.restore(name, self._fingerprint, expander, self.dataset)
        except ArtifactNotFoundError:
            self._restore_misses.inc()
            return False
        except ArtifactVersionError:
            # Another (older or newer) build wrote this artifact.  Treat it
            # as a miss but leave it in place: evicting would let
            # mixed-version workers sharing one store destroy each other's
            # artifacts back and forth.  The write-through after the refit
            # re-publishes this build's version.
            self._restore_misses.inc()
            self._store_errors.inc()
            return False
        except (StoreError, OSError):
            # Corrupt state (or a raw filesystem race): evict so the
            # write-through after the fallback fit publishes a good artifact.
            try:
                self.store.evict(name, self._fingerprint)
            except (StoreError, OSError):
                # A read-only store must not take down serving; refit anyway.
                pass
            self._restore_misses.inc()
            self._store_errors.inc()
            return False
        elapsed = time.perf_counter() - started
        self._restore_hits.inc()
        with self._lock:
            self._restore_seconds[name] = elapsed
        return True

    def _write_through(self, name: str, expander: Expander) -> None:
        if self.store is None or not expander.supports_persistence:
            return
        try:
            self.store.save(name, self._fingerprint, expander)
        except (StoreError, OSError):
            # Persistence is an optimisation; a failed write must never take
            # down the serving path that just produced a good fit.
            self._store_errors.inc()
            return
        self._write_throughs.inc()

    def _evict_locked(self) -> None:
        unpinned = [k for k in self._entries if k not in self._pinned]
        while len(unpinned) > self.capacity:
            victim = unpinned.pop(0)
            del self._entries[victim]
            self._evictions.inc()

    # -- pinning -----------------------------------------------------------------
    def pin(
        self,
        method: str,
        progress: "Callable[[str], None] | ProgressReporter | None" = None,
    ) -> Expander:
        """Fit (if needed) and exempt ``method`` from LRU eviction."""
        expander = self.get(method, progress=progress)
        with self._lock:
            self._pinned.add(self._key(method))
        return expander

    def unpin(self, method: str) -> None:
        with self._lock:
            self._pinned.discard(self._key(method))
            self._evict_locked()

    # -- maintenance ---------------------------------------------------------------
    def register(self, method: str, factory: ExpanderFactory) -> None:
        """Add (or replace) a method factory, e.g. a custom ablation variant."""
        with self._lock:
            self._factories[method.strip().lower()] = factory

    def evict(self, method: str) -> bool:
        """Drop a fitted expander explicitly; returns True when one existed."""
        key = self._key(method)
        with self._lock:
            self._pinned.discard(key)
            if key in self._entries:
                del self._entries[key]
                self._evictions.inc()
                return True
            return False

    def stats(self) -> dict:
        """The legacy stats dict (wire shape pinned), as a registry view."""
        with self._lock:
            fitted = sorted(k[0] for k in self._entries)
            pinned = sorted(k[0] for k in self._pinned)
            fit_seconds = dict(self._fit_seconds)
            restore_seconds = dict(self._restore_seconds)
        return {
            "fitted": fitted,
            "pinned": pinned,
            "capacity": self.capacity,
            "dataset_fingerprint": self._fingerprint,
            "fits": int(self._fits.total()),
            "hits": int(self._hits.total()),
            "evictions": int(self._evictions.total()),
            "fit_seconds": fit_seconds,
            "restore_seconds": restore_seconds,
            "store": {
                "enabled": self.store is not None,
                "restore_hits": int(self._restore_hits.total()),
                "restore_misses": int(self._restore_misses.total()),
                "write_throughs": int(self._write_throughs.total()),
                "errors": int(self._store_errors.total()),
            },
            "fit_lock": {
                "enabled": self.fit_lock_enabled,
                "acquires": int(self._fit_lock_acquires.total()),
                "waits": int(self._fit_lock_waits.total()),
                "restores_after_wait": int(self._fit_lock_restores.total()),
                "timeouts": int(self._fit_lock_timeouts.total()),
            },
            "substrates": self.resources.provider.stats(),
        }
