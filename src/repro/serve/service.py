"""The expansion service: registry + cache + micro-batcher behind one API.

:class:`ExpansionService` is the in-process facade the v1 API, the client
SDK's in-process transport, and tests all talk to.  One ``submit`` call is
one request; the hot path is::

    request -> validate -> resolve query -> result cache? -> micro-batcher
            -> ExpanderRegistry (lazy one-time fit) -> expand_batch -> cache
            -> paginate / resolve names (ExpandOptions)

Cold fits can also be warmed explicitly instead of stalling a first request:
:meth:`start_fit` hands the method to a background :class:`JobManager`
(``POST /v1/fits`` on the wire) and :meth:`fit_job` reports progress.

Telemetry is unified on one :class:`~repro.obs.MetricsRegistry` owned by the
service (labelled with the dataset fingerprint) and shared with the cache,
batcher, registry, and substrate provider; :meth:`stats` is a wire-compatible
view over it, and the same registry renders ``GET /v1/metrics``.  Requests
that ask for ``include_timings`` (or cross ``ServiceConfig.slow_query_ms``)
carry a :class:`~repro.obs.Trace` through the hot path, so per-stage timings
come back on the response and land in the slow-query log.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Mapping, Sequence

from repro.api.jobs import FitJob, JobManager
from repro.api.options import ExpandOptions
from repro.config import ServiceConfig
from repro.core.resources import SharedResources
from repro.dataset.ultrawiki import UltraWikiDataset
from repro.exceptions import DatasetError, ServiceUnavailableError
from repro.gate import AdmissionController, Gate, QuotaSpec, TenantDirectory
from repro.obs import (
    MetricsRegistry,
    SlowQueryLog,
    Trace,
    TraceCollector,
    UsageMeter,
    activate,
    build_exporter,
    current_request_id,
    current_tenant,
    current_trace,
    log_slow_query,
    span,
)
from repro.serve.batcher import MicroBatcher
from repro.serve.cache import ResultCache
from repro.serve.protocol import ExpandRequest, ExpandResponse, MethodInfo
from repro.serve.registry import ExpanderFactory, ExpanderRegistry
from repro.store import ArtifactStore
from repro.types import ExpansionResult, Query


class ExpansionService:
    """Serves expansion queries over a fitted expander fleet."""

    def __init__(
        self,
        dataset: UltraWikiDataset,
        config: ServiceConfig | None = None,
        resources: SharedResources | None = None,
        factories: Mapping[str, ExpanderFactory] | None = None,
        clock: Callable[[], float] = time.monotonic,
        store: ArtifactStore | None = None,
    ):
        """``resources`` lets callers share already-fitted substrates (e.g.
        an :class:`ExperimentContext`); ``clock`` feeds the TTL cache and is
        injectable for deterministic expiry tests.  ``store`` (or
        ``config.store_dir``) attaches the persistent artifact store so fits
        survive restarts and are shared across worker processes."""
        self.config = config or ServiceConfig()
        self.config.validate()
        self.dataset = dataset
        if store is None and self.config.store_dir is not None:
            store = ArtifactStore(self.config.store_dir)
        self.store = store
        # One registry for every serving layer; stats() endpoints are views
        # over it and /v1/metrics renders it.  metrics_enabled=False swaps in
        # shared no-op instruments (the benchmark overhead baseline).
        self.metrics = MetricsRegistry(
            enabled=self.config.metrics_enabled,
            const_labels={"dataset": dataset.fingerprint()},
        )
        self.registry = ExpanderRegistry(
            dataset,
            resources=resources,
            factories=factories,
            capacity=self.config.registry_capacity,
            store=store,
            fit_lock=self.config.fit_lock,
            fit_lock_wait_seconds=self.config.fit_lock_wait_seconds,
            metrics=self.metrics,
        )
        self.cache = ResultCache(
            capacity=self.config.cache_capacity,
            ttl_seconds=self.config.cache_ttl_seconds,
            clock=clock,
            metrics=self.metrics,
        )
        # Billing-grade per-tenant metering; built before the batcher so
        # batch execute wall-time can be amortized across riders at source.
        self.usage: UsageMeter | None = None
        if self.config.usage_metering or self.config.usage_ledger is not None:
            self.usage = UsageMeter(
                ledger_path=self.config.usage_ledger,
                rollup_interval_seconds=self.config.usage_rollup_interval_seconds,
            )
        # Searchable ring of completed traces (GET /v1/traces).  None means
        # tracing is off entirely; rate 0.0 installs the collector but keeps
        # only slow/errored traces (head sampling disabled).
        self.traces: TraceCollector | None = None
        if self.config.trace_sample_rate is not None:
            self.traces = TraceCollector(
                capacity=self.config.trace_buffer_size,
                sample_rate=self.config.trace_sample_rate,
                slow_ms=self.config.slow_query_ms,
                rng=(
                    random.Random(self.config.trace_sample_seed)
                    if self.config.trace_sample_seed is not None
                    else None
                ),
                export=self.config.trace_export,
            )
        self.batcher = MicroBatcher(
            self._execute_batch,
            max_batch_size=self.config.max_batch_size,
            max_wait_ms=self.config.batch_wait_ms,
            num_workers=self.config.batch_workers,
            metrics=self.metrics,
            usage=self.usage,
        )
        # The front door (repro.gate): built only when configured, so a
        # plain service carries zero gate state and stays fully open.
        self.gate: Gate | None = None
        if self.config.keyfile is not None or self.config.default_quota is not None:
            directory = None
            if self.config.keyfile is not None:
                directory = TenantDirectory(
                    self.config.keyfile,
                    reload_interval_seconds=self.config.keyfile_reload_seconds,
                )
            self.gate = Gate(
                directory=directory,
                default_quota=(
                    None
                    if self.config.default_quota is None
                    else QuotaSpec.parse(self.config.default_quota)
                ),
                metrics=self.metrics,
            )
        self.admission: AdmissionController | None = None
        if self.config.admission_max_concurrent is not None:
            self.admission = AdmissionController(
                max_concurrent=self.config.admission_max_concurrent,
                queue_depth=self.config.admission_queue_depth,
                timeout_seconds=self.config.admission_timeout_seconds,
                metrics=self.metrics,
            )
        self.jobs = JobManager(
            self.registry, admission=self.admission, usage=self.usage
        )
        self._queries_by_id: dict[str, Query] = {
            q.query_id: q for q in dataset.queries
        }
        self._entity_names: dict[int, str] = {
            e.entity_id: e.name for e in dataset.entities()
        }
        self._lock = threading.Lock()
        self._requests = self.metrics.counter(
            "repro_service_requests_total", "Expand requests submitted."
        )
        self._errors = self.metrics.counter(
            "repro_service_errors_total", "Expand requests that raised."
        )
        self._adhoc = self.metrics.counter(
            "repro_service_adhoc_queries_total", "Inline-seed (ad-hoc) queries."
        )
        # Exemplars capture the current request id per latency bucket, so a
        # fat p99 bucket on /v1/metrics joins straight to a slow-query line.
        self._latency = self.metrics.histogram(
            "repro_request_latency_ms",
            "End-to-end expand latency (cached and uncached).",
            exemplars=True,
        )
        # hot-path handles: label resolution paid once, not per request.
        self._requests_series = self._requests.labels()
        self._errors_series = self._errors.labels()
        self._latency_by_method: dict = {}
        # per-tenant bound series, created on a tenant's first request; the
        # registry's MAX_SERIES_PER_FAMILY cap bounds the cardinality.
        self._requests_by_tenant: dict = {}
        self._errors_by_tenant: dict = {}
        #: serial for adhoc query ids; must stay exact even with metrics off.
        self._adhoc_serial = 0
        self._closed = False
        self._slow_log: SlowQueryLog | None = None
        if self.config.slow_query_log is not None:
            self._slow_log = SlowQueryLog(
                self.config.slow_query_log,
                max_bytes=self.config.slow_query_max_bytes,
            )
        self.exporter = build_exporter(
            self.metrics,
            self.config.exporter,
            self.config.exporter_target,
            interval_seconds=self.config.exporter_interval_seconds,
            max_retries=self.config.exporter_max_retries,
        )
        if self.exporter is not None:
            if (
                self.config.trace_export
                and self.traces is not None
                and self.exporter.supports_spans
            ):
                # kept traces also ship out-of-band as OTLP-style spans.
                self.exporter.span_source = self.traces.drain_export
            self.exporter.start()
        self._janitor: _StoreJanitor | None = None
        if store is not None and self.config.store_gc_interval_seconds is not None:
            self._janitor = _StoreJanitor(
                store,
                interval_seconds=self.config.store_gc_interval_seconds,
                max_bytes=self.config.store_max_bytes,
            )
            self._janitor.start()

    # -- request path ----------------------------------------------------------------
    def submit(self, request: ExpandRequest, lane: str = "interactive") -> ExpandResponse:
        """Serve one request synchronously; raises a ReproError on bad input.

        ``lane`` picks the admission-control priority: ``"interactive"``
        for online expands, ``"batch"`` for fan-out items riding behind
        them.  With no admission controller configured it is ignored.
        """
        started = time.perf_counter()
        # A trace is only built when someone will read it (the response's
        # debug block, the slow-query log, or the trace collector); the
        # untraced hot path pays one ContextVar read per span site, plus a
        # single rate check when a collector is installed.  The HTTP server
        # may already have activated a trace (remote traceparent or its own
        # sampling decision); reuse it instead of shadowing it.
        trace: Trace | None = current_trace()
        owns = False
        if trace is None:
            sampled = self.traces.sample() if self.traces is not None else False
            if (
                sampled
                or request.options.include_timings
                or self.config.slow_query_ms is not None
            ):
                trace = Trace(request_id=current_request_id())
                trace.sampled = sampled
                owns = True
        try:
            if owns:
                with activate(trace):
                    response = self._submit(request, started, trace, lane)
            else:
                response = self._submit(request, started, trace, lane)
        except BaseException as exc:
            self._count_request(error=True)
            latency_ms = (time.perf_counter() - started) * 1000.0
            self._log_if_slow(
                trace,
                request,
                latency_ms=latency_ms,
                cached=False,
                error=type(exc).__name__,
            )
            self._offer_trace(
                trace, request, latency_ms, error=type(exc).__name__
            )
            raise
        self._count_request()
        self._log_if_slow(
            trace,
            request,
            latency_ms=response.latency_ms,
            cached=response.cached,
            query_id=response.query_id,
        )
        self._offer_trace(trace, request, response.latency_ms)
        return response

    def _offer_trace(
        self,
        trace: Trace | None,
        request: ExpandRequest,
        latency_ms: float,
        error: str | None = None,
    ) -> None:
        """Hand a completed request trace to the collector (which applies
        its keep rules: head-sampled, slow, or errored)."""
        if trace is None or self.traces is None:
            return
        self.traces.offer(
            trace,
            duration_ms=latency_ms,
            method=request.method,
            tenant=current_tenant(),
            error=error,
            sampled=trace.sampled,
        )

    def _count_request(self, error: bool = False) -> None:
        """Count one request, labelled by tenant when the front door
        resolved one; anonymous traffic keeps the unlabeled fast path."""
        tenant = current_tenant()
        if tenant is None:
            self._requests_series.inc()
            if error:
                self._errors_series.inc()
            return
        series = self._requests_by_tenant.get(tenant)
        if series is None:
            # benign race: both losers bind the same series, one wins.
            series = self._requests_by_tenant.setdefault(
                tenant, self._requests.labels(tenant=tenant)
            )
        series.inc()
        if error:
            errors = self._errors_by_tenant.get(tenant)
            if errors is None:
                errors = self._errors_by_tenant.setdefault(
                    tenant, self._errors.labels(tenant=tenant)
                )
            errors.inc()

    def _submit(
        self,
        request: ExpandRequest,
        started: float,
        trace: Trace | None = None,
        lane: str = "interactive",
    ) -> ExpandResponse:
        if self._closed:
            raise ServiceUnavailableError("service is shut down")
        request.validate()
        method = request.method.strip().lower()
        self.registry.ensure_known(request.method)
        query = self._resolve_query(request)
        options = request.options
        top_k = options.resolved_top_k(self.config.default_top_k)

        key = request.cache_key(top_k)
        if options.use_cache:
            lookup_started = time.perf_counter()
            with span("cache_lookup"):
                cached = self.cache.get(key)
            if cached is not None:
                if self.usage is not None:
                    # cache hits bill at lookup cost, not at the compute
                    # cost the cache saved — that's the point of caching.
                    self.usage.charge_expand(
                        current_tenant(),
                        time.perf_counter() - lookup_started,
                        method=method,
                        cached=True,
                    )
                return self._respond(
                    method, cached, options, top_k, True, started, trace
                )

        retrieval = options.retrieval_profile()
        with span("batch", method=method):
            if self.admission is not None:
                # cache hits returned above never touch admission — only the
                # expensive batcher/registry section competes for slots.
                with self.admission.admit(lane):
                    result = self.batcher.submit(
                        method, query, top_k, retrieval=retrieval
                    ).result()
            else:
                result = self.batcher.submit(
                    method, query, top_k, retrieval=retrieval
                ).result()
        if options.use_cache:
            with span("cache_store"):
                self.cache.put(key, result)
        return self._respond(method, result, options, top_k, False, started, trace)

    def _respond(
        self,
        method: str,
        result: ExpansionResult,
        options: ExpandOptions,
        top_k: int,
        cached: bool,
        started: float,
        trace: Trace | None = None,
    ) -> ExpandResponse:
        latency_ms = (time.perf_counter() - started) * 1000.0
        tenant = current_tenant()
        key = method if tenant is None else (method, tenant)
        observer = self._latency_by_method.get(key)
        if observer is None:
            labels = {"method": method}
            if tenant is not None:
                labels["tenant"] = tenant
            # benign race: both losers bind the same series, one wins the slot.
            observer = self._latency_by_method.setdefault(
                key, self._latency.labels(**labels)
            )
        observer.observe(latency_ms)
        timings = None
        if trace is not None and options.include_timings:
            timings = tuple(trace.to_list())
        return ExpandResponse.from_result(
            method,
            result,
            self._entity_names if options.return_names else None,
            top_k=top_k,
            cached=cached,
            latency_ms=latency_ms,
            options=options,
            timings=timings,
        )

    def _log_if_slow(
        self,
        trace: Trace | None,
        request: ExpandRequest,
        latency_ms: float,
        cached: bool,
        query_id: str | None = None,
        error: str | None = None,
    ) -> None:
        threshold = self.config.slow_query_ms
        if threshold is None or latency_ms < threshold:
            return
        log_slow_query(
            request_id=(
                trace.request_id if trace is not None else current_request_id()
            ),
            method=request.method,
            query_id=query_id if query_id is not None else request.query_id,
            latency_ms=latency_ms,
            threshold_ms=threshold,
            cached=cached,
            spans=trace.to_list() if trace is not None else None,
            error=error,
            sink=self._slow_log,
            trace_id=trace.trace_id if trace is not None else None,
        )

    def _resolve_query(self, request: ExpandRequest) -> Query:
        if request.query_id is not None:
            query = self._queries_by_id.get(request.query_id)
            if query is None:
                raise DatasetError(f"unknown query id {request.query_id!r}")
            return query
        if request.class_id not in self.dataset.ultra_classes:
            raise DatasetError(f"unknown ultra-fine-grained class {request.class_id!r}")
        for entity_id in (*request.positive_seed_ids, *request.negative_seed_ids):
            self.dataset.entity(entity_id)  # raises DatasetError when unknown
        with self._lock:
            self._adhoc_serial += 1
            serial = self._adhoc_serial
        self._adhoc.inc()
        return Query(
            query_id=f"adhoc-{serial}",
            class_id=request.class_id,
            positive_seed_ids=request.positive_seed_ids,
            negative_seed_ids=request.negative_seed_ids,
        )

    def _execute_batch(
        self,
        method: str,
        top_k: int,
        queries: Sequence[Query],
        retrieval=None,
    ) -> Sequence[ExpansionResult]:
        """Batch executor handed to the micro-batcher."""
        expander = self.registry.get(method)
        return expander.expand_batch(list(queries), top_k=top_k, retrieval=retrieval)

    # -- warm-up / fit jobs ------------------------------------------------------------
    def warm_up(self, methods: Sequence[str] = ("retexpan",)) -> None:
        """Fit and pin the given methods up front (e.g. at server start)."""
        for method in methods:
            self.registry.pin(method)

    def start_fit(self, method: str, pin: bool = False) -> FitJob:
        """Enqueue an async fit (restore-or-train) and return immediately."""
        if self._closed:
            raise ServiceUnavailableError("service is shut down")
        return self.jobs.submit(method, pin=pin)

    def fit_job(self, job_id: str) -> FitJob:
        """The tracked job for ``job_id``; raises :class:`JobNotFoundError`."""
        return self.jobs.get(job_id)

    def cancel_fit(self, job_id: str) -> FitJob:
        """Cancel a *queued* fit job (``DELETE /v1/fits/<id>`` on the wire).

        Raises :class:`JobNotFoundError` for unknown ids and
        :class:`JobConflictError` (409) for jobs already running or finished.
        """
        return self.jobs.cancel(job_id)

    def fit_jobs(self) -> list[FitJob]:
        """All tracked fit jobs, most recent first."""
        return self.jobs.list()

    # -- introspection -----------------------------------------------------------------
    def methods(self) -> list[MethodInfo]:
        infos = []
        for name in self.registry.methods():
            fitted = self.registry.peek(name)
            description = self.registry.describe(name)
            infos.append(
                MethodInfo(
                    method=name,
                    fitted=fitted is not None,
                    expander_name=fitted.name if fitted is not None else None,
                    supports_persistence=description["supports_persistence"],
                    state_version=description["state_version"],
                    store_artifact=self.registry.artifact_available(name),
                )
            )
        return infos

    def stats(self) -> dict:
        latency = self._latency.merged()
        latency.update(self._latency.percentiles())
        service = {
            "requests": int(self._requests.total()),
            "errors": int(self._errors.total()),
            "adhoc_queries": int(self._adhoc.total()),
            "dataset_queries": len(self._queries_by_id),
            "entities": len(self._entity_names),
            # latency rides inside the pinned "service" sub-dict; the raw
            # bucket list lets the gateway merge per-worker distributions
            # into fleet-level percentiles.
            "latency_ms": latency,
        }
        merged = {
            "service": service,
            "cache": self.cache.stats(),
            "registry": self.registry.stats(),
            "batcher": self.batcher.stats(),
            "jobs": self.jobs.stats(),
        }
        # gate/admission keys appear only when configured, so the default
        # stats payload (pinned by wire-shape tests) is unchanged.
        if self.gate is not None:
            merged["gate"] = self.gate.stats()
        if self.admission is not None:
            merged["admission"] = self.admission.stats()
        if self.store is not None:
            merged["store"] = self.store.stats()
        if self._janitor is not None:
            merged["store_gc"] = self._janitor.stats()
        if self.exporter is not None:
            merged["exporter"] = self.exporter.stats()
        if self._slow_log is not None:
            merged["slow_query_log"] = self._slow_log.stats()
        if self.traces is not None:
            merged["traces"] = self.traces.stats()
        if self.usage is not None:
            merged["usage"] = self.usage.stats()
        return merged

    # -- lifecycle ---------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._janitor is not None:
            self._janitor.stop()
        self.jobs.shutdown()
        self.batcher.shutdown()
        if self.usage is not None:
            # force the final rollup so short-lived services still ledger.
            self.usage.close()
        if self.exporter is not None:
            # Last: the drain flush ships whatever the shutdown just counted.
            self.exporter.shutdown()

    def __enter__(self) -> "ExpansionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _StoreJanitor:
    """Periodic artifact-store GC inside a long-running serving process.

    Every ``interval_seconds`` it cleans abandoned staging directories and —
    when ``max_bytes`` is set — evicts least-recently-restored artifacts
    until the store fits the size budget (``ArtifactStore.gc_to_budget``).
    GC failures are counted, never raised: a broken filesystem must not take
    down the serving path.
    """

    def __init__(
        self,
        store: ArtifactStore,
        interval_seconds: float,
        max_bytes: int | None = None,
    ):
        self.store = store
        self.interval_seconds = interval_seconds
        self.max_bytes = max_bytes
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._ticks = 0
        self._removed = 0
        self._removed_bytes = 0
        self._errors = 0
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name="repro-store-gc", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    def run_once(self) -> None:
        """One GC pass (also called directly by tests)."""
        try:
            if self.max_bytes is not None:
                removed = self.store.gc_to_budget(self.max_bytes)
            else:
                removed = []
            self.store.gc()  # always clean abandoned staging directories
        except Exception:  # noqa: BLE001 - GC must never take down serving
            with self._lock:
                self._errors += 1
            return
        with self._lock:
            self._ticks += 1
            self._removed += len(removed)
            self._removed_bytes += sum(info.total_bytes for info in removed)

    def stats(self) -> dict:
        with self._lock:
            return {
                "interval_seconds": self.interval_seconds,
                "max_bytes": self.max_bytes,
                "ticks": self._ticks,
                "artifacts_removed": self._removed,
                "bytes_removed": self._removed_bytes,
                "errors": self._errors,
            }

    def _run(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            self.run_once()
