"""Request / response dataclasses of the expansion service.

The protocol is deliberately transport-agnostic: :class:`ExpandRequest` and
:class:`ExpandResponse` are plain dataclasses used directly by in-process
callers (:meth:`ExpansionService.submit`) and serialised to JSON by the HTTP
front-end through :func:`repro.utils.iox.to_jsonable`.

A request addresses a query in one of two ways:

* ``query_id`` — one of the dataset's pre-built benchmark queries; or
* inline seeds — ``class_id`` + ``positive_seed_ids`` (and optionally
  ``negative_seed_ids``) for ad-hoc expansion, mirroring how a production
  caller would phrase "more entities like these, unlike those".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.exceptions import ServiceError
from repro.types import ExpansionResult


@dataclass(frozen=True)
class ExpandRequest:
    """One expansion request submitted to the service."""

    method: str
    query_id: str | None = None
    class_id: str | None = None
    positive_seed_ids: tuple[int, ...] = ()
    negative_seed_ids: tuple[int, ...] = ()
    top_k: int | None = None
    #: set to ``False`` to bypass the result cache (always recompute).
    use_cache: bool = True

    def validate(self) -> None:
        if not self.method:
            raise ServiceError("request must name a method")
        if self.query_id is None:
            if self.class_id is None:
                raise ServiceError(
                    "request must provide either query_id or class_id with seeds"
                )
            if not self.positive_seed_ids:
                raise ServiceError("ad-hoc requests need at least one positive seed")
        elif self.class_id is not None or self.positive_seed_ids or self.negative_seed_ids:
            raise ServiceError("query_id and inline seeds are mutually exclusive")
        if self.top_k is not None and self.top_k <= 0:
            raise ServiceError("top_k must be positive")

    def cache_key(self, top_k: int) -> tuple:
        """The result-cache key; equivalent requests must collide, so the
        method is normalized the same way the registry normalizes it."""
        if self.query_id is not None:
            query_part: tuple = ("q", self.query_id)
        else:
            query_part = (
                "s",
                self.class_id,
                tuple(sorted(self.positive_seed_ids)),
                tuple(sorted(self.negative_seed_ids)),
            )
        return (self.method.strip().lower(), query_part, top_k)

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ExpandRequest":
        """Parse a JSON payload, rejecting unknown fields."""
        if not isinstance(payload, Mapping):
            raise ServiceError("request payload must be a JSON object")
        known = {
            "method",
            "query_id",
            "class_id",
            "positive_seed_ids",
            "negative_seed_ids",
            "top_k",
            "use_cache",
        }
        unknown = set(payload) - known
        if unknown:
            raise ServiceError(f"unknown request fields: {sorted(unknown)}")
        for field in ("positive_seed_ids", "negative_seed_ids"):
            if isinstance(payload.get(field), (str, bytes)):
                raise ServiceError(f"{field} must be an array of entity ids")
        try:
            return cls(
                method=str(payload.get("method", "")),
                query_id=(
                    None if payload.get("query_id") is None else str(payload["query_id"])
                ),
                class_id=(
                    None if payload.get("class_id") is None else str(payload["class_id"])
                ),
                positive_seed_ids=tuple(
                    int(i) for i in payload.get("positive_seed_ids", ())
                ),
                negative_seed_ids=tuple(
                    int(i) for i in payload.get("negative_seed_ids", ())
                ),
                top_k=(None if payload.get("top_k") is None else int(payload["top_k"])),
                use_cache=bool(payload.get("use_cache", True)),
            )
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"malformed request: {exc}") from exc


@dataclass(frozen=True)
class RankedEntityView:
    """One ranked entry of a response, resolved to its surface form."""

    entity_id: int
    name: str
    score: float


@dataclass(frozen=True)
class ExpandResponse:
    """The service's answer to one :class:`ExpandRequest`."""

    method: str
    query_id: str
    top_k: int
    ranking: tuple[RankedEntityView, ...]
    #: True when the ranking was served from the result cache.
    cached: bool
    latency_ms: float

    def entity_ids(self) -> list[int]:
        return [item.entity_id for item in self.ranking]

    @classmethod
    def from_result(
        cls,
        request_method: str,
        result: ExpansionResult,
        names: Mapping[int, str],
        top_k: int,
        cached: bool,
        latency_ms: float,
    ) -> "ExpandResponse":
        resolve = names.get
        ranking = tuple(
            RankedEntityView(
                entity_id=item.entity_id,
                name=resolve(item.entity_id) or "",
                score=item.score,
            )
            for item in result.ranking
        )
        return cls(
            method=request_method,
            query_id=result.query_id,
            top_k=top_k,
            ranking=ranking,
            cached=cached,
            latency_ms=latency_ms,
        )


@dataclass(frozen=True)
class MethodInfo:
    """One row of the ``/methods`` listing."""

    method: str
    fitted: bool
    expander_name: str | None = None
