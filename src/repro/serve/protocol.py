"""Request / response dataclasses of the expansion service.

The protocol is deliberately transport-agnostic: :class:`ExpandRequest` and
:class:`ExpandResponse` are plain dataclasses used directly by in-process
callers (:meth:`ExpansionService.submit`) and serialised to JSON by the v1
API (:mod:`repro.api`) and the legacy unversioned routes.

A request addresses a query in one of two ways:

* ``query_id`` — one of the dataset's pre-built benchmark queries; or
* inline seeds — ``class_id`` + ``positive_seed_ids`` (and optionally
  ``negative_seed_ids``) for ad-hoc expansion, mirroring how a production
  caller would phrase "more entities like these, unlike those".

*How* the request is served lives on one typed
:class:`~repro.api.options.ExpandOptions` object (``top_k``, ``use_cache``,
``offset``/``limit`` pagination, ``return_names``) instead of loose kwargs;
the v1 wire shape nests it under ``"options"`` while the legacy shape's
top-level ``top_k``/``use_cache`` keep parsing for existing callers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.api.options import ExpandOptions, coerce_int, coerce_optional_int
from repro.exceptions import ServiceError
from repro.types import ExpansionResult


def _parse_seed_ids(payload: Mapping, field_name: str) -> tuple[int, ...]:
    value = payload.get(field_name, ())
    if isinstance(value, (str, bytes)):
        raise ServiceError(f"{field_name} must be an array of entity ids")
    try:
        items = list(value)
    except TypeError as exc:
        raise ServiceError(f"{field_name} must be an array of entity ids") from exc
    return tuple(coerce_int(item, f"{field_name}[{i}]") for i, item in enumerate(items))


@dataclass(frozen=True)
class ExpandRequest:
    """One expansion request submitted to the service."""

    method: str
    query_id: str | None = None
    class_id: str | None = None
    positive_seed_ids: tuple[int, ...] = ()
    negative_seed_ids: tuple[int, ...] = ()
    #: how to serve the request (ranked-list size, caching, pagination, names).
    options: ExpandOptions = field(default_factory=ExpandOptions)

    # -- option conveniences ----------------------------------------------------
    @property
    def top_k(self) -> int | None:
        return self.options.top_k

    @property
    def use_cache(self) -> bool:
        return self.options.use_cache

    def validate(self) -> None:
        if not self.method:
            raise ServiceError("request must name a method")
        if self.query_id is None:
            if self.class_id is None:
                raise ServiceError(
                    "request must provide either query_id or class_id with seeds"
                )
            if not self.positive_seed_ids:
                raise ServiceError("ad-hoc requests need at least one positive seed")
        elif self.class_id is not None or self.positive_seed_ids or self.negative_seed_ids:
            raise ServiceError("query_id and inline seeds are mutually exclusive")
        self.options.validate()

    def cache_key(self, top_k: int) -> tuple:
        """The result-cache key; equivalent requests must collide, so the
        method is normalized the same way the registry normalizes it.
        Pagination and name resolution are views over the cached ranking and
        deliberately do not participate; the retrieval knobs (``ann`` /
        ``nprobe``) do, because they can change the ranking itself."""
        if self.query_id is not None:
            query_part: tuple = ("q", self.query_id)
        else:
            query_part = (
                "s",
                self.class_id,
                tuple(sorted(self.positive_seed_ids)),
                tuple(sorted(self.negative_seed_ids)),
            )
        return (
            self.method.strip().lower(),
            query_part,
            top_k,
            self.options.ann,
            self.options.nprobe,
        )

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ExpandRequest":
        """Parse a JSON payload, rejecting unknown fields.

        Accepts both wire shapes: the v1 nested ``"options"`` object and the
        legacy top-level ``top_k``/``use_cache`` (so the deprecated
        unversioned routes delegate here unchanged).  Mixing the two spellings
        of the same option is rejected rather than silently resolved.
        """
        if not isinstance(payload, Mapping):
            raise ServiceError("request payload must be a JSON object")
        known = {
            "method",
            "query_id",
            "class_id",
            "positive_seed_ids",
            "negative_seed_ids",
            "top_k",
            "use_cache",
            "options",
        }
        unknown = set(payload) - known
        if unknown:
            raise ServiceError(f"unknown request fields: {sorted(unknown)}")
        options_payload = payload.get("options")
        if options_payload is not None:
            for legacy_key in ("top_k", "use_cache"):
                if legacy_key in payload:
                    raise ServiceError(
                        f"{legacy_key} cannot appear both top-level and under options"
                    )
            options = ExpandOptions.from_dict(options_payload)
        else:
            options = ExpandOptions(
                top_k=coerce_optional_int(payload.get("top_k"), "top_k", minimum=1),
                # legacy parsing accepted any truthy value here; keep that
                # exact behaviour for the deprecated wire shape (strict
                # boolean typing applies to the v1 "options" object only).
                use_cache=bool(payload.get("use_cache", True)),
            )
        try:
            return cls(
                method=str(payload.get("method", "")),
                query_id=(
                    None if payload.get("query_id") is None else str(payload["query_id"])
                ),
                class_id=(
                    None if payload.get("class_id") is None else str(payload["class_id"])
                ),
                positive_seed_ids=_parse_seed_ids(payload, "positive_seed_ids"),
                negative_seed_ids=_parse_seed_ids(payload, "negative_seed_ids"),
                options=options,
            )
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"malformed request: {exc}") from exc

    def to_v1_dict(self) -> dict:
        """The v1 wire form of this request (the client SDK's send path)."""
        payload: dict = {"method": self.method, "options": self.options.to_dict()}
        if self.query_id is not None:
            payload["query_id"] = self.query_id
        if self.class_id is not None:
            payload["class_id"] = self.class_id
        if self.positive_seed_ids:
            payload["positive_seed_ids"] = list(self.positive_seed_ids)
        if self.negative_seed_ids:
            payload["negative_seed_ids"] = list(self.negative_seed_ids)
        return payload


@dataclass(frozen=True)
class RankedEntityView:
    """One ranked entry of a response, resolved to its surface form.

    ``name`` is ``None`` when the request opted out of name resolution
    (``ExpandOptions.return_names=False``); the v1 serializer then omits the
    key entirely.
    """

    entity_id: int
    name: str | None
    score: float


@dataclass(frozen=True)
class ExpandResponse:
    """The service's answer to one :class:`ExpandRequest`."""

    method: str
    query_id: str
    top_k: int
    #: the requested page of the ranking (see ``offset``/``total``).
    ranking: tuple[RankedEntityView, ...]
    #: True when the ranking was served from the result cache.
    cached: bool
    latency_ms: float
    #: pagination: index of ``ranking[0]`` within the full ranked list ...
    offset: int = 0
    #: ... whose overall length (before slicing) is ``total``.
    total: int = 0
    #: whether entity names were resolved for this response.
    names_resolved: bool = True
    #: per-stage trace timings (span dicts), only when the request asked for
    #: them via ``ExpandOptions.include_timings``; serialised under
    #: ``debug.timings`` on the v1 wire and never on the legacy shape.
    timings: tuple | None = None

    def entity_ids(self) -> list[int]:
        return [item.entity_id for item in self.ranking]

    @classmethod
    def from_result(
        cls,
        request_method: str,
        result: ExpansionResult,
        names: Mapping[int, str] | None,
        top_k: int,
        cached: bool,
        latency_ms: float,
        options: ExpandOptions | None = None,
        timings: tuple | None = None,
    ) -> "ExpandResponse":
        """Build a response view over an :class:`ExpansionResult`.

        ``names=None`` skips surface-form resolution; ``options`` applies
        ``offset``/``limit`` pagination to the (already top-k-bounded) list.
        """
        options = options or ExpandOptions()
        total = len(result.ranking)
        stop = None if options.limit is None else options.offset + options.limit
        page = result.ranking[options.offset:stop]
        resolve = names.get if names is not None else None
        ranking = tuple(
            RankedEntityView(
                entity_id=item.entity_id,
                name=(resolve(item.entity_id) or "") if resolve is not None else None,
                score=item.score,
            )
            for item in page
        )
        return cls(
            method=request_method,
            query_id=result.query_id,
            top_k=top_k,
            ranking=ranking,
            cached=cached,
            latency_ms=latency_ms,
            offset=options.offset,
            total=total,
            names_resolved=names is not None,
            timings=timings,
        )

    # -- wire shapes ---------------------------------------------------------------
    def to_v1_dict(self) -> dict:
        """The ``data`` payload served under ``/v1/expand``."""
        items = []
        for item in self.ranking:
            row = {"entity_id": item.entity_id, "score": item.score}
            if self.names_resolved:
                row["name"] = item.name
            items.append(row)
        payload = {
            "method": self.method,
            "query_id": self.query_id,
            "top_k": self.top_k,
            "offset": self.offset,
            "total": self.total,
            "count": len(items),
            "ranking": items,
            "names_resolved": self.names_resolved,
            "cached": self.cached,
            "latency_ms": self.latency_ms,
        }
        if self.timings is not None:
            payload["debug"] = {"timings": [dict(entry) for entry in self.timings]}
        return payload

    def to_legacy_dict(self) -> dict:
        """The exact pre-v1 ``POST /expand`` wire shape (pinned by tests)."""
        return {
            "method": self.method,
            "query_id": self.query_id,
            "top_k": self.top_k,
            "ranking": [
                {
                    "entity_id": item.entity_id,
                    "name": item.name if item.name is not None else "",
                    "score": item.score,
                }
                for item in self.ranking
            ],
            "cached": self.cached,
            "latency_ms": self.latency_ms,
        }

    @classmethod
    def from_v1_dict(cls, data: Mapping) -> "ExpandResponse":
        """Rebuild a response from its v1 wire form (client SDK side)."""
        names_resolved = bool(
            data.get(
                "names_resolved",
                # fallback for older servers: sniff the ranking items
                any("name" in item for item in data.get("ranking", ())),
            )
        )
        ranking = tuple(
            RankedEntityView(
                entity_id=int(item["entity_id"]),
                name=item.get("name"),
                score=float(item["score"]),
            )
            for item in data.get("ranking", ())
        )
        debug = data.get("debug")
        timings = None
        if isinstance(debug, Mapping) and isinstance(debug.get("timings"), list):
            timings = tuple(dict(entry) for entry in debug["timings"])
        return cls(
            method=str(data.get("method", "")),
            query_id=str(data.get("query_id", "")),
            top_k=int(data.get("top_k", 0)),
            ranking=ranking,
            cached=bool(data.get("cached", False)),
            latency_ms=float(data.get("latency_ms", 0.0)),
            offset=int(data.get("offset", 0)),
            total=int(data.get("total", len(ranking))),
            names_resolved=names_resolved,
            timings=timings,
        )


@dataclass(frozen=True)
class MethodInfo:
    """One row of the ``/v1/methods`` listing.

    Beyond the fit state, the row reports what a fit *job* for the method
    would do: whether the method's state can be persisted at all
    (``supports_persistence`` / ``state_version``) and whether the attached
    store already holds an artifact for the current dataset fingerprint
    (``store_artifact``; ``None`` when no store is attached) — i.e. whether
    ``POST /v1/fits`` would restore or train.
    """

    method: str
    fitted: bool
    expander_name: str | None = None
    supports_persistence: bool = False
    state_version: int = 1
    store_artifact: bool | None = None
