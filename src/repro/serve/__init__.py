"""Online serving layer for entity-set expansion.

Turns the offline ``Expander`` stack into a long-lived query-at-a-time
service: :class:`ExpanderRegistry` amortises one-time fits,
:class:`ResultCache` absorbs repeated queries, :class:`MicroBatcher`
coalesces concurrent requests, and :class:`ExpansionService` ties them
together behind ``submit``; :class:`ExpansionHTTPServer` exposes the whole
thing over JSON/HTTP.

Quickstart::

    from repro import DatasetConfig, build_dataset
    from repro.serve import ExpansionService, ExpandRequest, ExpansionHTTPServer

    dataset = build_dataset(DatasetConfig.tiny())
    service = ExpansionService(dataset)
    response = service.submit(
        ExpandRequest(method="retexpan", query_id=dataset.queries[0].query_id)
    )
    with ExpansionHTTPServer(service, port=0).start() as server:
        print("serving on", server.url)
"""

from repro.api.jobs import FitJob, JobManager
from repro.api.options import ExpandOptions
from repro.config import ServiceConfig
from repro.serve.batcher import MicroBatcher
from repro.serve.cache import ResultCache
from repro.serve.protocol import (
    ExpandRequest,
    ExpandResponse,
    MethodInfo,
    RankedEntityView,
)
from repro.serve.registry import DEFAULT_FACTORIES, ExpanderRegistry
from repro.serve.server import ExpansionHTTPServer
from repro.serve.service import ExpansionService

__all__ = [
    "ServiceConfig",
    "MicroBatcher",
    "ResultCache",
    "ExpandOptions",
    "ExpandRequest",
    "ExpandResponse",
    "MethodInfo",
    "RankedEntityView",
    "ExpanderRegistry",
    "DEFAULT_FACTORIES",
    "ExpansionHTTPServer",
    "ExpansionService",
    "FitJob",
    "JobManager",
]
