"""A thread-safe LRU + TTL cache for expansion results.

Repeated queries dominate realistic expansion traffic (the same seed sets
get re-issued by dashboards, retries, and pagination), so the service caches
``(method, query, top_k) -> ExpansionResult`` with two independent bounds:

* **capacity** — least-recently-used entries are evicted once the cache is
  full, and
* **TTL** — entries older than ``ttl_seconds`` are treated as misses and
  dropped, so long-lived services pick up refitted models eventually.

All operations are O(1) under a single lock; hit/miss/eviction/expiry
counters are exposed through :meth:`stats` and surfaced by the ``/stats``
endpoint.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Hashable


class ResultCache:
    """Bounded LRU cache with optional per-entry time-to-live."""

    def __init__(
        self,
        capacity: int = 1024,
        ttl_seconds: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        """``clock`` is injectable so tests can drive expiry deterministically."""
        self.capacity = capacity
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._lock = threading.Lock()
        #: key -> (value, insertion timestamp); order is recency (newest last).
        self._entries: OrderedDict[Hashable, tuple[Any, float]] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0

    def get(self, key: Hashable) -> Any | None:
        """The cached value, or ``None`` on a miss or an expired entry."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            value, stored_at = entry
            if self._expired(stored_at):
                del self._entries[key]
                self._expirations += 1
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh ``key``; evicts the LRU entry when full."""
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (value, self._clock())
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def _expired(self, stored_at: float) -> bool:
        return self.ttl_seconds is not None and (
            self._clock() - stored_at > self.ttl_seconds
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        """Counters and shape of the cache as a plain dict."""
        with self._lock:
            total = self._hits + self._misses
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "ttl_seconds": self.ttl_seconds,
                "hits": self._hits,
                "misses": self._misses,
                "hit_rate": (self._hits / total) if total else 0.0,
                "evictions": self._evictions,
                "expirations": self._expirations,
            }
