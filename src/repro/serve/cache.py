"""A thread-safe LRU + TTL cache for expansion results.

Repeated queries dominate realistic expansion traffic (the same seed sets
get re-issued by dashboards, retries, and pagination), so the service caches
``(method, query, top_k) -> ExpansionResult`` with two independent bounds:

* **capacity** — least-recently-used entries are evicted once the cache is
  full, and
* **TTL** — entries older than ``ttl_seconds`` are treated as misses and
  dropped, so long-lived services pick up refitted models eventually.

All operations are O(1) under a single lock; hit/miss/eviction/expiry
counters live on a :class:`~repro.obs.MetricsRegistry` (a private one by
default, the owning service's when injected) and :meth:`stats` stays a
wire-compatible view over them for the ``/stats`` endpoint.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Hashable

from repro.obs import MetricsRegistry


class ResultCache:
    """Bounded LRU cache with optional per-entry time-to-live."""

    def __init__(
        self,
        capacity: int = 1024,
        ttl_seconds: float | None = None,
        clock: Callable[[], float] = time.monotonic,
        metrics: MetricsRegistry | None = None,
        metric_prefix: str = "repro_cache",
    ):
        """``clock`` is injectable so tests can drive expiry deterministically.

        ``metric_prefix`` names the metric family; a second cache tier on the
        same registry (e.g. the cluster gateway's ``repro_gateway_cache``)
        must not collide with the worker-side ``repro_cache`` series.
        """
        self.capacity = capacity
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._lock = threading.Lock()
        #: key -> (value, insertion timestamp); order is recency (newest last).
        self._entries: OrderedDict[Hashable, tuple[Any, float]] = OrderedDict()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._hits = self.metrics.counter(
            f"{metric_prefix}_hits_total", "Result-cache lookups served from cache."
        )
        self._misses = self.metrics.counter(
            f"{metric_prefix}_misses_total", "Result-cache lookups that missed."
        )
        self._evictions = self.metrics.counter(
            f"{metric_prefix}_evictions_total",
            "Entries evicted by the LRU capacity bound.",
        )
        self._expirations = self.metrics.counter(
            f"{metric_prefix}_expirations_total", "Entries dropped past their TTL."
        )
        self._size = self.metrics.gauge(
            f"{metric_prefix}_size", "Entries currently resident in the result cache."
        )
        # hot-path handles: every lookup touches one of these.
        self._hits_series = self._hits.labels()
        self._misses_series = self._misses.labels()
        self._evictions_series = self._evictions.labels()
        self._expirations_series = self._expirations.labels()
        self._size_series = self._size.labels()

    def get(self, key: Hashable) -> Any | None:
        """The cached value, or ``None`` on a miss or an expired entry."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses_series.inc()
                return None
            value, stored_at = entry
            if self._expired(stored_at):
                del self._entries[key]
                self._size_series.set(len(self._entries))
                self._expirations_series.inc()
                self._misses_series.inc()
                return None
            self._entries.move_to_end(key)
            self._hits_series.inc()
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh ``key``; evicts the LRU entry when full."""
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (value, self._clock())
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions_series.inc()
            self._size_series.set(len(self._entries))

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._size.set(0)

    def _expired(self, stored_at: float) -> bool:
        return self.ttl_seconds is not None and (
            self._clock() - stored_at > self.ttl_seconds
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        """The legacy counter dict, now a view over the metrics registry."""
        with self._lock:
            size = len(self._entries)
        hits = int(self._hits.total())
        misses = int(self._misses.total())
        total = hits + misses
        return {
            "size": size,
            "capacity": self.capacity,
            "ttl_seconds": self.ttl_seconds,
            "hits": hits,
            "misses": misses,
            "hit_rate": (hits / total) if total else 0.0,
            "evictions": int(self._evictions.total()),
            "expirations": int(self._expirations.total()),
        }
