"""Micro-batching of concurrent expansion requests.

Several expanders score whole candidate matrices at once, so executing K
concurrent requests as one ``expand_batch`` call is cheaper than K
independent ``expand`` calls — and even for loop-based methods, batching
bounds the number of in-flight model invocations.  The batcher implements
the classic serving pattern:

* the **first** request for a ``(method, top_k)`` bucket becomes the batch
  leader and opens a short collection window (``max_wait_ms``);
* followers arriving inside the window join the bucket;
* the batch executes on a worker thread when the window closes, or
  immediately once ``max_batch_size`` requests have joined;
* every caller blocks on its own :class:`~concurrent.futures.Future`, so the
  coalescing is invisible to the request path.

With ``max_wait_ms=0`` the batcher degrades to synchronous per-request
execution in the caller's thread (no window, no workers), which is the
right mode for single-user CLI queries.

Tracing: contextvars do not follow a request onto the batch worker thread,
so ``submit`` captures each caller's active :class:`~repro.obs.Trace` into
the bucket, and ``_run`` stamps per-caller queue-wait spans and grafts the
shared execution trace back onto every caller — strictly **before**
resolving the futures, because callers read their trace as soon as
``future.result()`` returns.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Sequence

from repro.obs import (
    MetricsRegistry,
    Trace,
    UsageMeter,
    activate,
    current_tenant,
    current_trace,
    span,
)
from repro.retrieval import RetrievalProfile
from repro.types import ExpansionResult, Query

#: executes one coalesced batch:
#: (method, top_k, queries, retrieval) -> results.
BatchExecutor = Callable[
    [str, int, Sequence[Query], RetrievalProfile | None], Sequence[ExpansionResult]
]


class _Bucket:
    """Requests collected for one (method, top_k, retrieval) batch in flight."""

    __slots__ = ("generation", "queries", "futures", "traces")

    def __init__(self, generation: int):
        self.generation = generation
        self.queries: list[Query] = []
        self.futures: list[Future] = []
        #: per caller: (its active Trace or None, perf_counter at join time,
        #: the caller's open span id — the "batch" span the graft parents
        #: under — and the caller's tenant for usage attribution).  Span id
        #: and tenant are captured at submit time because neither contextvars
        #: nor the single-threaded ``_stack`` cross to the pool thread.
        self.traces: list[tuple[Trace | None, float, str | None, str | None]] = []


class MicroBatcher:
    """Coalesces concurrent ``expand`` requests into per-method batches."""

    def __init__(
        self,
        execute: BatchExecutor,
        max_batch_size: int = 16,
        max_wait_ms: float = 2.0,
        num_workers: int = 2,
        metrics: MetricsRegistry | None = None,
        usage: UsageMeter | None = None,
    ):
        self._execute = execute
        #: when metering is on, each batch's execute wall-time is split
        #: evenly across its riders and billed to their captured tenants.
        self.usage = usage
        self.max_batch_size = max(1, max_batch_size)
        self.max_wait_s = max(0.0, max_wait_ms) / 1000.0
        self._lock = threading.Lock()
        self._buckets: dict[tuple, _Bucket] = {}
        self._generation = 0
        self._closed = False
        self._pool: ThreadPoolExecutor | None = (
            ThreadPoolExecutor(
                max_workers=max(1, num_workers), thread_name_prefix="repro-batch"
            )
            if self.max_wait_s > 0
            else None
        )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._requests = self.metrics.counter(
            "repro_batch_requests_total", "Requests submitted to the micro-batcher."
        )
        self._batches = self.metrics.counter(
            "repro_batch_batches_total", "Coalesced batches executed."
        )
        self._batched_requests = self.metrics.counter(
            "repro_batch_batched_requests_total",
            "Requests executed as part of a batch (sum of batch sizes).",
        )
        self._max_batch = self.metrics.gauge(
            "repro_batch_max_size_observed", "Largest batch executed so far."
        )
        self._queue_wait = self.metrics.histogram(
            "repro_batch_queue_wait_ms",
            "Time a request spent waiting in its batch collection window.",
        )
        self._execute_ms = self.metrics.histogram(
            "repro_batch_execute_ms", "Wall time of one coalesced batch execution."
        )

    # -- submission -----------------------------------------------------------------
    def submit(
        self,
        method: str,
        query: Query,
        top_k: int,
        retrieval: RetrievalProfile | None = None,
    ) -> Future:
        """Enqueue one request; the future resolves to its ExpansionResult.

        ``retrieval`` (the request's ANN knobs) is part of the bucket key:
        requests asking for different retrieval strategies must never
        coalesce into one batch, because the profile applies batch-wide.
        """
        future: Future = Future()
        if self._pool is None:
            # Synchronous mode: execute in the caller's thread, batch of one.
            # The caller's trace is still the active contextvar here, so the
            # execute span nests under the caller's own spans naturally.
            with self._lock:
                if self._closed:
                    raise RuntimeError("batcher is shut down")
            self._record(1, sync=True)
            self._run([query], [future], method, top_k, retrieval=retrieval)
            return future
        key = (method, top_k, retrieval)
        flush_now: _Bucket | None = None
        with self._lock:
            if self._closed:
                raise RuntimeError("batcher is shut down")
            self._requests.inc()
            bucket = self._buckets.get(key)
            if bucket is None:
                self._generation += 1
                bucket = _Bucket(self._generation)
                self._buckets[key] = bucket
                timer = threading.Timer(
                    self.max_wait_s, self._flush, args=(key, bucket.generation)
                )
                timer.daemon = True
                timer.start()
            bucket.queries.append(query)
            bucket.futures.append(future)
            caller_trace = current_trace()
            bucket.traces.append(
                (
                    caller_trace,
                    time.perf_counter(),
                    caller_trace.open_span_id() if caller_trace is not None else None,
                    current_tenant(),
                )
            )
            if len(bucket.queries) >= self.max_batch_size:
                flush_now = self._buckets.pop(key)
        if flush_now is not None:
            self._submit_batch(flush_now, method, top_k, retrieval)
        return future

    def _flush(self, key: tuple, generation: int) -> None:
        """Timer callback: close the collection window for one bucket."""
        with self._lock:
            bucket = self._buckets.get(key)
            if bucket is None or bucket.generation != generation or self._closed:
                return
            del self._buckets[key]
        self._submit_batch(bucket, key[0], key[1], key[2])

    def _submit_batch(
        self,
        bucket: _Bucket,
        method: str,
        top_k: int,
        retrieval: RetrievalProfile | None,
    ) -> None:
        try:
            self._pool.submit(
                self._run,
                bucket.queries,
                bucket.futures,
                method,
                top_k,
                bucket.traces,
                retrieval,
            )
        except RuntimeError:
            # The pool shut down between the closed-check and the submit;
            # execute inline so no caller is left waiting on its future.
            self._run(
                bucket.queries,
                bucket.futures,
                method,
                top_k,
                bucket.traces,
                retrieval,
            )

    # -- execution ------------------------------------------------------------------
    def _run(
        self,
        queries: list[Query],
        futures: list[Future],
        method: str,
        top_k: int,
        traces: list[tuple[Trace | None, float, str | None, str | None]] | None = None,
        retrieval: RetrievalProfile | None = None,
    ) -> None:
        if self._pool is not None:
            self._record(len(queries))
        run_started = time.perf_counter()
        # A batch executes on a pool thread with no contextvars from any
        # caller; collect its stage spans on a shared trace (only when some
        # caller is actually tracing) and graft them back afterwards.
        batch_trace: Trace | None = None
        if traces and any(t is not None for t, _joined, _sid, _ten in traces):
            batch_trace = Trace()
        error: BaseException | None = None
        results: list[ExpansionResult] = []
        if batch_trace is not None:
            with activate(batch_trace):
                error, results = self._guarded_execute(
                    method, top_k, queries, retrieval
                )
        else:
            error, results = self._guarded_execute(method, top_k, queries, retrieval)
        execute_seconds = time.perf_counter() - run_started
        self._execute_ms.observe(execute_seconds * 1000.0, method=method)
        if self.usage is not None:
            if traces:
                # batch-amortized share: riders in one forward pass split
                # its wall-time evenly (billed even on error — the compute
                # was spent).
                share = execute_seconds / len(queries)
                for _trace, _joined_at, _span_id, tenant in traces:
                    self.usage.charge_expand(tenant, share, method=method)
            else:
                # sync mode runs in the caller's thread: its tenant
                # contextvar is still live here.
                self.usage.charge_expand(
                    current_tenant(), execute_seconds, method=method
                )
        # All trace mutation happens BEFORE any future resolves: callers read
        # their trace the moment future.result() returns.
        if traces:
            for caller_trace, joined_at, batch_span_id, _tenant in traces:
                wait_ms = (run_started - joined_at) * 1000.0
                self._queue_wait.observe(wait_ms, method=method)
                if caller_trace is None:
                    continue
                caller_trace.add_span(
                    "queue_wait",
                    (joined_at - caller_trace.t0) * 1000.0,
                    wait_ms,
                    parent="batch",
                    parent_id=batch_span_id,
                )
                if batch_trace is not None:
                    caller_trace.graft(
                        batch_trace, parent="batch", parent_id=batch_span_id
                    )
        if error is not None:
            for future in futures:
                future.set_exception(error)
            return
        for future, result in zip(futures, results):
            future.set_result(result)

    def _guarded_execute(
        self,
        method: str,
        top_k: int,
        queries: list[Query],
        retrieval: RetrievalProfile | None = None,
    ) -> tuple[BaseException | None, list[ExpansionResult]]:
        with span("execute", batch_size=len(queries), method=method):
            try:
                results = list(self._execute(method, top_k, queries, retrieval))
                if len(results) != len(queries):
                    raise RuntimeError(
                        f"batch executor returned {len(results)} results "
                        f"for {len(queries)} queries"
                    )
                return None, results
            except BaseException as exc:  # propagated to every waiting caller
                return exc, []

    def _record(self, batch_size: int, sync: bool = False) -> None:
        if sync:
            self._requests.inc()
        self._batches.inc()
        self._batched_requests.inc(batch_size)
        self._max_batch.set_max(batch_size)

    # -- lifecycle ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Flush every pending bucket and stop the workers."""
        with self._lock:
            self._closed = True
            pending = list(self._buckets.items())
            self._buckets.clear()
        for (method, top_k, retrieval), bucket in pending:
            self._run(
                bucket.queries, bucket.futures, method, top_k, bucket.traces, retrieval
            )
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    def stats(self) -> dict:
        """The legacy counter dict, now a view over the metrics registry."""
        batches = int(self._batches.total())
        batched = int(self._batched_requests.total())
        return {
            "requests": int(self._requests.total()),
            "batches": batches,
            "max_batch_size_observed": int(self._max_batch.total()),
            "avg_batch_size": (batched / batches) if batches else 0.0,
            "max_batch_size": self.max_batch_size,
            "max_wait_ms": self.max_wait_s * 1000.0,
            "mode": "sync" if self._pool is None else "batched",
        }
