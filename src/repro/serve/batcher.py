"""Micro-batching of concurrent expansion requests.

Several expanders score whole candidate matrices at once, so executing K
concurrent requests as one ``expand_batch`` call is cheaper than K
independent ``expand`` calls — and even for loop-based methods, batching
bounds the number of in-flight model invocations.  The batcher implements
the classic serving pattern:

* the **first** request for a ``(method, top_k)`` bucket becomes the batch
  leader and opens a short collection window (``max_wait_ms``);
* followers arriving inside the window join the bucket;
* the batch executes on a worker thread when the window closes, or
  immediately once ``max_batch_size`` requests have joined;
* every caller blocks on its own :class:`~concurrent.futures.Future`, so the
  coalescing is invisible to the request path.

With ``max_wait_ms=0`` the batcher degrades to synchronous per-request
execution in the caller's thread (no window, no workers), which is the
right mode for single-user CLI queries.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Sequence

from repro.types import ExpansionResult, Query

#: executes one coalesced batch: (method, top_k, queries) -> results.
BatchExecutor = Callable[[str, int, Sequence[Query]], Sequence[ExpansionResult]]


class _Bucket:
    """Requests collected for one (method, top_k) batch in flight."""

    __slots__ = ("generation", "queries", "futures")

    def __init__(self, generation: int):
        self.generation = generation
        self.queries: list[Query] = []
        self.futures: list[Future] = []


class MicroBatcher:
    """Coalesces concurrent ``expand`` requests into per-method batches."""

    def __init__(
        self,
        execute: BatchExecutor,
        max_batch_size: int = 16,
        max_wait_ms: float = 2.0,
        num_workers: int = 2,
    ):
        self._execute = execute
        self.max_batch_size = max(1, max_batch_size)
        self.max_wait_s = max(0.0, max_wait_ms) / 1000.0
        self._lock = threading.Lock()
        self._buckets: dict[tuple[str, int], _Bucket] = {}
        self._generation = 0
        self._closed = False
        self._pool: ThreadPoolExecutor | None = (
            ThreadPoolExecutor(
                max_workers=max(1, num_workers), thread_name_prefix="repro-batch"
            )
            if self.max_wait_s > 0
            else None
        )
        self._requests = 0
        self._batches = 0
        self._batched_requests = 0
        self._max_batch = 0

    # -- submission -----------------------------------------------------------------
    def submit(self, method: str, query: Query, top_k: int) -> Future:
        """Enqueue one request; the future resolves to its ExpansionResult."""
        future: Future = Future()
        if self._pool is None:
            # Synchronous mode: execute in the caller's thread, batch of one.
            with self._lock:
                if self._closed:
                    raise RuntimeError("batcher is shut down")
            self._record(1)
            self._run([query], [future], method, top_k)
            return future
        key = (method, top_k)
        flush_now: _Bucket | None = None
        with self._lock:
            if self._closed:
                raise RuntimeError("batcher is shut down")
            self._requests += 1
            bucket = self._buckets.get(key)
            if bucket is None:
                self._generation += 1
                bucket = _Bucket(self._generation)
                self._buckets[key] = bucket
                timer = threading.Timer(
                    self.max_wait_s, self._flush, args=(key, bucket.generation)
                )
                timer.daemon = True
                timer.start()
            bucket.queries.append(query)
            bucket.futures.append(future)
            if len(bucket.queries) >= self.max_batch_size:
                flush_now = self._buckets.pop(key)
        if flush_now is not None:
            self._submit_batch(flush_now, method, top_k)
        return future

    def _flush(self, key: tuple[str, int], generation: int) -> None:
        """Timer callback: close the collection window for one bucket."""
        with self._lock:
            bucket = self._buckets.get(key)
            if bucket is None or bucket.generation != generation or self._closed:
                return
            del self._buckets[key]
        self._submit_batch(bucket, key[0], key[1])

    def _submit_batch(self, bucket: _Bucket, method: str, top_k: int) -> None:
        try:
            self._pool.submit(self._run, bucket.queries, bucket.futures, method, top_k)
        except RuntimeError:
            # The pool shut down between the closed-check and the submit;
            # execute inline so no caller is left waiting on its future.
            self._run(bucket.queries, bucket.futures, method, top_k)

    # -- execution ------------------------------------------------------------------
    def _run(
        self,
        queries: list[Query],
        futures: list[Future],
        method: str,
        top_k: int,
    ) -> None:
        if self._pool is not None:
            self._record(len(queries))
        try:
            results = list(self._execute(method, top_k, queries))
            if len(results) != len(queries):
                raise RuntimeError(
                    f"batch executor returned {len(results)} results "
                    f"for {len(queries)} queries"
                )
        except BaseException as exc:  # propagate to every waiting caller
            for future in futures:
                future.set_exception(exc)
            return
        for future, result in zip(futures, results):
            future.set_result(result)

    def _record(self, batch_size: int) -> None:
        with self._lock:
            if self._pool is None:
                self._requests += 1
            self._batches += 1
            self._batched_requests += batch_size
            self._max_batch = max(self._max_batch, batch_size)

    # -- lifecycle ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Flush every pending bucket and stop the workers."""
        with self._lock:
            self._closed = True
            pending = list(self._buckets.items())
            self._buckets.clear()
        for (method, top_k), bucket in pending:
            self._run(bucket.queries, bucket.futures, method, top_k)
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    def stats(self) -> dict:
        with self._lock:
            return {
                "requests": self._requests,
                "batches": self._batches,
                "max_batch_size_observed": self._max_batch,
                "avg_batch_size": (
                    self._batched_requests / self._batches if self._batches else 0.0
                ),
                "max_batch_size": self.max_batch_size,
                "max_wait_ms": self.max_wait_s * 1000.0,
                "mode": "sync" if self._pool is None else "batched",
            }
