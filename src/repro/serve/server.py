"""A dependency-free JSON/HTTP front-end for the expansion service.

Built on the stdlib :mod:`http.server` (``ThreadingHTTPServer``) so the repo
stays installable without a web framework.  All routes are served by the
shared v1 dispatcher (:class:`repro.api.v1.ApiV1`):

* ``/v1/healthz`` ``/v1/methods`` ``/v1/stats`` ``/v1/expand``
  ``/v1/expand/batch`` ``/v1/fits[...]`` (``POST``/``GET``/``DELETE``) —
  versioned envelope responses
  (``api_version`` + server-assigned ``request_id``, also echoed in the
  ``X-Request-Id`` header) with the structured error taxonomy;
* ``/healthz`` ``/methods`` ``/stats`` ``/expand`` — **deprecated** aliases
  that delegate to the same v1 handlers but keep the exact pre-v1 wire
  shapes (no envelope, ``{"error", "message"}`` failures) and answer with a
  ``Deprecation: true`` header.

With ``ServiceConfig.access_log`` enabled, every request emits one
structured JSON line (request_id, verb, route, status, latency_ms, cache
hit) on the ``repro.serve.access`` logger instead of
``BaseHTTPRequestHandler``'s default stderr chatter.
"""

from __future__ import annotations

import json
import logging
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import repro.api.v1 as apiv1
from repro.api.envelope import (
    REQUEST_ID_HEADER,
    is_valid_request_id,
    new_request_id,
)
from repro.api.errors import error_payload, route_not_found_payload
from repro.exceptions import ReproError
from repro.gate import (
    API_KEY_HEADER,
    TENANT_HEADER,
    is_valid_tenant_id,
    operation_for,
    retry_after_header,
)
from repro.obs import (
    PROMETHEUS_CONTENT_TYPE,
    TRACE_ID_HEADER,
    TRACE_SPANS_HEADER,
    TRACEPARENT_HEADER,
    Trace,
    activate,
    parse_traceparent,
    request_scope,
    tenant_scope,
)
from repro.serve.service import ExpansionService

#: request body size guard (1 MiB) against accidental or hostile payloads.
MAX_BODY_BYTES = 1 << 20

#: structured access-log destination (one JSON document per line).
access_logger = logging.getLogger("repro.serve.access")

#: deprecated unversioned route -> the v1 route it delegates to.
LEGACY_ROUTES = {
    ("GET", "/healthz"): "/v1/healthz",
    ("GET", "/methods"): "/v1/methods",
    ("GET", "/stats"): "/v1/stats",
    ("POST", "/expand"): "/v1/expand",
}


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the :class:`ApiV1` dispatcher set on the server."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"
    # The handler writes each response as two sends (buffered headers, then
    # body); with Nagle on, the body segment can sit in the server's TCP
    # stack ~40ms waiting for a delayed ACK from a keep-alive client.
    disable_nagle_algorithm = True

    @property
    def service(self) -> ExpansionService:
        return self.server.service  # type: ignore[attr-defined]

    @property
    def api(self) -> "apiv1.ApiV1":
        return self.server.api  # type: ignore[attr-defined]

    # -- routing -----------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._handle("POST")

    def do_DELETE(self) -> None:  # noqa: N802 (http.server API)
        self._handle("DELETE")

    def _handle(self, verb: str) -> None:
        started = time.perf_counter()
        raw_path, _, query = self.path.partition("?")
        path = raw_path.rstrip("/") or "/"
        # Honor a syntactically valid client-supplied X-Request-Id so one id
        # correlates gateway log, worker log, and envelope; replace anything
        # malformed rather than echoing hostile bytes into logs and headers.
        inbound = (self.headers.get(REQUEST_ID_HEADER) or "").strip()
        request_id = inbound if is_valid_request_id(inbound) else new_request_id()
        if verb == "GET" and path == "/v1/metrics":
            self._send_raw(
                200,
                self.service.metrics.render_prometheus().encode("utf-8"),
                PROMETHEUS_CONTENT_TYPE,
                request_id,
            )
            self._access_log(
                request_id=request_id,
                verb=verb,
                route=path,
                status=200,
                latency_ms=(time.perf_counter() - started) * 1000.0,
                cached=None,
                deprecated=False,
            )
            return
        legacy_target = LEGACY_ROUTES.get((verb, path))
        is_v1 = path.startswith("/v1")
        target = legacy_target or path

        # The front door: authenticate + charge quota before reading the
        # body or dispatching.  Liveness probes stay exempt (a throttled
        # worker must not look dead to its pool), and /v1/metrics returned
        # above so scrapes never burn tenant quota.
        gate = self.service.gate
        gate_error: "apiv1.ApiResult | None" = None
        tenant: str | None = None
        if gate is not None and not (verb == "GET" and target == "/v1/healthz"):
            api_key = (self.headers.get(API_KEY_HEADER) or "").strip() or None
            try:
                tenant = gate.check(api_key, operation_for(verb, target))
            except ReproError as exc:
                status, error = error_payload(exc)
                gate_error = apiv1.ApiResult(status=status, error=error)
        elif gate is None:
            # Behind a cluster gateway the worker runs open; it honors the
            # gateway's forwarded tenant (syntactically validated) so
            # per-tenant metrics attribute correctly fleet-wide.
            hint = (self.headers.get(TENANT_HEADER) or "").strip()
            if is_valid_tenant_id(hint):
                tenant = hint

        # Trace continuation/creation: a gateway hop carries a sampled
        # ``traceparent`` we must continue under the same trace_id; a
        # front-line worker makes its own head-sampling decision (or traces
        # anyway when a slow-query threshold might want the spans).
        context = parse_traceparent(self.headers.get(TRACEPARENT_HEADER))
        collector = self.service.traces
        trace: Trace | None = None
        if context is not None and context.sampled:
            trace = Trace(
                request_id=request_id,
                trace_id=context.trace_id,
                parent_span_id=context.span_id,
            )
            trace.sampled = True
        elif collector is not None:
            sampled = collector.sample()
            if sampled or collector.slow_ms is not None:
                trace = Trace(request_id=request_id)
                trace.sampled = sampled

        # The request id (and resolved tenant, and trace) ride contextvars
        # through dispatch so deeper layers (spans, the slow-query log,
        # metric labels) can recover them unplumbed.
        with request_scope(request_id), tenant_scope(tenant):
            if trace is not None:
                with activate(trace):
                    result = gate_error or self._dispatch(
                        verb, target, is_v1 or bool(legacy_target), query
                    )
            else:
                result = gate_error or self._dispatch(
                    verb, target, is_v1 or bool(legacy_target), query
                )
        if legacy_target is not None:
            body = apiv1.render_legacy_body(result)
        elif is_v1:
            body = apiv1.render_v1_body(result, request_id)
        else:
            # exact pre-v1 unrouted-404 body (lower-case error value).
            body = {"error": "not_found", "message": f"no route {path!r}"}
        retry_after = None
        if result.error is not None:
            retry_after = (result.error.get("details") or {}).get("retry_after")
        extra_headers: list[tuple[str, str]] = []
        if trace is not None:
            extra_headers.append((TRACE_ID_HEADER, trace.trace_id))
            if context is not None:
                # remote hop: return this worker's span fragment so the
                # gateway can graft it into its joined trace.
                fragment = json.dumps(
                    {"trace_id": trace.trace_id, "spans": trace.to_span_dicts()},
                    separators=(",", ":"),
                )
                extra_headers.append((TRACE_SPANS_HEADER, fragment))
        self._send(
            result.status,
            body,
            request_id,
            deprecated=legacy_target is not None,
            retry_after=retry_after,
            extra_headers=extra_headers,
        )
        self._access_log(
            request_id=request_id,
            verb=verb,
            route=path,
            status=result.status,
            latency_ms=(time.perf_counter() - started) * 1000.0,
            cached=result.cached,
            deprecated=legacy_target is not None,
            trace_id=trace.trace_id if trace is not None else None,
        )

    def _dispatch(
        self, verb: str, path: str, routed: bool, query: str = ""
    ) -> "apiv1.ApiResult":
        """Resolve the route, then read the body (POST), then dispatch.

        Routing comes first so an unknown path is a deterministic 404
        regardless of what (or whether) a body was sent."""
        if not routed or not self.api.resolves(verb, path):
            return apiv1.ApiResult(status=404, error=route_not_found_payload(path))
        payload = None
        if verb == "POST":
            try:
                payload = self._read_json()
            except ReproError as exc:
                status, error = error_payload(exc)
                return apiv1.ApiResult(status=status, error=error)
        return self.api.dispatch(verb, path, payload, query=query)

    # -- plumbing ----------------------------------------------------------------
    def _read_json(self) -> dict:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError as exc:
            raise ReproError("Content-Length header is not a number") from exc
        if length <= 0:
            raise ReproError("request body is empty")
        if length > MAX_BODY_BYTES:
            raise ReproError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ReproError(f"request body is not valid JSON: {exc}") from exc

    def _send(
        self,
        status: int,
        body,
        request_id: str,
        deprecated: bool = False,
        retry_after: float | None = None,
        extra_headers: list[tuple[str, str]] | None = None,
    ) -> None:
        self._send_raw(
            status,
            json.dumps(body).encode("utf-8"),
            "application/json",
            request_id,
            deprecated=deprecated,
            retry_after=retry_after,
            extra_headers=extra_headers,
        )

    def _send_raw(
        self,
        status: int,
        encoded: bytes,
        content_type: str,
        request_id: str,
        deprecated: bool = False,
        retry_after: float | None = None,
        extra_headers: list[tuple[str, str]] | None = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(encoded)))
        self.send_header(REQUEST_ID_HEADER, request_id)
        for name, value in extra_headers or ():
            self.send_header(name, value)
        if deprecated:
            self.send_header("Deprecation", "true")
        if retry_after is not None:
            # integral delta-seconds, rounded up (RFC 9110); the exact float
            # rides in the error payload's details.retry_after.
            self.send_header("Retry-After", retry_after_header(retry_after))
        if status >= 400:
            # An error response may leave an unread request body on the
            # socket; closing keeps keep-alive clients from desynchronizing.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(encoded)

    def _access_log(
        self,
        request_id: str,
        verb: str,
        route: str,
        status: int,
        latency_ms: float,
        cached: bool | None,
        deprecated: bool,
        trace_id: str | None = None,
    ) -> None:
        if not self.service.config.access_log:
            return
        line = {
            "request_id": request_id,
            "method": verb,
            "route": route,
            "status": status,
            "latency_ms": round(latency_ms, 3),
            "cached": cached,
            "deprecated": deprecated,
        }
        # only stamped on traced requests, keeping the untraced line's
        # exact key set (pinned by wire-shape tests) unchanged.
        if trace_id is not None:
            line["trace_id"] = trace_id
        access_logger.info("%s", json.dumps(line, sort_keys=True))

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        # The structured access log (or silence) replaces the default
        # per-request stderr chatter; opt back in with verbose=True.
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)


class _TrackingHTTPServer(ThreadingHTTPServer):
    """A ``ThreadingHTTPServer`` that can sever live keep-alive connections.

    ``shutdown()`` only stops *new* connections; an idle keep-alive socket a
    client still holds (e.g. a gateway's connection pool) would keep being
    served by its handler thread, leaving a stopped worker looking healthy
    to the rest of the fleet.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._open_connections: set = set()
        self._connections_lock = threading.Lock()

    def process_request(self, request, client_address):
        with self._connections_lock:
            self._open_connections.add(request)
        super().process_request(request, client_address)

    def shutdown_request(self, request):  # runs on the handler thread
        with self._connections_lock:
            self._open_connections.discard(request)
        super().shutdown_request(request)

    def close_all_connections(self) -> None:
        with self._connections_lock:
            connections = list(self._open_connections)
            self._open_connections.clear()
        for connection in connections:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass  # the peer already hung up


class ExpansionHTTPServer:
    """Owns the listening socket and (optionally) a background serving thread."""

    def __init__(
        self,
        service: ExpansionService,
        host: str | None = None,
        port: int | None = None,
        verbose: bool = False,
    ):
        host = host if host is not None else service.config.host
        port = port if port is not None else service.config.port
        self.service = service
        self._httpd = _TrackingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.service = service  # type: ignore[attr-defined]
        self._httpd.api = apiv1.ApiV1(service)  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — useful with an ephemeral port 0."""
        host, port = self._httpd.server_address[:2]
        return (str(host), int(port))

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ExpansionHTTPServer":
        """Serve on a daemon thread and return immediately (test/embedded use)."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (CLI use)."""
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        self._httpd.shutdown()
        self._httpd.close_all_connections()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()
        self._httpd.api.close()  # type: ignore[attr-defined]
        self.service.close()

    def __enter__(self) -> "ExpansionHTTPServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
