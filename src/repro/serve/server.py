"""A dependency-free JSON/HTTP front-end for the expansion service.

Built on the stdlib :mod:`http.server` (``ThreadingHTTPServer``) so the repo
stays installable without a web framework.  Endpoints:

* ``GET /healthz`` — liveness probe;
* ``GET /methods`` — the methods the registry can serve and their fit state;
* ``GET /stats``   — merged service/cache/registry/batcher counters;
* ``POST /expand`` — a JSON :class:`~repro.serve.protocol.ExpandRequest`.

Error mapping: malformed payloads and invalid parameters are ``400``,
unknown methods / classes / query ids are ``404``, anything unexpected is
``500`` — always with a JSON body ``{"error": ..., "message": ...}``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.exceptions import DatasetError, ReproError, UnknownMethodError
from repro.serve.protocol import ExpandRequest
from repro.serve.service import ExpansionService
from repro.utils.iox import to_jsonable

#: request body size guard (1 MiB) against accidental or hostile payloads.
MAX_BODY_BYTES = 1 << 20


def _status_of(exc: BaseException) -> int:
    if isinstance(exc, (UnknownMethodError, DatasetError)):
        return 404
    if isinstance(exc, ReproError):
        return 400
    return 500


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the :class:`ExpansionService` set on the server."""

    server_version = "repro-serve/0.1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> ExpansionService:
        return self.server.service  # type: ignore[attr-defined]

    # -- routing -----------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            self._send(200, {"status": "ok"})
        elif path == "/methods":
            self._send(200, {"methods": self.service.methods()})
        elif path == "/stats":
            self._send(200, self.service.stats())
        else:
            self._send(404, {"error": "not_found", "message": f"no route {path!r}"})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0].rstrip("/")
        if path != "/expand":
            self._send(404, {"error": "not_found", "message": f"no route {path!r}"})
            return
        try:
            payload = self._read_json()
            request = ExpandRequest.from_dict(payload)
            response = self.service.submit(request)
        except Exception as exc:  # noqa: BLE001 - mapped to a status code
            self._send(
                _status_of(exc),
                {"error": type(exc).__name__, "message": str(exc)},
            )
            return
        self._send(200, response)

    # -- plumbing ----------------------------------------------------------------
    def _read_json(self) -> dict:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError as exc:
            raise ReproError("Content-Length header is not a number") from exc
        if length <= 0:
            raise ReproError("request body is empty")
        if length > MAX_BODY_BYTES:
            raise ReproError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ReproError(f"request body is not valid JSON: {exc}") from exc

    def _send(self, status: int, body) -> None:
        encoded = json.dumps(to_jsonable(body)).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(encoded)))
        if status >= 400:
            # An error response may leave an unread request body on the
            # socket; closing keeps keep-alive clients from desynchronizing.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(encoded)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):  # quiet by default (tests)
            super().log_message(format, *args)


class ExpansionHTTPServer:
    """Owns the listening socket and (optionally) a background serving thread."""

    def __init__(
        self,
        service: ExpansionService,
        host: str | None = None,
        port: int | None = None,
        verbose: bool = False,
    ):
        host = host if host is not None else service.config.host
        port = port if port is not None else service.config.port
        self.service = service
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.service = service  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — useful with an ephemeral port 0."""
        host, port = self._httpd.server_address[:2]
        return (str(host), int(port))

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ExpansionHTTPServer":
        """Serve on a daemon thread and return immediately (test/embedded use)."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (CLI use)."""
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()
        self.service.close()

    def __enter__(self) -> "ExpansionHTTPServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
