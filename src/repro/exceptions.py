"""Exception hierarchy for the UltraWiki reproduction library.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch the whole family with a single ``except`` clause while still being
able to distinguish configuration problems from data problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError):
    """A configuration object contains invalid or inconsistent values."""


class DatasetError(ReproError):
    """The dataset is malformed or a construction step cannot be completed."""


class VocabularyError(ReproError):
    """A token or entity is not present in the vocabulary."""


class ModelError(ReproError):
    """A model is used before it has been fitted, or with incompatible data."""


class ExpansionError(ReproError):
    """An expansion query cannot be executed (e.g. unknown seed entities)."""


class EvaluationError(ReproError):
    """Evaluation inputs are inconsistent (e.g. empty ground truth)."""


class ServiceError(ReproError):
    """An online serving request is invalid or cannot be fulfilled."""

    #: structured context merged into the API error envelope's ``details``;
    #: set per instance (``None`` here so instances never share a dict).
    details: dict | None = None


class UnknownMethodError(ServiceError):
    """A serving request names a method the registry does not provide."""


class ServiceUnavailableError(ServiceError):
    """The service is shutting down (or not yet ready); safe to retry elsewhere."""


class AuthenticationError(ServiceError):
    """The request presented no API key, or one the keyfile does not know."""


class RateLimitedError(ServiceError):
    """The tenant exhausted its token-bucket quota; retry after a delay.

    ``retry_after`` (seconds until the bucket refills enough for one
    request) rides in ``details`` so it survives the wire round trip and
    feeds both the ``Retry-After`` header and client backoff.
    """

    def __init__(self, message: str, retry_after: float | None = None):
        super().__init__(message)
        if retry_after is not None:
            self.details = {"retry_after": round(float(retry_after), 3)}


class OverloadedError(ServiceUnavailableError):
    """Admission control shed the request (queue full or wait timed out).

    Subclasses :class:`ServiceUnavailableError` so it maps to the existing
    retryable 503 taxonomy entry; ``retry_after`` and the shed lane ride
    in ``details``.
    """

    def __init__(
        self,
        message: str,
        retry_after: float | None = None,
        lane: str | None = None,
    ):
        super().__init__(message)
        details: dict = {}
        if retry_after is not None:
            details["retry_after"] = round(float(retry_after), 3)
        if lane is not None:
            details["lane"] = lane
        if details:
            self.details = details


class JobError(ServiceError):
    """A background fit job cannot be submitted, queried, or completed."""


class JobNotFoundError(JobError):
    """No fit job exists under the requested job id."""


class JobConflictError(JobError):
    """A fit job for the same method is already queued or running."""


class TransportError(ReproError):
    """An API client transport failed to reach the server (after retries)."""


class PersistenceError(ReproError):
    """An expander cannot save or load its fitted state."""


class SubstrateError(ReproError):
    """A shared-substrate request is invalid (unknown kind, bad parameters)."""


class StoreError(ReproError):
    """An artifact-store operation failed; consumers fall back to refitting."""


class ArtifactNotFoundError(StoreError):
    """No artifact exists for the requested (method, fingerprint) key."""


class ArtifactCorruptError(StoreError):
    """An artifact exists but its manifest, checksums, or payload are broken."""


class ArtifactVersionError(StoreError):
    """An artifact was written under an incompatible format or state version."""
