"""Token-bucket rate limiting for the front door.

A :class:`TokenBucket` holds up to ``burst`` tokens and refills at
``rate`` tokens per second off a monotonic clock.  Refill is lazy — the
bucket stores a level and a timestamp, and advances both on each
acquire — so an idle bucket costs nothing and the math is exact under
an injected clock in tests.

:class:`RateLimiter` keeps one bucket per tenant plus one per
(tenant, operation) pair, created on first use.  A request must clear
*both* buckets; when the operation bucket refuses after the tenant
bucket granted, the tenant token is refunded so a throttled request
consumes no quota.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = ["QuotaSpec", "RateLimiter", "TokenBucket"]

#: Safety valve on the lazily-grown bucket table.  64 tenants x a handful
#: of per-operation overrides fits comfortably; past the cap new keys
#: share one overflow bucket instead of growing without bound.
MAX_BUCKETS = 1024


@dataclass(frozen=True)
class QuotaSpec:
    """A steady rate (requests/second) plus a burst allowance."""

    rate: float
    burst: float

    def __post_init__(self):
        if not (self.rate > 0.0):
            raise ConfigurationError(f"quota rate must be > 0, got {self.rate!r}")
        if not (self.burst >= 1.0):
            raise ConfigurationError(f"quota burst must be >= 1, got {self.burst!r}")

    @classmethod
    def parse(cls, value) -> "QuotaSpec":
        """Accept ``10``, ``"10"``, ``"10:20"`` (rate:burst), or a
        ``{"rate": ..., "burst": ...}`` mapping.  Burst defaults to
        ``max(rate, 1)`` so a bare rate always admits single requests."""
        if isinstance(value, QuotaSpec):
            return value
        if isinstance(value, dict):
            unknown = set(value) - {"rate", "burst"}
            if unknown:
                raise ConfigurationError(
                    f"unknown quota keys: {sorted(unknown)} (expected rate, burst)"
                )
            if "rate" not in value:
                raise ConfigurationError(f"quota mapping needs a 'rate': {value!r}")
            rate = _as_number(value["rate"], "quota rate")
            burst = _as_number(value.get("burst", max(rate, 1.0)), "quota burst")
            return cls(rate=rate, burst=burst)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            rate = float(value)
            return cls(rate=rate, burst=max(rate, 1.0))
        if isinstance(value, str):
            text = value.strip()
            rate_text, sep, burst_text = text.partition(":")
            rate = _as_number(rate_text, "quota rate")
            if sep:
                burst = _as_number(burst_text, "quota burst")
            else:
                burst = max(rate, 1.0)
            return cls(rate=rate, burst=burst)
        raise ConfigurationError(
            f"cannot parse quota from {type(value).__name__}: {value!r}"
        )

    def to_dict(self) -> dict:
        return {"rate": self.rate, "burst": self.burst}


def _as_number(value, label: str) -> float:
    try:
        return float(value)
    except (TypeError, ValueError):
        raise ConfigurationError(f"{label} must be a number, got {value!r}") from None


class TokenBucket:
    """A thread-safe token bucket with lazy monotonic-clock refill."""

    __slots__ = ("rate", "burst", "_clock", "_lock", "_level", "_stamp")

    def __init__(self, rate: float, burst: float, clock=time.monotonic):
        if rate <= 0.0:
            raise ConfigurationError(f"bucket rate must be > 0, got {rate!r}")
        if burst < 1.0:
            raise ConfigurationError(f"bucket burst must be >= 1, got {burst!r}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._lock = threading.Lock()
        self._level = self.burst  # start full: a fresh tenant gets its burst
        self._stamp = clock()

    def try_acquire(self, tokens: float = 1.0) -> float:
        """Take ``tokens`` if available.  Returns ``0.0`` on success, else
        the seconds until the bucket will hold enough tokens (never 0)."""
        with self._lock:
            now = self._clock()
            self._refill_locked(now)
            if self._level >= tokens:
                self._level -= tokens
                return 0.0
            return max((tokens - self._level) / self.rate, 1e-9)

    def refund(self, tokens: float = 1.0) -> None:
        """Return tokens taken by an acquire that was later rolled back."""
        with self._lock:
            self._refill_locked(self._clock())
            self._level = min(self.burst, self._level + tokens)

    def level(self) -> float:
        with self._lock:
            self._refill_locked(self._clock())
            return self._level

    def _refill_locked(self, now: float) -> None:
        elapsed = now - self._stamp
        if elapsed > 0.0:
            self._level = min(self.burst, self._level + elapsed * self.rate)
        self._stamp = now


class RateLimiter:
    """Per-tenant and per-(tenant, operation) buckets behind one lock-free
    read path: buckets are created under a lock once, then shared."""

    def __init__(self, clock=time.monotonic, max_buckets: int = MAX_BUCKETS):
        self._clock = clock
        self._max_buckets = max_buckets
        self._lock = threading.Lock()
        self._buckets: dict[tuple[str, str | None], TokenBucket] = {}

    def check(
        self,
        tenant_id: str,
        quota: QuotaSpec | None,
        operation: str | None = None,
        method_quota: QuotaSpec | None = None,
    ) -> float:
        """Charge one request against the tenant bucket and, when a
        per-operation quota exists, the (tenant, operation) bucket.

        Returns ``0.0`` when admitted, else the retry-after seconds of
        the bucket that refused.  Refusal never consumes quota."""
        tenant_bucket = None
        if quota is not None:
            tenant_bucket = self._bucket(tenant_id, None, quota)
            wait = tenant_bucket.try_acquire()
            if wait > 0.0:
                return wait
        if method_quota is not None and operation is not None:
            method_bucket = self._bucket(tenant_id, operation, method_quota)
            wait = method_bucket.try_acquire()
            if wait > 0.0:
                if tenant_bucket is not None:
                    tenant_bucket.refund()
                return wait
        return 0.0

    def _bucket(
        self, tenant_id: str, operation: str | None, quota: QuotaSpec
    ) -> TokenBucket:
        key = (tenant_id, operation)
        bucket = self._buckets.get(key)
        if bucket is not None and bucket.rate == quota.rate and bucket.burst == quota.burst:
            return bucket
        with self._lock:
            bucket = self._buckets.get(key)
            if bucket is not None and (
                bucket.rate == quota.rate and bucket.burst == quota.burst
            ):
                return bucket
            if bucket is None and len(self._buckets) >= self._max_buckets:
                # overflow: all surplus keys share one bucket so the table
                # stays bounded even under a key-guessing flood.  The shared
                # bucket is never recreated on quota mismatch — that would
                # refill it on every new surplus key.
                key = ("", None)
                bucket = self._buckets.get(key)
                if bucket is not None:
                    return bucket
            bucket = TokenBucket(quota.rate, quota.burst, clock=self._clock)
            self._buckets[key] = bucket
            return bucket

    def stats(self) -> dict:
        with self._lock:
            return {"buckets": len(self._buckets)}
