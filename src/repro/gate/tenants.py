"""Tenant identity: keyfile parsing, hashed API keys, hot reload.

The keyfile is JSON::

    {
      "anonymous": {"quota": "5:10"},          # optional; null/absent = off
      "tenants": [
        {"tenant": "acme",
         "key_sha256": "<hex>",               # or "key": "plaintext" (hashed at load)
         "quota": "100:200",                  # rate[:burst], number, or mapping
         "method_quotas": {"fit": "1:2"}}     # optional per-operation overrides
      ]
    }

Keys never live in memory as plaintext past load time: a ``key`` entry is
hashed immediately and only the SHA-256 digest is kept.  The directory
re-stats the file at most once per ``reload_interval_seconds`` and swaps
in a freshly-parsed table when (mtime_ns, size) changes; a file that goes
bad after a successful load keeps serving the last good table and counts
a reload error instead of taking the front door down.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.gate.limiter import QuotaSpec

__all__ = [
    "ANONYMOUS_TENANT",
    "Tenant",
    "TenantDirectory",
    "hash_key",
    "is_valid_tenant_id",
]

#: Tenant id assigned to unauthenticated callers when anonymous access is on
#: (and to all callers when no keyfile is configured at all).
ANONYMOUS_TENANT = "anonymous"

MAX_TENANT_ID_LENGTH = 64
_TENANT_ID_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)


def hash_key(api_key: str) -> str:
    """SHA-256 hex digest of an API key — the only form keys are stored in."""
    return hashlib.sha256(api_key.encode("utf-8")).hexdigest()


def is_valid_tenant_id(tenant_id) -> bool:
    """Same shape rules as request ids: short, printable, header-safe."""
    return (
        isinstance(tenant_id, str)
        and 0 < len(tenant_id) <= MAX_TENANT_ID_LENGTH
        and all(ch in _TENANT_ID_CHARS for ch in tenant_id)
    )


@dataclass(frozen=True)
class Tenant:
    """One resolved identity with its quotas."""

    tenant_id: str
    quota: QuotaSpec | None = None
    method_quotas: dict[str, QuotaSpec] = field(default_factory=dict)

    def method_quota(self, operation: str | None) -> QuotaSpec | None:
        if operation is None:
            return None
        return self.method_quotas.get(operation)


def _parse_tenant_entry(entry, index: int) -> tuple[str, Tenant]:
    if not isinstance(entry, dict):
        raise ConfigurationError(f"tenants[{index}] must be an object, got {entry!r}")
    tenant_id = entry.get("tenant")
    if not is_valid_tenant_id(tenant_id):
        raise ConfigurationError(
            f"tenants[{index}].tenant must be 1-{MAX_TENANT_ID_LENGTH} chars of "
            f"[A-Za-z0-9._-], got {tenant_id!r}"
        )
    if "key_sha256" in entry:
        digest = entry["key_sha256"]
        if not (isinstance(digest, str) and len(digest) == 64):
            raise ConfigurationError(
                f"tenants[{index}].key_sha256 must be a 64-char hex digest"
            )
        digest = digest.lower()
    elif "key" in entry:
        key = entry["key"]
        if not (isinstance(key, str) and key):
            raise ConfigurationError(f"tenants[{index}].key must be a non-empty string")
        digest = hash_key(key)
    else:
        raise ConfigurationError(f"tenants[{index}] needs a 'key' or 'key_sha256'")
    quota = entry.get("quota")
    method_quotas = entry.get("method_quotas") or {}
    if not isinstance(method_quotas, dict):
        raise ConfigurationError(f"tenants[{index}].method_quotas must be an object")
    tenant = Tenant(
        tenant_id=tenant_id,
        quota=None if quota is None else QuotaSpec.parse(quota),
        method_quotas={
            str(op): QuotaSpec.parse(spec) for op, spec in method_quotas.items()
        },
    )
    return digest, tenant


def _parse_keyfile(text: str) -> tuple[dict[str, Tenant], Tenant | None]:
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise ConfigurationError(f"keyfile is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ConfigurationError("keyfile must be a JSON object")
    unknown = set(payload) - {"anonymous", "tenants"}
    if unknown:
        raise ConfigurationError(
            f"unknown keyfile keys: {sorted(unknown)} (expected anonymous, tenants)"
        )
    entries = payload.get("tenants", [])
    if not isinstance(entries, list):
        raise ConfigurationError("keyfile 'tenants' must be a list")
    table: dict[str, Tenant] = {}
    for index, entry in enumerate(entries):
        digest, tenant = _parse_tenant_entry(entry, index)
        if digest in table:
            raise ConfigurationError(
                f"tenants[{index}] reuses the key of tenant "
                f"{table[digest].tenant_id!r}"
            )
        table[digest] = tenant
    anonymous = payload.get("anonymous")
    anonymous_tenant = None
    if anonymous is not None:
        if not isinstance(anonymous, dict):
            raise ConfigurationError("keyfile 'anonymous' must be an object or null")
        unknown = set(anonymous) - {"quota", "method_quotas"}
        if unknown:
            raise ConfigurationError(f"unknown anonymous keys: {sorted(unknown)}")
        method_quotas = anonymous.get("method_quotas") or {}
        anonymous_tenant = Tenant(
            tenant_id=ANONYMOUS_TENANT,
            quota=(
                None
                if anonymous.get("quota") is None
                else QuotaSpec.parse(anonymous["quota"])
            ),
            method_quotas={
                str(op): QuotaSpec.parse(spec) for op, spec in method_quotas.items()
            },
        )
    return table, anonymous_tenant


class TenantDirectory:
    """API-key -> :class:`Tenant` resolution backed by a hot-reloaded keyfile."""

    def __init__(
        self,
        path: str,
        reload_interval_seconds: float = 1.0,
        clock=time.monotonic,
    ):
        self.path = str(path)
        self.reload_interval_seconds = float(reload_interval_seconds)
        self._clock = clock
        self._lock = threading.Lock()
        self._reloads = 0
        self._reload_errors = 0
        self._table, self._anonymous = self._load()  # bad file at boot raises
        self._signature = self._file_signature()
        self._checked_at = clock()

    def _load(self) -> tuple[dict[str, Tenant], Tenant | None]:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise ConfigurationError(f"cannot read keyfile {self.path}: {exc}") from None
        return _parse_keyfile(text)

    def _file_signature(self):
        try:
            stat = os.stat(self.path)
        except OSError:
            return None
        return (stat.st_mtime_ns, stat.st_size)

    def _maybe_reload(self) -> None:
        now = self._clock()
        # Unlocked pre-check: within the reload interval (the common case on
        # the per-request hot path) resolve() costs one clock read and one
        # compare.  A stale read just delays one reload by an interval.
        if now - self._checked_at < self.reload_interval_seconds:
            return
        with self._lock:
            if now - self._checked_at < self.reload_interval_seconds:
                return
            self._checked_at = now
            signature = self._file_signature()
            if signature is None or signature == self._signature:
                return
            try:
                table, anonymous = self._load()
            except ConfigurationError:
                # keep serving the last good table; a truncated write or a
                # typo must not lock every tenant out.
                self._reload_errors += 1
                self._signature = signature  # don't re-parse until it changes again
                return
            self._table = table
            self._anonymous = anonymous
            self._signature = signature
            self._reloads += 1

    def resolve(self, api_key: str | None) -> Tenant | None:
        """Look up a key (``None`` = no key presented).  Returns the tenant,
        the anonymous tenant when allowed, or ``None`` for a refusal."""
        self._maybe_reload()
        if api_key is None or api_key == "":
            return self._anonymous
        return self._table.get(hash_key(api_key))

    @property
    def allows_anonymous(self) -> bool:
        return self._anonymous is not None

    def tenant_ids(self) -> list[str]:
        ids = sorted({tenant.tenant_id for tenant in self._table.values()})
        if self._anonymous is not None:
            ids.append(self._anonymous.tenant_id)
        return ids

    def stats(self) -> dict:
        with self._lock:
            return {
                "path": self.path,
                "tenants": len({t.tenant_id for t in self._table.values()}),
                "keys": len(self._table),
                "anonymous": self._anonymous is not None,
                "reloads": self._reloads,
                "reload_errors": self._reload_errors,
            }
