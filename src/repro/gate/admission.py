"""Bounded admission with two priority lanes and early load-shedding.

The controller guards the expensive part of a request (the batcher /
registry call) with ``max_concurrent`` execution slots.  Callers that
cannot run immediately wait in one of two lanes:

* ``interactive`` — online ``/v1/expand`` traffic; always served first;
* ``batch`` — ``/v1/expand/batch`` fan-out items and fit jobs.

A freed slot goes to a waiting interactive caller before any batch
caller, so a deep batch backlog cannot starve online traffic.  The queue
is bounded: once ``queue_depth`` callers are already waiting, new
sheddable arrivals are rejected immediately with a retryable
:class:`~repro.exceptions.OverloadedError` (HTTP 503 + ``Retry-After``)
instead of timing out slowly — overload turns into a cheap, early,
well-typed signal the client's backoff understands.  Background fit jobs
admit with ``shed=False``: they hold their place and wait, because a job
the server accepted should run, not vanish under load.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.exceptions import OverloadedError

__all__ = ["ADMISSION_LANES", "AdmissionController"]

ADMISSION_LANES = ("interactive", "batch")


class AdmissionController:
    """Slot-limited admission with priority lanes and bounded waiting."""

    def __init__(
        self,
        max_concurrent: int,
        queue_depth: int = 32,
        timeout_seconds: float = 10.0,
        shed_retry_after_seconds: float = 1.0,
        metrics=None,
    ):
        if max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1, got {max_concurrent!r}")
        if queue_depth < 0:
            raise ValueError(f"queue_depth must be >= 0, got {queue_depth!r}")
        self.max_concurrent = int(max_concurrent)
        self.queue_depth = int(queue_depth)
        self.timeout_seconds = float(timeout_seconds)
        self.shed_retry_after_seconds = float(shed_retry_after_seconds)
        self._condition = threading.Condition()
        self._active = 0
        self._waiting = {lane: 0 for lane in ADMISSION_LANES}
        self._admitted = {lane: 0 for lane in ADMISSION_LANES}
        self._shed = {lane: 0 for lane in ADMISSION_LANES}
        self._timeouts = {lane: 0 for lane in ADMISSION_LANES}
        if metrics is not None:
            shed_counter = metrics.counter(
                "repro_gate_shed_total",
                "Requests shed by the admission controller, by lane.",
            )
            self._shed_series = {
                lane: shed_counter.labels(lane=lane) for lane in ADMISSION_LANES
            }
        else:
            self._shed_series = None

    @contextmanager
    def admit(self, lane: str = "interactive", shed: bool = True):
        """``with admission.admit(lane):`` around the expensive section."""
        self.acquire(lane, shed=shed)
        try:
            yield
        finally:
            self.release()

    def acquire(self, lane: str = "interactive", shed: bool = True) -> None:
        if lane not in self._waiting:
            raise ValueError(f"unknown admission lane {lane!r}")
        with self._condition:
            if self._can_grant_locked(lane):
                self._grant_locked(lane)
                return
            total_waiting = sum(self._waiting.values())
            if shed and total_waiting >= self.queue_depth:
                self._record_shed_locked(lane)
                raise OverloadedError(
                    f"admission queue full ({total_waiting} waiting, "
                    f"depth {self.queue_depth}); shedding {lane} request",
                    retry_after=self.shed_retry_after_seconds,
                    lane=lane,
                )
            self._waiting[lane] += 1
            try:
                remaining = self.timeout_seconds if shed else None
                while not self._can_grant_locked(lane):
                    if not shed:
                        self._condition.wait()
                        continue
                    if remaining is not None and remaining <= 0.0:
                        self._timeouts[lane] += 1
                        self._record_shed_locked(lane)
                        raise OverloadedError(
                            f"admission wait exceeded {self.timeout_seconds:.1f}s; "
                            f"shedding {lane} request",
                            retry_after=self.shed_retry_after_seconds,
                            lane=lane,
                        )
                    before = time.monotonic()
                    self._condition.wait(timeout=remaining)
                    remaining -= time.monotonic() - before
                self._grant_locked(lane)
            finally:
                self._waiting[lane] -= 1
                # a batch waiter may be runnable now that this interactive
                # waiter is gone (grant rule checks interactive waiter count).
                self._condition.notify_all()

    def release(self) -> None:
        with self._condition:
            self._active -= 1
            self._condition.notify_all()

    def _can_grant_locked(self, lane: str) -> bool:
        if self._active >= self.max_concurrent:
            return False
        # batch traffic yields to any waiting interactive caller.
        return lane == "interactive" or self._waiting["interactive"] == 0

    def _grant_locked(self, lane: str) -> None:
        self._active += 1
        self._admitted[lane] += 1

    def _record_shed_locked(self, lane: str) -> None:
        self._shed[lane] += 1
        if self._shed_series is not None:
            self._shed_series[lane].inc()

    def stats(self) -> dict:
        with self._condition:
            return {
                "max_concurrent": self.max_concurrent,
                "queue_depth": self.queue_depth,
                "active": self._active,
                "waiting": dict(self._waiting),
                "admitted": dict(self._admitted),
                "shed": dict(self._shed),
                "timeouts": dict(self._timeouts),
            }
