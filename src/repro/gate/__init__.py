"""repro.gate — the multi-tenant front door: identity, quotas, admission.

Three layers stand between a socket and the serving hot path:

* :mod:`~repro.gate.tenants` — API-key -> tenant resolution from a
  reloadable keyfile (keys stored as SHA-256 hashes, hot-reloaded on
  mtime change, optional anonymous tenant for dev);
* :mod:`~repro.gate.limiter` — per-tenant and per-(tenant, operation)
  token buckets (steady rate + burst, monotonic-clock refill), surfaced
  as 429 + ``Retry-After`` through the ``rate_limited`` taxonomy code;
* :mod:`~repro.gate.admission` — a bounded admission queue per worker
  with two priority lanes (interactive ``/v1/expand`` preempts batch and
  fit traffic) and early load-shedding (retryable 503) past a watermark.

:class:`~repro.gate.auth.Gate` composes the first two into the single
``check(api_key, operation)`` call the HTTP server and cluster gateway
make before dispatch; the resolved tenant id rides the request context
(:func:`repro.obs.tenant_scope`) next to the request id, so per-tenant
metric labels and access-log attribution need no extra plumbing.
"""

from repro.gate.admission import ADMISSION_LANES, AdmissionController
from repro.gate.auth import (
    API_KEY_HEADER,
    TENANT_HEADER,
    Gate,
    operation_for,
    retry_after_header,
)
from repro.gate.limiter import QuotaSpec, RateLimiter, TokenBucket
from repro.gate.tenants import (
    ANONYMOUS_TENANT,
    Tenant,
    TenantDirectory,
    hash_key,
    is_valid_tenant_id,
)

__all__ = [
    "ADMISSION_LANES",
    "ANONYMOUS_TENANT",
    "API_KEY_HEADER",
    "AdmissionController",
    "Gate",
    "QuotaSpec",
    "RateLimiter",
    "Tenant",
    "TenantDirectory",
    "TENANT_HEADER",
    "TokenBucket",
    "hash_key",
    "is_valid_tenant_id",
    "operation_for",
    "retry_after_header",
]
