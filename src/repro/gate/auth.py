"""The Gate: one ``check(api_key, operation)`` call before dispatch.

Composes :class:`~repro.gate.tenants.TenantDirectory` (who are you) with
:class:`~repro.gate.limiter.RateLimiter` (are you within quota) and hands
back the tenant id the request should run under.  Refusals are typed:

* unknown / missing key while a keyfile is configured without anonymous
  access -> :class:`~repro.exceptions.AuthenticationError` (401, final);
* quota exhausted -> :class:`~repro.exceptions.RateLimitedError` (429,
  retryable, ``retry_after`` in details and on the wire as a
  ``Retry-After`` header).

With no keyfile at all the gate still works: every caller is the
anonymous tenant sharing the ``default_quota`` — that is the
``--default-quota``-only dev configuration.  With neither keyfile nor
default quota the server simply builds no gate and stays fully open,
which keeps all pre-gate deployments working unchanged.
"""

from __future__ import annotations

import math
import threading
import time

from repro.exceptions import AuthenticationError, RateLimitedError
from repro.gate.limiter import QuotaSpec, RateLimiter
from repro.gate.tenants import ANONYMOUS_TENANT, Tenant, TenantDirectory

__all__ = [
    "API_KEY_HEADER",
    "Gate",
    "TENANT_HEADER",
    "operation_for",
    "retry_after_header",
]

#: Header carrying the caller's API key.
API_KEY_HEADER = "X-Api-Key"
#: Header the gateway uses to forward the resolved tenant to workers
#: (trusted attribution hint only — workers behind a gateway do not
#: re-authenticate, mirroring ``X-Repro-Worker``).
TENANT_HEADER = "X-Repro-Tenant"

#: Operation names used for per-(tenant, method) quotas; coarse on
#: purpose — quotas distinguish traffic classes, not individual routes.
OPERATION_EXPAND = "expand"
OPERATION_EXPAND_BATCH = "expand_batch"
OPERATION_FIT = "fit"
OPERATION_READ = "read"


def operation_for(verb: str, path: str) -> str:
    """Classify a request into the quota operation it charges."""
    if path == "/v1/expand" or path == "/expand":
        return OPERATION_EXPAND
    if path == "/v1/expand/batch":
        return OPERATION_EXPAND_BATCH
    if path.startswith("/v1/fits") and verb == "POST":
        return OPERATION_FIT
    return OPERATION_READ


def retry_after_header(seconds: float) -> str:
    """``Retry-After`` wire value: RFC 9110 wants delta-seconds as an
    integer, so round up — never tell a client to retry too early."""
    return str(max(1, math.ceil(seconds)))


class Gate:
    """Authentication + quota enforcement for one server process."""

    def __init__(
        self,
        directory: TenantDirectory | None = None,
        default_quota: QuotaSpec | None = None,
        metrics=None,
        clock=time.monotonic,
    ):
        self.directory = directory
        self.default_quota = default_quota
        self._limiter = RateLimiter(clock=clock)
        self._lock = threading.Lock()
        self._requests: dict[str, int] = {}
        self._throttled: dict[str, int] = {}
        self._auth_failures = 0
        self._metrics = metrics
        if metrics is not None:
            self._requests_counter = metrics.counter(
                "repro_gate_requests_total",
                "Requests admitted through the gate, by tenant.",
            )
            self._throttled_counter = metrics.counter(
                "repro_gate_throttled_total",
                "Requests refused with 429 by the token buckets, by tenant.",
            )
            self._auth_failures_counter = metrics.counter(
                "repro_gate_auth_failures_total",
                "Requests refused with 401 (missing or unknown API key).",
            )
        else:
            self._requests_counter = None
            self._throttled_counter = None
            self._auth_failures_counter = None
        self._requests_series: dict[str, object] = {}
        self._throttled_series: dict[str, object] = {}

    def check(self, api_key: str | None, operation: str) -> str:
        """Admit or refuse one request; returns the resolved tenant id."""
        tenant = self._resolve(api_key)
        quota = tenant.quota if tenant.quota is not None else self.default_quota
        method_quotas = tenant.method_quotas
        wait = self._limiter.check(
            tenant.tenant_id,
            quota,
            operation=operation,
            method_quota=method_quotas.get(operation) if method_quotas else None,
        )
        if wait > 0.0:
            self._count(self._throttled, self._throttled_counter,
                        self._throttled_series, tenant.tenant_id)
            raise RateLimitedError(
                f"tenant {tenant.tenant_id!r} is over quota for "
                f"{operation!r}; retry in {wait:.3f}s",
                retry_after=wait,
            )
        self._count(self._requests, self._requests_counter,
                    self._requests_series, tenant.tenant_id)
        return tenant.tenant_id

    def _resolve(self, api_key: str | None) -> Tenant:
        if self.directory is None:
            # no keyfile: one shared anonymous tenant under the default quota.
            return Tenant(tenant_id=ANONYMOUS_TENANT, quota=self.default_quota)
        tenant = self.directory.resolve(api_key)
        if tenant is None:
            with self._lock:
                self._auth_failures += 1
            if self._auth_failures_counter is not None:
                self._auth_failures_counter.inc()
            if api_key:
                raise AuthenticationError("unknown API key")
            raise AuthenticationError(
                f"missing API key ({API_KEY_HEADER} header required)"
            )
        return tenant

    def _count(self, table, counter, series, tenant_id: str) -> None:
        with self._lock:
            table[tenant_id] = table.get(tenant_id, 0) + 1
        if counter is None:
            return
        bound = series.get(tenant_id)
        if bound is None:
            # one bound handle per tenant; the registry's per-family series
            # cap bounds cardinality if tenant ids explode.
            bound = counter.labels(tenant=tenant_id)
            series[tenant_id] = bound
        bound.inc()

    def stats(self) -> dict:
        with self._lock:
            requests = dict(self._requests)
            throttled = dict(self._throttled)
            auth_failures = self._auth_failures
        payload = {
            "requests": requests,
            "throttled": throttled,
            "auth_failures": auth_failures,
            "limiter": self._limiter.stats(),
            "default_quota": (
                None if self.default_quota is None else self.default_quota.to_dict()
            ),
        }
        if self.directory is not None:
            payload["directory"] = self.directory.stats()
        return payload

    def tenant_summary(self) -> list[dict]:
        """Per-tenant rows for the dashboard / ``cluster top`` table."""
        with self._lock:
            tenant_ids = sorted(set(self._requests) | set(self._throttled))
            return [
                {
                    "tenant": tenant_id,
                    "requests": self._requests.get(tenant_id, 0),
                    "throttled": self._throttled.get(tenant_id, 0),
                }
                for tenant_id in tenant_ids
            ]
