"""CGExpan (Zhang et al., 2020): class-name-guided set expansion via
language-model probing.

CGExpan probes a pretrained LM for the name of the seed entities' semantic
class and uses that class name, together with seed similarity, to rank
candidates.  It only consumes positive seeds and reasons at the
*fine-grained* class level, so it cannot separate ultra-fine-grained classes
— which is why the paper reports high Neg intrusion for it.

In this reproduction the class-name probing is served by the oracle LLM
restricted to the fine-grained level (no attribute reasoning) and the
class-name guidance is a lexical concept-match between the inferred class
name and each candidate's context sentences.

Hot path: the entity embeddings are stacked once at fit/load time into a
contiguous :class:`~repro.retrieval.CandidateMatrix` (no per-query
``np.stack`` rebuild), and candidate retrieval goes through the shared
partitioned ANN index when the request's :class:`RetrievalProfile` asks for
it — the probed shortlist is always re-scored exactly, and ``ann=off``
reproduces the historical full-scan ranking bitwise.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.base import Expander
from repro.core.resources import SharedResources
from repro.dataset.ultrawiki import UltraWikiDataset
from repro.genexpan.cot import ConceptMatcher
from repro.lm.embeddings import CooccurrenceEmbeddings
from repro.retrieval import CandidateMatrix
from repro.substrate import ANN_INDEX, COOCCURRENCE_EMBEDDINGS
from repro.types import ExpansionResult, Query


class CGExpan(Expander):
    """Class-name guided expansion with positive seeds only."""

    name = "CGExpan"
    supports_persistence = True
    #: v3: the candidate matrix is precomputed and the artifact references a
    #: partitioned ANN-index substrate alongside the embeddings.
    state_version = 3

    def __init__(
        self,
        class_name_weight: float = 0.35,
        distributed_dim: int = 96,
        resources: SharedResources | None = None,
    ):
        """``distributed_dim`` truncates the entity embeddings: CGExpan probes a
        frozen BERT rather than fine-tuning it, so its entity representations
        carry less attribute-level detail than RetExpan's refined encoder."""
        super().__init__()
        if not 0.0 <= class_name_weight <= 1.0:
            raise ValueError("class_name_weight must be in [0, 1]")
        if distributed_dim <= 0:
            raise ValueError("distributed_dim must be positive")
        self.class_name_weight = class_name_weight
        self.distributed_dim = distributed_dim
        self._resources = resources
        self._embeddings: CooccurrenceEmbeddings | None = None
        self._concept_matcher: ConceptMatcher | None = None
        self._matrix: CandidateMatrix | None = None

    def _ann_params(self) -> dict:
        return self._resources.ann_index_params(
            COOCCURRENCE_EMBEDDINGS,
            self._resources.cooccurrence_params(),
            field="entity",
            dim=self.distributed_dim,
            normalize=True,
        )

    def _bind_matrix(self, index) -> None:
        matrix = CandidateMatrix.from_vectors(
            self._embeddings.entity_vectors(),
            dim=self.distributed_dim,
            normalize=True,
        )
        matrix.attach_index(index)
        self._matrix = matrix

    def _fit(self, dataset: UltraWikiDataset) -> None:
        resources = self._resources or SharedResources(dataset)
        self._resources = resources
        # Pre-build the expensive shared pieces.
        self._embeddings = resources.cooccurrence_embeddings()
        self._concept_matcher = ConceptMatcher(dataset)
        self._bind_matrix(resources.ann_index(self._ann_params()))

    # -- persistence ----------------------------------------------------------------
    def substrate_dependencies(self) -> list[tuple[str, dict]]:
        """The PPMI-SVD co-occurrence embeddings this fit stands on, plus the
        partitioned ANN index over them."""
        if self._resources is None:
            return []
        return [
            (COOCCURRENCE_EMBEDDINGS, self._resources.cooccurrence_params()),
            (ANN_INDEX, self._ann_params()),
        ]

    def _save_state(self, directory: Path) -> None:
        # The embeddings substrate is *referenced* via the manifest (see
        # substrate_dependencies), not embedded; the method artifact carries
        # only a marker so an empty state tree is still a valid artifact.
        from repro.store.serialization import write_json_state

        write_json_state(directory / "cgexpan.json", {"distributed_dim": self.distributed_dim})

    def _load_state(self, directory: Path, dataset: UltraWikiDataset) -> None:
        """Restore the PPMI-SVD embeddings and the ANN index from their shared
        substrates; the concept matcher and oracle are cheap, dataset-derived
        pieces and are rebuilt.  The provider caches the restored substrates,
        so every other embeddings-backed method reuses them instead of
        refitting."""
        self._resources = self._resources or SharedResources(dataset)
        self._embeddings = self._resolve_substrate(
            COOCCURRENCE_EMBEDDINGS, self._resources.cooccurrence_params()
        )
        self._concept_matcher = ConceptMatcher(dataset)
        self._bind_matrix(self._resolve_substrate(ANN_INDEX, self._ann_params()))

    def _probe_class_name(self, query: Query) -> str:
        """LM probing for the *fine-grained* class name of the positive seeds.

        Only the class description is used — CGExpan has no concept of
        ultra-fine-grained attributes, so the attribute detail the oracle
        could add is stripped off.
        """
        oracle = self._resources.oracle()
        name = oracle.infer_class_name(query.positive_seed_ids)
        return name.split(" with ")[0]

    def _expand(self, query: Query, top_k: int) -> ExpansionResult:
        matrix = self._matrix
        seed_ids = [s for s in query.positive_seed_ids if s in matrix]
        if not seed_ids:
            return ExpansionResult(query_id=query.query_id, ranking=())
        seed_matrix = matrix.rows(seed_ids)
        required = max(top_k, 200)
        profile = self.retrieval_profile()
        # Ranking by mean cosine to the seeds equals ranking by dot product
        # with the mean seed vector, so that is the probe query.  Probed mode
        # shortlists straight from the index (no per-query O(vocab) candidate
        # list); exact mode keeps the historical scan bitwise intact.
        if matrix.wants_probe(profile):
            shortlist = matrix.shortlist(
                None,
                seed_matrix.mean(axis=0),
                profile,
                required=required,
                telemetry=self._ann_recorder(),
                exclude=query.seed_ids(),
            )
        else:
            shortlist = [eid for eid in self.candidate_ids(query) if eid in matrix]
        if not shortlist:
            return ExpansionResult(query_id=query.query_id, ranking=())
        candidate_matrix = matrix.rows(shortlist)
        seed_similarity = (candidate_matrix @ seed_matrix.T).mean(axis=1)

        class_name = self._probe_class_name(query)
        concepts = self._concept_matcher.score_batch(shortlist, class_name)
        scored = []
        for index, entity_id in enumerate(shortlist):
            combined = (
                (1.0 - self.class_name_weight) * float(seed_similarity[index])
                + self.class_name_weight * concepts[index]
            )
            scored.append((entity_id, combined))
        scored.sort(key=lambda item: (-item[1], item[0]))
        return ExpansionResult.from_scores(query.query_id, scored[:required])
