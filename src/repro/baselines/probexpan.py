"""ProbExpan (Li et al., 2022): entity representations from the masked-entity
*probability distribution*.

ProbExpan shares RetExpan's overall retrieval framework but represents each
entity by the probability distribution over candidate entities predicted at
the ``[MASK]`` position, rather than by the hidden state.  The paper argues
this discrete representation is coarser, which is the main reason ProbExpan
trails RetExpan on Ultra-ESE (Section VI-B(2)).

The paper also bolts its negative-seed re-ranking module onto ProbExpan for
the Table IV ablation; the ``use_negative_rerank`` flag reproduces that
variant ("+ Neg Rerank").
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.config import EncoderConfig
from repro.core.base import Expander
from repro.core.rerank import segmented_rerank
from repro.core.resources import SharedResources
from repro.dataset.ultrawiki import UltraWikiDataset
from repro.exceptions import ExpansionError
from repro.retexpan.expansion import matrix_similarity_scores, top_k_expansion
from repro.retrieval import CandidateMatrix
from repro.substrate import ANN_INDEX, ENTITY_REPRESENTATIONS
from repro.types import ExpansionResult, Query


class ProbExpan(Expander):
    """Distribution-representation retrieval baseline."""

    supports_persistence = True
    #: v3: the (normalized) distribution candidate matrix is precomputed and
    #: the artifact references a partitioned ANN-index substrate.
    state_version = 3

    def __init__(
        self,
        encoder_config: EncoderConfig | None = None,
        use_negative_rerank: bool = False,
        expansion_size: int = 200,
        segment_length: int = 20,
        resources: SharedResources | None = None,
        name: str | None = None,
    ):
        super().__init__()
        self.encoder_config = encoder_config or EncoderConfig()
        self.use_negative_rerank = use_negative_rerank
        self.expansion_size = expansion_size
        self.segment_length = segment_length
        self._resources = resources
        self._vectors: dict[int, np.ndarray] = {}
        self._matrix: CandidateMatrix | None = None
        if name is not None:
            self.name = name
        else:
            self.name = "ProbExpan + Neg Rerank" if use_negative_rerank else "ProbExpan"

    def _ann_params(self) -> dict:
        return self._resources.ann_index_params(
            ENTITY_REPRESENTATIONS,
            self._resources.entity_representation_params(trained=True),
            field="distribution",
            normalize=True,
        )

    def _bind_matrix(self, index) -> None:
        matrix = CandidateMatrix.from_vectors(self._vectors, normalize=True)
        matrix.attach_index(index)
        self._matrix = matrix

    def _fit(self, dataset: UltraWikiDataset) -> None:
        resources = self._resources or SharedResources(
            dataset, encoder_config=self.encoder_config
        )
        self._resources = resources
        representations = resources.entity_representations(trained=True)
        self._vectors = dict(representations.distribution)
        if not self._vectors:
            raise ExpansionError("no distribution representations available")
        self._bind_matrix(resources.ann_index(self._ann_params()))

    # -- persistence ----------------------------------------------------------------
    def substrate_dependencies(self) -> list[tuple[str, dict]]:
        """The trained entity representations whose distributions this uses,
        plus the partitioned ANN index over them."""
        if self._resources is None:
            return []
        return [
            (
                ENTITY_REPRESENTATIONS,
                self._resources.entity_representation_params(trained=True),
            ),
            (ANN_INDEX, self._ann_params()),
        ]

    def _save_state(self, directory: Path) -> None:
        # The distribution vectors live in the shared entity-representations
        # substrate (referenced via the manifest); the method artifact only
        # carries a marker so an empty state tree is still a valid artifact.
        from repro.store.serialization import write_json_state

        write_json_state(
            directory / "probexpan.json",
            {"use_negative_rerank": self.use_negative_rerank},
        )

    def _load_state(self, directory: Path, dataset: UltraWikiDataset) -> None:
        self._resources = self._resources or SharedResources(
            dataset, encoder_config=self.encoder_config
        )
        representations = self._resolve_substrate(
            ENTITY_REPRESENTATIONS,
            self._resources.entity_representation_params(trained=True),
        )
        self._vectors = dict(representations.distribution)
        if not self._vectors:
            raise ExpansionError("no distribution representations in saved state")
        self._bind_matrix(self._resolve_substrate(ANN_INDEX, self._ann_params()))

    def _similarity_table(
        self, entity_ids: list[int], seed_ids: tuple[int, ...]
    ) -> dict[int, float]:
        """Mean cosine similarity of each entity to ``seed_ids``, with the
        seed matrix gathered once from the precomputed candidate matrix."""
        matrix = self._matrix
        table = {entity_id: 0.0 for entity_id in entity_ids}
        seeds = [s for s in seed_ids if s in matrix]
        if not seeds:
            return table
        seed_matrix = matrix.rows(seeds)
        for entity_id in entity_ids:
            if entity_id in matrix:
                table[entity_id] = float(np.mean(seed_matrix @ matrix.row(entity_id)))
        return table

    def _expand(self, query: Query, top_k: int) -> ExpansionResult:
        matrix = self._matrix
        expansion_size = max(self.expansion_size, top_k)
        seed_ids = [s for s in query.positive_seed_ids if s in matrix]
        profile = self.retrieval_profile()
        if seed_ids and matrix.wants_probe(profile):
            # probed mode shortlists straight from the index: no per-query
            # O(vocab) candidate list, seeds dropped from the probed lists.
            candidates = matrix.shortlist(
                None,
                matrix.rows(seed_ids).mean(axis=0),
                profile,
                required=expansion_size,
                telemetry=self._ann_recorder(),
                exclude=query.seed_ids(),
            )
        else:
            candidates = self.candidate_ids(query)
        scores = matrix_similarity_scores(matrix, candidates, query.positive_seed_ids)
        initial = top_k_expansion(scores, k=expansion_size)
        result = ExpansionResult.from_scores(query.query_id, initial)
        if self.use_negative_rerank and query.negative_seed_ids:
            # Same contrastive negative score as RetExpan's re-ranking module
            # (the paper bolts the identical module onto ProbExpan).
            list_ids = [item.entity_id for item in result.ranking]
            negative_table = self._similarity_table(list_ids, query.negative_seed_ids)
            positive_table = self._similarity_table(list_ids, query.positive_seed_ids)

            def negative_score(entity_id: int) -> float:
                return negative_table[entity_id] - positive_table[entity_id]

            result = segmented_rerank(
                result,
                negative_score=negative_score,
                segment_length=self.segment_length,
            )
        return result
