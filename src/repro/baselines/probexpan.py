"""ProbExpan (Li et al., 2022): entity representations from the masked-entity
*probability distribution*.

ProbExpan shares RetExpan's overall retrieval framework but represents each
entity by the probability distribution over candidate entities predicted at
the ``[MASK]`` position, rather than by the hidden state.  The paper argues
this discrete representation is coarser, which is the main reason ProbExpan
trails RetExpan on Ultra-ESE (Section VI-B(2)).

The paper also bolts its negative-seed re-ranking module onto ProbExpan for
the Table IV ablation; the ``use_negative_rerank`` flag reproduces that
variant ("+ Neg Rerank").
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.config import EncoderConfig
from repro.core.base import Expander
from repro.core.rerank import segmented_rerank
from repro.core.resources import SharedResources
from repro.dataset.ultrawiki import UltraWikiDataset
from repro.exceptions import ExpansionError
from repro.retexpan.expansion import positive_similarity_scores, top_k_expansion
from repro.substrate import ENTITY_REPRESENTATIONS
from repro.types import ExpansionResult, Query
from repro.utils.mathx import l2_normalize


class ProbExpan(Expander):
    """Distribution-representation retrieval baseline."""

    supports_persistence = True
    #: v2: the distribution vectors now come from the shared (referenced)
    #: entity-representations substrate instead of a private embedded copy.
    state_version = 2

    def __init__(
        self,
        encoder_config: EncoderConfig | None = None,
        use_negative_rerank: bool = False,
        expansion_size: int = 200,
        segment_length: int = 20,
        resources: SharedResources | None = None,
        name: str | None = None,
    ):
        super().__init__()
        self.encoder_config = encoder_config or EncoderConfig()
        self.use_negative_rerank = use_negative_rerank
        self.expansion_size = expansion_size
        self.segment_length = segment_length
        self._resources = resources
        self._vectors: dict[int, np.ndarray] = {}
        if name is not None:
            self.name = name
        else:
            self.name = "ProbExpan + Neg Rerank" if use_negative_rerank else "ProbExpan"

    def _fit(self, dataset: UltraWikiDataset) -> None:
        resources = self._resources or SharedResources(
            dataset, encoder_config=self.encoder_config
        )
        self._resources = resources
        representations = resources.entity_representations(trained=True)
        self._vectors = dict(representations.distribution)
        if not self._vectors:
            raise ExpansionError("no distribution representations available")

    # -- persistence ----------------------------------------------------------------
    def substrate_dependencies(self) -> list[tuple[str, dict]]:
        """The trained entity representations whose distributions this uses."""
        if self._resources is None:
            return []
        return [
            (
                ENTITY_REPRESENTATIONS,
                self._resources.entity_representation_params(trained=True),
            )
        ]

    def _save_state(self, directory: Path) -> None:
        # The distribution vectors live in the shared entity-representations
        # substrate (referenced via the manifest); the method artifact only
        # carries a marker so an empty state tree is still a valid artifact.
        from repro.store.serialization import write_json_state

        write_json_state(
            directory / "probexpan.json",
            {"use_negative_rerank": self.use_negative_rerank},
        )

    def _load_state(self, directory: Path, dataset: UltraWikiDataset) -> None:
        self._resources = self._resources or SharedResources(
            dataset, encoder_config=self.encoder_config
        )
        representations = self._resolve_substrate(
            ENTITY_REPRESENTATIONS,
            self._resources.entity_representation_params(trained=True),
        )
        self._vectors = dict(representations.distribution)
        if not self._vectors:
            raise ExpansionError("no distribution representations in saved state")

    def _mean_similarity(self, entity_id: int, seed_ids: tuple[int, ...]) -> float:
        seeds = [self._vectors[s] for s in seed_ids if s in self._vectors]
        if not seeds or entity_id not in self._vectors:
            return 0.0
        seed_matrix = l2_normalize(np.stack(seeds), axis=1)
        vector = l2_normalize(self._vectors[entity_id])
        return float(np.mean(seed_matrix @ vector))

    def _expand(self, query: Query, top_k: int) -> ExpansionResult:
        candidates = self.candidate_ids(query)
        scores = positive_similarity_scores(
            candidates, query.positive_seed_ids, self._vectors
        )
        initial = top_k_expansion(scores, k=max(self.expansion_size, top_k))
        result = ExpansionResult.from_scores(query.query_id, initial)
        if self.use_negative_rerank and query.negative_seed_ids:
            # Same contrastive negative score as RetExpan's re-ranking module
            # (the paper bolts the identical module onto ProbExpan).
            def negative_score(entity_id: int) -> float:
                return self._mean_similarity(
                    entity_id, query.negative_seed_ids
                ) - self._mean_similarity(entity_id, query.positive_seed_ids)

            result = segmented_rerank(
                result,
                negative_score=negative_score,
                segment_length=self.segment_length,
            )
        return result
