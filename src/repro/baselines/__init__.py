"""Baseline ESE methods the paper compares against (Section VI-A)."""

from repro.baselines.setexpan import SetExpan
from repro.baselines.case import CaSE
from repro.baselines.cgexpan import CGExpan
from repro.baselines.probexpan import ProbExpan
from repro.baselines.gpt4 import GPT4Expander

__all__ = ["SetExpan", "CaSE", "CGExpan", "ProbExpan", "GPT4Expander"]
