"""SetExpan (Shen et al., 2017): corpus-based set expansion via context
feature selection and rank ensemble.

The original algorithm iterates two steps: (1) select the skip-gram context
features most distinctive of the current seed set, and (2) rank candidate
entities by an ensemble of rankings, one per sampled feature subset, adding
the top consensus entities to the set.  Being purely statistical and driven
by positive seeds only, it has no notion of ultra-fine-grained attributes or
negative seeds — which is why the paper reports low Pos *and* low Neg scores
for it (it simply fails to recall the fine-grained class members).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from pathlib import Path

from repro.core.base import Expander
from repro.dataset.ultrawiki import UltraWikiDataset
from repro.text.tokenizer import WordTokenizer
from repro.types import ExpansionResult, Query
from repro.utils.rng import RandomState


class SetExpan(Expander):
    """Iterative context-feature-selection / rank-ensemble expansion."""

    name = "SetExpan"
    supports_persistence = True
    state_version = 1

    def __init__(
        self,
        num_iterations: int = 5,
        entities_per_iteration: int = 20,
        num_feature_samples: int = 10,
        features_per_sample: int = 30,
        top_features: int = 60,
        seed: int = 41,
    ):
        super().__init__()
        self.num_iterations = num_iterations
        self.entities_per_iteration = entities_per_iteration
        self.num_feature_samples = num_feature_samples
        self.features_per_sample = features_per_sample
        self.top_features = top_features
        self._rng = RandomState(seed)
        self._tokenizer = WordTokenizer()
        #: entity id -> Counter of skip-gram context features.
        self._entity_features: dict[int, Counter] = {}
        #: feature -> set of entity ids exhibiting it.
        self._feature_entities: dict[str, set[int]] = defaultdict(set)

    # -- fitting --------------------------------------------------------------------
    def _fit(self, dataset: UltraWikiDataset) -> None:
        self._entity_features = {}
        self._feature_entities = defaultdict(set)
        for entity in dataset.entities():
            features: Counter = Counter()
            for sentence in dataset.corpus.sentences_of(entity.entity_id):
                masked = dataset.corpus.masked_text(sentence, entity.name)
                tokens = self._tokenizer.tokenize(masked)
                features.update(self._skipgrams(tokens))
            self._entity_features[entity.entity_id] = features
            for feature in features:
                self._feature_entities[feature].add(entity.entity_id)

    # -- persistence ----------------------------------------------------------------
    def _save_state(self, directory: Path) -> None:
        from repro.store.serialization import save_count_table

        save_count_table(
            directory / "entity_features.json",
            {str(entity_id): features for entity_id, features in self._entity_features.items()},
        )

    def _load_state(self, directory: Path, dataset: UltraWikiDataset) -> None:
        from repro.store.serialization import load_count_table

        table = load_count_table(directory / "entity_features.json")
        self._entity_features = {
            int(entity_id): Counter(features) for entity_id, features in table.items()
        }
        # The inverse index is derived state; rebuilding it beats storing it.
        self._feature_entities = defaultdict(set)
        for entity_id, features in self._entity_features.items():
            for feature in features:
                self._feature_entities[feature].add(entity_id)

    @staticmethod
    def _skipgrams(tokens: list[str]) -> list[str]:
        """Skip-gram features around the [MASK] position (window of two words)."""
        if "[MASK]" not in tokens:
            return []
        position = tokens.index("[MASK]")
        grams = []
        left = tokens[max(0, position - 2) : position]
        right = tokens[position + 1 : position + 3]
        if left:
            grams.append("L:" + " ".join(left))
        if right:
            grams.append("R:" + " ".join(right))
        if left and right:
            grams.append("B:" + left[-1] + "|" + right[0])
        return grams

    # -- expansion --------------------------------------------------------------------
    def _feature_scores(self, current_set: set[int]) -> list[tuple[str, float]]:
        """Score features by how distinctive they are of the current set."""
        scores: dict[str, float] = {}
        for entity_id in current_set:
            for feature, count in self._entity_features.get(entity_id, {}).items():
                support = len(self._feature_entities[feature])
                if support <= 1:
                    continue
                scores[feature] = scores.get(feature, 0.0) + count / support
        return sorted(scores.items(), key=lambda item: (-item[1], item[0]))

    def _rank_candidates(
        self, current_set: set[int], features: list[str], excluded: set[int]
    ) -> list[int]:
        """Rank candidates by overlap with the given feature subset."""
        scores: Counter = Counter()
        for feature in features:
            for entity_id in self._feature_entities.get(feature, ()):
                if entity_id in current_set or entity_id in excluded:
                    continue
                scores[entity_id] += 1
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        return [entity_id for entity_id, _ in ranked]

    def _expand(self, query: Query, top_k: int) -> ExpansionResult:
        excluded = set(query.negative_seed_ids)
        current = set(query.positive_seed_ids)
        expansion_order: list[int] = []

        for iteration in range(self.num_iterations):
            feature_scores = self._feature_scores(current)
            pool = [feature for feature, _ in feature_scores[: self.top_features]]
            if not pool:
                break
            rng = self._rng.child(query.query_id, iteration)
            # Rank ensemble: mean reciprocal rank over sampled feature subsets.
            mrr: dict[int, float] = defaultdict(float)
            for sample_index in range(self.num_feature_samples):
                sample_size = min(self.features_per_sample, len(pool))
                sampled = rng.child(sample_index).sample(pool, sample_size)
                ranking = self._rank_candidates(current, sampled, excluded)
                for rank, entity_id in enumerate(ranking, start=1):
                    mrr[entity_id] += 1.0 / rank
            ranked = sorted(mrr.items(), key=lambda item: (-item[1], item[0]))
            added = 0
            for entity_id, _ in ranked:
                if entity_id in current or entity_id in expansion_order:
                    continue
                expansion_order.append(entity_id)
                current.add(entity_id)
                added += 1
                if added >= self.entities_per_iteration:
                    break
            if added == 0:
                break

        scored = [
            (entity_id, 1.0 / (rank + 1))
            for rank, entity_id in enumerate(expansion_order[:top_k])
        ]
        return ExpansionResult.from_scores(query.query_id, scored)
