"""The GPT-4 prompt baseline (Section VI-A).

The paper prompts GPT-4 with both positive and negative seed entities and
asks for target entities directly.  Here the simulated oracle plays GPT-4:
it ranks entities from its (noisy, popularity-skewed) world knowledge, may
hallucinate non-existent names, and is not constrained to the candidate
vocabulary.  Hallucinated names are discarded when mapping the generated
strings back onto candidate entity ids — the ranking slots they occupied are
simply lost, mirroring the wasted generations the paper describes.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.base import Expander
from repro.core.resources import SharedResources
from repro.dataset.ultrawiki import UltraWikiDataset
from repro.types import ExpansionResult, Query


class GPT4Expander(Expander):
    """Prompt-only expansion served by the simulated GPT-4 oracle."""

    name = "GPT4"
    supports_persistence = True
    state_version = 1

    def __init__(self, resources: SharedResources | None = None):
        super().__init__()
        self._resources = resources

    def _fit(self, dataset: UltraWikiDataset) -> None:
        resources = self._resources or SharedResources(dataset)
        self._resources = resources
        resources.oracle()

    # -- persistence ----------------------------------------------------------------
    def _save_state(self, directory: Path) -> None:
        """The oracle is derived entirely from the dataset; the artifact only
        records that the fit happened so restores skip the fit path."""
        from repro.store.serialization import write_json_state

        write_json_state(directory / "gpt4.json", {"oracle": "dataset-derived"})

    def _load_state(self, directory: Path, dataset: UltraWikiDataset) -> None:
        from repro.store.serialization import read_json_state

        read_json_state(directory / "gpt4.json")
        self._resources = self._resources or SharedResources(dataset)
        self._resources.oracle()

    def _expand(self, query: Query, top_k: int) -> ExpansionResult:
        oracle = self._resources.oracle()
        generated_names = oracle.expand(
            query.positive_seed_ids,
            query.negative_seed_ids,
            self.candidate_ids(query),
            top_k=top_k,
        )
        scored = []
        rank = 0
        for name in generated_names:
            rank += 1
            if not self.dataset.has_entity_name(name):
                # Hallucinated entity: the slot is wasted.
                continue
            entity_id = self.dataset.entity_by_name(name).entity_id
            scored.append((entity_id, 1.0 / rank))
        return ExpansionResult.from_scores(query.query_id, scored)
