"""CaSE (Yu et al., 2019): one-shot set expansion with lexical features and
distributed representations.

CaSE scores every candidate once (no bootstrapping) by combining
(a) a lexical signal — BM25-weighted overlap between the candidate's context
sentences and the seed entities' context sentences — with (b) a distributed
signal — cosine similarity between corpus co-occurrence embeddings.  Like
SetExpan it only consumes positive seeds.

Hot path: the sliced entity embeddings are stacked once at fit/load time
into a contiguous :class:`~repro.retrieval.CandidateMatrix`, and the
distributed scan goes through the shared partitioned ANN index when the
request's :class:`RetrievalProfile` asks for it (probed shortlist, exact
re-score; ``ann=off`` keeps the historical ranking bitwise).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.base import Expander
from repro.core.resources import SharedResources
from repro.dataset.ultrawiki import UltraWikiDataset
from repro.lm.embeddings import CooccurrenceEmbeddings
from repro.retrieval import CandidateMatrix
from repro.substrate import ANN_INDEX, COOCCURRENCE_EMBEDDINGS
from repro.text.bm25 import BM25Index
from repro.text.tokenizer import WordTokenizer
from repro.types import ExpansionResult, Query


class CaSE(Expander):
    """Lexical + distributed one-shot ranking."""

    name = "CaSE"
    supports_persistence = True
    #: v3: the candidate matrix is precomputed and the artifact references a
    #: partitioned ANN-index substrate alongside the embeddings.
    state_version = 3

    def __init__(
        self,
        lexical_weight: float = 0.55,
        distributed_dim: int = 96,
        resources: SharedResources | None = None,
    ):
        """``distributed_dim`` truncates the entity embeddings: CaSE predates
        large pretrained encoders, so its distributed representations are
        lower-capacity (word2vec-scale) than the ones RetExpan consumes."""
        super().__init__()
        if not 0.0 <= lexical_weight <= 1.0:
            raise ValueError("lexical_weight must be in [0, 1]")
        if distributed_dim <= 0:
            raise ValueError("distributed_dim must be positive")
        self.lexical_weight = lexical_weight
        self.distributed_dim = distributed_dim
        self._resources = resources
        self._tokenizer = WordTokenizer()
        self._embeddings: CooccurrenceEmbeddings | None = None
        self._bm25: BM25Index | None = None
        self._entity_terms: dict[int, list[str]] = {}
        self._matrix: CandidateMatrix | None = None

    def _ann_params(self) -> dict:
        return self._resources.ann_index_params(
            COOCCURRENCE_EMBEDDINGS,
            self._resources.cooccurrence_params(),
            field="entity",
            dim=self.distributed_dim,
            normalize=True,
        )

    def _bind_matrix(self, index) -> None:
        matrix = CandidateMatrix.from_vectors(
            self._embeddings.entity_vectors(),
            dim=self.distributed_dim,
            normalize=True,
        )
        matrix.attach_index(index)
        self._matrix = matrix

    def _fit(self, dataset: UltraWikiDataset) -> None:
        resources = self._resources or SharedResources(dataset)
        self._resources = resources
        self._embeddings = resources.cooccurrence_embeddings()
        self._bind_matrix(resources.ann_index(self._ann_params()))
        self._bm25 = BM25Index()
        self._entity_terms = {}
        for entity in dataset.entities():
            tokens: list[str] = []
            for sentence in dataset.corpus.sentences_of(entity.entity_id):
                masked = dataset.corpus.masked_text(sentence, entity.name)
                tokens.extend(
                    token
                    for token in self._tokenizer.tokenize(masked)
                    if token != "[MASK]"
                )
            self._entity_terms[entity.entity_id] = tokens
            self._bm25.add_document(entity.entity_id, tokens)

    # -- persistence ----------------------------------------------------------------
    def substrate_dependencies(self) -> list[tuple[str, dict]]:
        """The PPMI-SVD co-occurrence embeddings this fit stands on, plus the
        partitioned ANN index over them."""
        if self._resources is None:
            return []
        return [
            (COOCCURRENCE_EMBEDDINGS, self._resources.cooccurrence_params()),
            (ANN_INDEX, self._ann_params()),
        ]

    def _save_state(self, directory: Path) -> None:
        # The embeddings substrate is *referenced* via the manifest (see
        # substrate_dependencies); only the method-private BM25 term
        # profiles are embedded.
        from repro.store.serialization import write_json_state

        write_json_state(
            directory / "entity_terms.json",
            {str(entity_id): terms for entity_id, terms in self._entity_terms.items()},
        )

    def _load_state(self, directory: Path, dataset: UltraWikiDataset) -> None:
        from repro.store.serialization import read_json_state

        self._resources = self._resources or SharedResources(dataset)
        self._embeddings = self._resolve_substrate(
            COOCCURRENCE_EMBEDDINGS, self._resources.cooccurrence_params()
        )
        self._bind_matrix(self._resolve_substrate(ANN_INDEX, self._ann_params()))
        terms = read_json_state(directory / "entity_terms.json")
        self._entity_terms = {
            int(entity_id): [str(t) for t in tokens] for entity_id, tokens in terms.items()
        }
        # The BM25 index is derived from the term profiles; re-adding the
        # documents in id order reproduces the fitted index exactly.
        self._bm25 = BM25Index()
        for entity_id in sorted(self._entity_terms):
            self._bm25.add_document(entity_id, self._entity_terms[entity_id])

    def _lexical_score(self, candidate_id: int, seed_ids: tuple[int, ...]) -> float:
        """Mean BM25 score of the candidate's context document for each seed's terms."""
        if self._bm25 is None:
            return 0.0
        scores = []
        for seed in seed_ids:
            seed_terms = self._entity_terms.get(seed, [])
            # Use a truncated seed term profile as the query to keep scoring cheap.
            query_terms = seed_terms[:50]
            scores.append(self._bm25.score(query_terms, candidate_id))
        return float(np.mean(scores)) if scores else 0.0

    def _distributed_scores(
        self, candidate_ids: list[int], seed_ids: tuple[int, ...]
    ) -> dict[int, float]:
        matrix = self._matrix
        seeds = [s for s in seed_ids if s in matrix]
        if not seeds:
            return {eid: 0.0 for eid in candidate_ids}
        seed_matrix = matrix.rows(seeds)
        scores: dict[int, float] = {}
        usable = [eid for eid in candidate_ids if eid in matrix]
        if usable:
            sims = (matrix.rows(usable) @ seed_matrix.T).mean(axis=1)
            scores.update({eid: float(s) for eid, s in zip(usable, sims)})
        for eid in candidate_ids:
            scores.setdefault(eid, 0.0)
        return scores

    def _expand(self, query: Query, top_k: int) -> ExpansionResult:
        matrix = self._matrix
        required = max(3 * top_k, 150)
        probe_seeds = [s for s in query.positive_seed_ids if s in matrix]
        profile = self.retrieval_profile()
        if probe_seeds and matrix.wants_probe(profile):
            # probed mode shortlists straight from the index: no per-query
            # O(vocab) candidate list, seeds dropped from the probed lists.
            candidates = matrix.shortlist(
                None,
                matrix.rows(probe_seeds).mean(axis=0),
                profile,
                required=required,
                telemetry=self._ann_recorder(),
                exclude=query.seed_ids(),
            )
        else:
            candidates = self.candidate_ids(query)
        distributed = self._distributed_scores(candidates, query.positive_seed_ids)
        # Lexical scoring is restricted to the best distributed candidates for
        # tractability (CaSE itself prunes with an inverted index).
        shortlist = sorted(distributed.items(), key=lambda item: (-item[1], item[0]))
        shortlist_ids = [eid for eid, _ in shortlist[:required]]
        lexical_values = {
            eid: self._lexical_score(eid, query.positive_seed_ids) for eid in shortlist_ids
        }
        max_lex = max(lexical_values.values()) if lexical_values else 0.0
        scored = []
        for eid in shortlist_ids:
            lexical = lexical_values[eid] / max_lex if max_lex > 0 else 0.0
            combined = (
                self.lexical_weight * lexical
                + (1.0 - self.lexical_weight) * distributed[eid]
            )
            scored.append((eid, combined))
        return ExpansionResult.from_scores(query.query_id, scored)
