"""repro — a reproduction of "UltraWiki: Ultra-fine-grained Entity Set
Expansion with Negative Seed Entities" (ICDE 2025).

Quickstart::

    from repro import DatasetConfig, build_dataset, RetExpan, Evaluator

    dataset = build_dataset(DatasetConfig.tiny())
    expander = RetExpan().fit(dataset)
    report = Evaluator(dataset, max_queries=10).evaluate(expander)
    print(report.value("comb", "map", 10))

The public surface re-exports the pieces a downstream user needs: dataset
construction (:func:`build_dataset`), the two proposed frameworks
(:class:`RetExpan`, :class:`GenExpan`), the baselines, and the evaluation
protocol (:class:`Evaluator`).
"""

from repro.config import (
    CausalLMConfig,
    ClusterConfig,
    ContrastiveConfig,
    DatasetConfig,
    EncoderConfig,
    EvaluationConfig,
    GenExpanConfig,
    OracleConfig,
    RetExpanConfig,
    ServiceConfig,
)
from repro.types import (
    Entity,
    ExpansionResult,
    FineGrainedClass,
    Query,
    RankedEntity,
    Sentence,
    UltraFineGrainedClass,
)
from repro.dataset import (
    UltraWikiBuilder,
    UltraWikiDataset,
    build_dataset,
    compute_statistics,
    dataset_comparison_table,
)
from repro.core import Expander, SharedResources, segmented_rerank
from repro.retexpan import RetExpan
from repro.genexpan import GenExpan
from repro.baselines import CGExpan, CaSE, GPT4Expander, ProbExpan, SetExpan
from repro.eval import EvaluationReport, Evaluator, format_metric_report, format_table
from repro.serve import (
    ExpandOptions,
    ExpandRequest,
    ExpandResponse,
    ExpansionHTTPServer,
    ExpansionService,
)
from repro.client import ExpansionClient
from repro.store import ArtifactInfo, ArtifactStore, FitLock
from repro.cluster import ClusterGateway, WorkerPool, WorkerSpec

__version__ = "0.1.0"

__all__ = [
    "__version__",
    # configs
    "DatasetConfig",
    "EncoderConfig",
    "ContrastiveConfig",
    "CausalLMConfig",
    "OracleConfig",
    "RetExpanConfig",
    "GenExpanConfig",
    "EvaluationConfig",
    # data types
    "Entity",
    "Sentence",
    "FineGrainedClass",
    "UltraFineGrainedClass",
    "Query",
    "RankedEntity",
    "ExpansionResult",
    # dataset
    "UltraWikiDataset",
    "UltraWikiBuilder",
    "build_dataset",
    "compute_statistics",
    "dataset_comparison_table",
    # core / methods
    "Expander",
    "SharedResources",
    "segmented_rerank",
    "RetExpan",
    "GenExpan",
    "SetExpan",
    "CaSE",
    "CGExpan",
    "ProbExpan",
    "GPT4Expander",
    # evaluation
    "Evaluator",
    "EvaluationReport",
    "format_table",
    "format_metric_report",
    # serving
    "ServiceConfig",
    "ExpandOptions",
    "ExpandRequest",
    "ExpandResponse",
    "ExpansionService",
    "ExpansionHTTPServer",
    "ExpansionClient",
    # persistence
    "ArtifactStore",
    "ArtifactInfo",
    "FitLock",
    # cluster
    "ClusterConfig",
    "ClusterGateway",
    "WorkerPool",
    "WorkerSpec",
]
