"""Core data types shared across the library.

The types mirror the task formulation in Section III of the paper:

* an :class:`Entity` carries a name and a mapping of attribute → value;
* a :class:`FineGrainedClass` groups entities that share a concept (e.g.
  ``mobile_phone_brands``) and declares which attributes it annotates;
* an :class:`UltraFineGrainedClass` constrains a fine-grained class with a
  positive attribute assignment ``A_pos`` and a negative assignment ``A_neg``,
  which induce the positive target set ``P`` and negative target set ``N``;
* a :class:`Query` is one concrete input to an expansion model: positive and
  negative seed entities drawn from ``P`` and ``N``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.exceptions import DatasetError


@dataclass(frozen=True)
class Entity:
    """A single candidate entity.

    Attributes
    ----------
    entity_id:
        Unique integer id within a dataset.
    name:
        Human-readable surface form (unique within a dataset).
    fine_class:
        Name of the fine-grained class this entity belongs to, or ``None``
        for distractor entities sampled from the broader candidate pool.
    attributes:
        Mapping from attribute name to attribute value.  Distractors have an
        empty mapping.
    popularity:
        Relative frequency weight in [0, 1]; low values mark long-tail
        entities that receive few context sentences and that the simulated
        GPT-4 oracle knows poorly.
    """

    entity_id: int
    name: str
    fine_class: str | None = None
    attributes: Mapping[str, str] = field(default_factory=dict)
    popularity: float = 1.0

    def get(self, attribute: str) -> str | None:
        """Return the value of ``attribute`` or ``None`` when unannotated."""
        return self.attributes.get(attribute)

    def matches(self, assignment: Mapping[str, str]) -> bool:
        """True when this entity has every attribute value in ``assignment``."""
        return all(self.attributes.get(a) == v for a, v in assignment.items())

    def to_dict(self) -> dict:
        return {
            "entity_id": self.entity_id,
            "name": self.name,
            "fine_class": self.fine_class,
            "attributes": dict(self.attributes),
            "popularity": self.popularity,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Entity":
        return cls(
            entity_id=int(payload["entity_id"]),
            name=str(payload["name"]),
            fine_class=payload.get("fine_class"),
            attributes=dict(payload.get("attributes", {})),
            popularity=float(payload.get("popularity", 1.0)),
        )


@dataclass(frozen=True)
class Sentence:
    """A corpus sentence with the entities it mentions.

    The paper aligns Wikipedia sentences to entities through hyperlinks; the
    synthetic corpus records mentioned entity ids explicitly, which plays the
    same role.
    """

    sentence_id: int
    text: str
    entity_ids: tuple[int, ...]

    def to_dict(self) -> dict:
        return {
            "sentence_id": self.sentence_id,
            "text": self.text,
            "entity_ids": list(self.entity_ids),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Sentence":
        return cls(
            sentence_id=int(payload["sentence_id"]),
            text=str(payload["text"]),
            entity_ids=tuple(int(i) for i in payload["entity_ids"]),
        )


@dataclass(frozen=True)
class FineGrainedClass:
    """A fine-grained semantic class (e.g. ``countries``) and its attributes."""

    name: str
    description: str
    attributes: Mapping[str, tuple[str, ...]]

    def attribute_names(self) -> tuple[str, ...]:
        return tuple(self.attributes.keys())

    def values_of(self, attribute: str) -> tuple[str, ...]:
        if attribute not in self.attributes:
            raise DatasetError(
                f"class {self.name!r} has no attribute {attribute!r}"
            )
        return tuple(self.attributes[attribute])

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "attributes": {k: list(v) for k, v in self.attributes.items()},
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "FineGrainedClass":
        return cls(
            name=str(payload["name"]),
            description=str(payload.get("description", "")),
            attributes={k: tuple(v) for k, v in payload["attributes"].items()},
        )


@dataclass(frozen=True)
class UltraFineGrainedClass:
    """An ultra-fine-grained semantic class.

    ``positive_assignment`` (``A_pos``) and ``negative_assignment`` (``A_neg``)
    are attribute → value mappings.  The target set is ``P - N`` where ``P``
    holds entities matching ``A_pos`` and ``N`` holds entities matching
    ``A_neg`` (Section III).
    """

    class_id: str
    fine_class: str
    positive_assignment: Mapping[str, str]
    negative_assignment: Mapping[str, str]
    positive_entity_ids: tuple[int, ...]
    negative_entity_ids: tuple[int, ...]

    @property
    def same_attributes(self) -> bool:
        """True when ``A_pos`` and ``A_neg`` constrain the same attributes."""
        return set(self.positive_assignment) == set(self.negative_assignment)

    @property
    def attribute_cardinality(self) -> tuple[int, int]:
        """``(|A_pos|, |A_neg|)`` as reported in Table VI."""
        return (len(self.positive_assignment), len(self.negative_assignment))

    def to_dict(self) -> dict:
        return {
            "class_id": self.class_id,
            "fine_class": self.fine_class,
            "positive_assignment": dict(self.positive_assignment),
            "negative_assignment": dict(self.negative_assignment),
            "positive_entity_ids": list(self.positive_entity_ids),
            "negative_entity_ids": list(self.negative_entity_ids),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "UltraFineGrainedClass":
        return cls(
            class_id=str(payload["class_id"]),
            fine_class=str(payload["fine_class"]),
            positive_assignment=dict(payload["positive_assignment"]),
            negative_assignment=dict(payload["negative_assignment"]),
            positive_entity_ids=tuple(int(i) for i in payload["positive_entity_ids"]),
            negative_entity_ids=tuple(int(i) for i in payload["negative_entity_ids"]),
        )


@dataclass(frozen=True)
class Query:
    """One expansion query: positive and negative seed entity ids."""

    query_id: str
    class_id: str
    positive_seed_ids: tuple[int, ...]
    negative_seed_ids: tuple[int, ...]

    def __post_init__(self) -> None:
        overlap = set(self.positive_seed_ids) & set(self.negative_seed_ids)
        if overlap:
            raise DatasetError(
                f"query {self.query_id!r}: seeds {sorted(overlap)} appear as "
                "both positive and negative"
            )

    def seed_ids(self) -> frozenset[int]:
        """All seed entity ids (positive and negative), cached per query.

        Seed-set membership is tested on every expansion and candidate scan,
        so the union is materialised once per :class:`Query` instance instead
        of being rebuilt per call.
        """
        cached = self.__dict__.get("_seed_ids")
        if cached is None:
            cached = frozenset(self.positive_seed_ids) | frozenset(self.negative_seed_ids)
            object.__setattr__(self, "_seed_ids", cached)
        return cached

    def to_dict(self) -> dict:
        return {
            "query_id": self.query_id,
            "class_id": self.class_id,
            "positive_seed_ids": list(self.positive_seed_ids),
            "negative_seed_ids": list(self.negative_seed_ids),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Query":
        return cls(
            query_id=str(payload["query_id"]),
            class_id=str(payload["class_id"]),
            positive_seed_ids=tuple(int(i) for i in payload["positive_seed_ids"]),
            negative_seed_ids=tuple(int(i) for i in payload["negative_seed_ids"]),
        )


@dataclass(frozen=True)
class RankedEntity:
    """One entry of an expansion result list."""

    entity_id: int
    score: float

    def to_dict(self) -> dict:
        return {"entity_id": self.entity_id, "score": self.score}


@dataclass(frozen=True)
class ExpansionResult:
    """The ranked output of an expander for a single query."""

    query_id: str
    ranking: tuple[RankedEntity, ...]

    def entity_ids(self) -> list[int]:
        """Ranked entity ids, best first."""
        return [item.entity_id for item in self.ranking]

    def top(self, k: int) -> list[int]:
        """The top-``k`` entity ids."""
        return self.entity_ids()[:k]

    @classmethod
    def from_scores(
        cls, query_id: str, scored: Sequence[tuple[int, float]]
    ) -> "ExpansionResult":
        """Build a result from ``(entity_id, score)`` pairs, sorting by score.

        Ties are broken by entity id to keep rankings deterministic.
        """
        ordered = sorted(scored, key=lambda pair: (-pair[1], pair[0]))
        ranking = tuple(RankedEntity(int(e), float(s)) for e, s in ordered)
        return cls(query_id=query_id, ranking=ranking)
