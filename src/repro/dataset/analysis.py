"""Dataset statistics and similarity analysis.

Backs Table I (dataset comparison) and Figure 4 (semantic similarity heatmap
of ultra-fine-grained classes) of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict
from typing import Mapping, Sequence

import numpy as np

from repro.dataset.ultrawiki import UltraWikiDataset
from repro.utils.mathx import cosine_similarity_matrix

#: Statistics of prior ESE datasets as reported in Table I of the paper.
PRIOR_DATASETS: dict[str, dict] = {
    "Wiki": {
        "semantic_classes": 8,
        "granularity": "Fine",
        "queries_per_class": 5,
        "pos_seeds_per_query": "3",
        "neg_seeds_per_query": "N/A",
        "candidate_entities": 33_000,
        "corpus_sentences": 973_000,
        "entity_attribution": False,
    },
    "APR": {
        "semantic_classes": 3,
        "granularity": "Fine",
        "queries_per_class": 5,
        "pos_seeds_per_query": "3",
        "neg_seeds_per_query": "N/A",
        "candidate_entities": 76_000,
        "corpus_sentences": 1_043_000,
        "entity_attribution": False,
    },
    "CoNLL": {
        "semantic_classes": 4,
        "granularity": "Coarse",
        "queries_per_class": 1,
        "pos_seeds_per_query": "10",
        "neg_seeds_per_query": "N/A",
        "candidate_entities": 6_000,
        "corpus_sentences": 21_000,
        "entity_attribution": False,
    },
    "OntoNotes": {
        "semantic_classes": 8,
        "granularity": "Coarse",
        "queries_per_class": 1,
        "pos_seeds_per_query": "10",
        "neg_seeds_per_query": "N/A",
        "candidate_entities": 20_000,
        "corpus_sentences": 144_000,
        "entity_attribution": False,
    },
}

#: Headline statistics of the original UltraWiki dataset (paper Section IV-B).
PAPER_ULTRAWIKI_STATS: dict = {
    "semantic_classes": 261,
    "granularity": "Ultra-Fine",
    "queries_per_class": 3,
    "pos_seeds_per_query": "3-5",
    "neg_seeds_per_query": "3-5",
    "candidate_entities": 50_973,
    "corpus_sentences": 394_097,
    "entity_attribution": True,
    "avg_positive_targets": 63,
    "avg_negative_targets": 60,
}


@dataclass
class DatasetStatistics:
    """Summary statistics of a generated UltraWiki-style dataset."""

    num_entities: int
    num_distractors: int
    num_sentences: int
    num_fine_classes: int
    num_ultra_classes: int
    num_queries: int
    queries_per_class: float
    avg_positive_targets: float
    avg_negative_targets: float
    avg_positive_seeds: float
    avg_negative_seeds: float
    class_overlap_fraction: float
    long_tail_fraction: float

    def to_dict(self) -> dict:
        return asdict(self)


def compute_statistics(dataset: UltraWikiDataset) -> DatasetStatistics:
    """Compute the Table-I-style statistics of ``dataset``."""
    ultra_classes = list(dataset.ultra_classes.values())
    queries = dataset.queries
    num_classes = len(ultra_classes)

    avg_pos_targets = (
        float(np.mean([len(uc.positive_entity_ids) for uc in ultra_classes]))
        if ultra_classes
        else 0.0
    )
    avg_neg_targets = (
        float(np.mean([len(uc.negative_entity_ids) for uc in ultra_classes]))
        if ultra_classes
        else 0.0
    )
    avg_pos_seeds = (
        float(np.mean([len(q.positive_seed_ids) for q in queries])) if queries else 0.0
    )
    avg_neg_seeds = (
        float(np.mean([len(q.negative_seed_ids) for q in queries])) if queries else 0.0
    )

    overlapping = 0
    for uc in ultra_classes:
        others = [
            other
            for other in ultra_classes
            if other.class_id != uc.class_id and other.fine_class == uc.fine_class
        ]
        pos = set(uc.positive_entity_ids)
        if any(pos & set(other.positive_entity_ids) for other in others):
            overlapping += 1
    overlap_fraction = overlapping / num_classes if num_classes else 0.0

    entities = dataset.entities()
    long_tail = sum(1 for e in entities if e.popularity < 0.35)

    return DatasetStatistics(
        num_entities=dataset.num_entities,
        num_distractors=len(dataset.distractors()),
        num_sentences=dataset.num_sentences,
        num_fine_classes=len(dataset.fine_classes),
        num_ultra_classes=num_classes,
        num_queries=len(queries),
        queries_per_class=len(queries) / num_classes if num_classes else 0.0,
        avg_positive_targets=avg_pos_targets,
        avg_negative_targets=avg_neg_targets,
        avg_positive_seeds=avg_pos_seeds,
        avg_negative_seeds=avg_neg_seeds,
        class_overlap_fraction=overlap_fraction,
        long_tail_fraction=long_tail / len(entities) if entities else 0.0,
    )


def dataset_comparison_table(dataset: UltraWikiDataset) -> list[dict]:
    """Rows of the Table I comparison: prior datasets, paper UltraWiki, ours."""
    stats = compute_statistics(dataset)
    rows = []
    for name, payload in PRIOR_DATASETS.items():
        rows.append({"dataset": name, **payload})
    rows.append({"dataset": "UltraWiki (paper)", **PAPER_ULTRAWIKI_STATS})
    rows.append(
        {
            "dataset": "UltraWiki (this repo, synthetic)",
            "semantic_classes": stats.num_ultra_classes,
            "granularity": "Ultra-Fine",
            "queries_per_class": round(stats.queries_per_class, 1),
            "pos_seeds_per_query": "3-5",
            "neg_seeds_per_query": "3-5",
            "candidate_entities": stats.num_entities,
            "corpus_sentences": stats.num_sentences,
            "entity_attribution": True,
            "avg_positive_targets": round(stats.avg_positive_targets, 1),
            "avg_negative_targets": round(stats.avg_negative_targets, 1),
        }
    )
    return rows


def class_similarity_matrix(
    dataset: UltraWikiDataset,
    embeddings: Mapping[int, np.ndarray],
    class_ids: Sequence[str] | None = None,
    max_classes: int = 80,
) -> tuple[list[str], np.ndarray]:
    """Figure 4: pairwise cosine similarity of class-averaged entity embeddings.

    Each row/column is the average embedding of the ground-truth positive
    entities of one ultra-fine-grained class; the paper proportionally samples
    classes down to 80 for readability, which ``max_classes`` mirrors.

    Returns ``(class_ids, matrix)`` where ``matrix[i, j]`` is the cosine
    similarity between class ``i`` and class ``j``.
    """
    if class_ids is None:
        class_ids = sorted(dataset.ultra_classes)
    class_ids = list(class_ids)[:max_classes]
    vectors = []
    kept_ids = []
    for class_id in class_ids:
        ultra = dataset.ultra_class(class_id)
        member_vectors = [
            embeddings[eid] for eid in ultra.positive_entity_ids if eid in embeddings
        ]
        if not member_vectors:
            continue
        vectors.append(np.mean(np.stack(member_vectors), axis=0))
        kept_ids.append(class_id)
    if not vectors:
        return [], np.zeros((0, 0))
    matrix = cosine_similarity_matrix(np.stack(vectors))
    return kept_ids, matrix


def intra_inter_similarity(
    dataset: UltraWikiDataset, embeddings: Mapping[int, np.ndarray]
) -> dict:
    """Summary of Figure 4: average intra-class vs inter-class similarity.

    The paper's qualitative claim is that intra-class similarity is
    "remarkably high"; this summary lets the benchmark assert the same shape
    (intra > inter) on the synthetic dataset.
    """
    class_ids, matrix = class_similarity_matrix(dataset, embeddings)
    if len(class_ids) < 2:
        return {"intra": 0.0, "inter": 0.0, "num_classes": len(class_ids)}
    fine_of = {cid: dataset.ultra_class(cid).fine_class for cid in class_ids}
    intra_values = []
    inter_values = []
    for i in range(len(class_ids)):
        for j in range(len(class_ids)):
            if i == j:
                continue
            if fine_of[class_ids[i]] == fine_of[class_ids[j]]:
                intra_values.append(matrix[i, j])
            else:
                inter_values.append(matrix[i, j])
    return {
        "intra": float(np.mean(intra_values)) if intra_values else 0.0,
        "inter": float(np.mean(inter_values)) if inter_values else 0.0,
        "num_classes": len(class_ids),
    }
