"""The four-step UltraWiki construction pipeline (Section IV-A).

Step 1 — semantic classes and entities collection: instantiate the ten
fine-grained class schemas and mint their entities plus a distractor pool
("entities sampled from Wikipedia pages").

Step 2 — entity-labelled sentence collection: generate context sentences for
every entity; BM25-mined hard distractors additionally receive sentences that
mimic the class wording so they are textually confusable with real targets.

Step 3 — entity attribute annotation: query the simulated Wikidata client for
attribute values and fall back to the three-annotator simulation for the
remainder; the resulting labels (not the generator's hidden ground truth) are
what the ultra-fine-grained classes are built from, exactly as in the paper.

Step 4 — negative-aware semantic class generation: enumerate and sample
(A_pos, A_neg) configurations, materialise P and N, and sample queries.
"""

from __future__ import annotations

from dataclasses import replace as dataclass_replace

from repro.config import DatasetConfig
from repro.dataset.queries import QueryGenerator
from repro.dataset.semantic_class import SemanticClassGenerator
from repro.dataset.ultrawiki import UltraWikiDataset
from repro.exceptions import DatasetError
from repro.kb.corpus import Corpus
from repro.kb.generator import EntityGenerator
from repro.kb.schema import ClassSchema, default_schemas
from repro.kb.sentences import SentenceGenerator
from repro.kb.wikidata import AnnotationSimulator, WikidataClient
from repro.text.tokenizer import WordTokenizer
from repro.types import Entity, FineGrainedClass, Sentence
from repro.utils.rng import RandomState


class UltraWikiBuilder:
    """Builds a synthetic UltraWiki dataset from a :class:`DatasetConfig`."""

    def __init__(self, config: DatasetConfig | None = None):
        self.config = config or DatasetConfig()
        self.config.validate()
        self._rng = RandomState(self.config.seed)
        self._tokenizer = WordTokenizer()

    # -- step 1 -----------------------------------------------------------------
    def _collect_entities(
        self, schemas: list[ClassSchema]
    ) -> tuple[list[Entity], list[Entity]]:
        generator = EntityGenerator(self._rng.child("generator"))
        class_entities: list[Entity] = []
        for schema in schemas:
            class_entities.extend(
                generator.generate_class_entities(
                    schema,
                    self.config.entities_per_class,
                    long_tail_fraction=self.config.long_tail_fraction,
                )
            )
        distractors = generator.generate_distractors(self.config.num_distractors)
        return class_entities, distractors

    # -- step 2 -----------------------------------------------------------------
    def _collect_sentences(
        self,
        class_entities: list[Entity],
        distractors: list[Entity],
        schemas: dict[str, ClassSchema],
    ) -> tuple[Corpus, set[int]]:
        sentence_gen = SentenceGenerator(self._rng.child("sentences"))
        sentences = sentence_gen.generate_corpus(
            class_entities + distractors, schemas, self.config.sentences_per_entity
        )
        corpus = Corpus(sentences)
        hard_negative_ids = self._mine_hard_negatives(
            corpus, class_entities, distractors, schemas
        )
        return corpus, hard_negative_ids

    def _mine_hard_negatives(
        self,
        corpus: Corpus,
        class_entities: list[Entity],
        distractors: list[Entity],
        schemas: dict[str, ClassSchema],
    ) -> set[int]:
        """BM25-mine distractors similar to each class and make them harder.

        The paper incorporates entities highly similar to the targets as hard
        negatives in the candidate vocabulary.  Here, for each fine-grained
        class, the distractor sentences most similar (by BM25) to the class's
        generic wording are identified and those distractors receive extra
        sentences phrased with the class's generic templates, so that they
        become textually confusable with genuine class members while having no
        attribute annotations.
        """
        if self.config.hard_negatives_per_class <= 0 or not distractors:
            return set()
        rng = self._rng.child("hard_negatives")
        bm25 = corpus.build_bm25(self._tokenizer)
        sentence_to_entity = {
            sentence.sentence_id: sentence.entity_ids[0] for sentence in corpus
        }
        distractor_ids = {d.entity_id for d in distractors}
        hard_ids: set[int] = set()
        next_sentence_id = max(s.sentence_id for s in corpus) + 1

        for schema in schemas.values():
            query_text = " ".join(schema.generic_templates).replace("{name}", "")
            query_tokens = self._tokenizer.tokenize(query_text)
            ranked = bm25.search(query_tokens, top_k=len(sentence_to_entity))
            chosen: list[int] = []
            for sentence_id, _score in ranked:
                entity_id = sentence_to_entity[sentence_id]
                if entity_id in distractor_ids and entity_id not in chosen:
                    chosen.append(entity_id)
                if len(chosen) >= self.config.hard_negatives_per_class:
                    break
            for entity_id in chosen:
                hard_ids.add(entity_id)
                entity = next(d for d in distractors if d.entity_id == entity_id)
                template = schema.generic_templates[
                    rng.integers(0, len(schema.generic_templates))
                ]
                corpus.add(
                    Sentence(
                        sentence_id=next_sentence_id,
                        text=template.format(name=entity.name),
                        entity_ids=(entity_id,),
                    )
                )
                next_sentence_id += 1
        return hard_ids

    # -- step 3 -----------------------------------------------------------------
    def _annotate_attributes(
        self, class_entities: list[Entity], schemas: dict[str, ClassSchema]
    ) -> tuple[list[Entity], dict]:
        """Annotate attribute values via Wikidata + simulated human annotation.

        Returns new entity objects whose ``attributes`` hold the *annotated*
        values (which may rarely differ from ground truth due to annotation
        noise), plus an annotation report for the metadata block.
        """
        wikidata = WikidataClient(
            class_entities, self.config.wikidata_coverage, self._rng.child("wikidata")
        )
        manual_items: list[tuple[Entity, str, tuple[str, ...]]] = []
        annotated_values: dict[tuple[int, str], str] = {}
        for entity in class_entities:
            schema = schemas[entity.fine_class]
            for attribute in entity.attributes:
                value = wikidata.query(entity.entity_id, attribute)
                if value is not None:
                    annotated_values[(entity.entity_id, attribute)] = value
                else:
                    manual_items.append(
                        (entity, attribute, schema.attributes[attribute])
                    )
        annotator = AnnotationSimulator(self._rng.child("annotators"))
        report = annotator.annotate(manual_items)
        annotated_values.update(report.labels)

        annotated_entities = [
            dataclass_replace(
                entity,
                attributes={
                    attribute: annotated_values[(entity.entity_id, attribute)]
                    for attribute in entity.attributes
                },
            )
            for entity in class_entities
        ]
        annotation_meta = {
            "wikidata_statements": wikidata.num_statements(),
            "manual_items": report.num_items,
            "annotator_agreement": report.agreement,
        }
        return annotated_entities, annotation_meta

    # -- step 4 -----------------------------------------------------------------
    def _generate_classes_and_queries(
        self,
        schemas: list[ClassSchema],
        class_entities: list[Entity],
    ):
        class_gen = SemanticClassGenerator(
            self._rng.child("semantic_classes"),
            min_targets=self.config.min_targets,
            max_classes_per_fine_class=self.config.max_ultra_classes_per_fine_class,
        )
        query_gen = QueryGenerator(
            self._rng.child("query_gen"),
            queries_per_class=self.config.queries_per_class,
            min_seeds=self.config.min_seeds,
            max_seeds=self.config.max_seeds,
        )
        entities_by_class: dict[str, list[Entity]] = {}
        for entity in class_entities:
            entities_by_class.setdefault(entity.fine_class, []).append(entity)
        entities_by_id = {entity.entity_id: entity for entity in class_entities}

        ultra_classes = []
        for schema in schemas:
            ultra_classes.extend(
                class_gen.generate(schema, entities_by_class.get(schema.name, []))
            )
        queries = query_gen.generate(ultra_classes, entities_by_id)
        # Drop classes that ended up with no queries so every class in the
        # dataset is actually evaluable.
        queried_class_ids = {query.class_id for query in queries}
        ultra_classes = [uc for uc in ultra_classes if uc.class_id in queried_class_ids]
        return ultra_classes, queries

    # -- public API ----------------------------------------------------------------
    def build(self) -> UltraWikiDataset:
        """Run all four steps and return the dataset."""
        schemas = default_schemas(limit=self.config.num_fine_classes)
        schema_map = {schema.name: schema for schema in schemas}

        raw_class_entities, distractors = self._collect_entities(schemas)
        corpus, hard_negative_ids = self._collect_sentences(
            raw_class_entities, distractors, schema_map
        )
        class_entities, annotation_meta = self._annotate_attributes(
            raw_class_entities, schema_map
        )
        ultra_classes, queries = self._generate_classes_and_queries(
            schemas, class_entities
        )
        if not ultra_classes:
            raise DatasetError(
                "no ultra-fine-grained classes could be generated; "
                "increase entities_per_class or lower min_targets"
            )

        fine_classes = [
            FineGrainedClass(
                name=schema.name,
                description=schema.description,
                attributes=dict(schema.attributes),
            )
            for schema in schemas
        ]
        metadata = {
            "config": self.config.to_dict(),
            "annotation": annotation_meta,
            "hard_negative_ids": sorted(hard_negative_ids),
        }
        return UltraWikiDataset(
            entities=class_entities + distractors,
            corpus=corpus,
            fine_classes=fine_classes,
            ultra_classes=ultra_classes,
            queries=queries,
            metadata=metadata,
        )


def build_dataset(config: DatasetConfig | None = None) -> UltraWikiDataset:
    """Convenience wrapper: build an UltraWiki dataset from ``config``."""
    return UltraWikiBuilder(config).build()
