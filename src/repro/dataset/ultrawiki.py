"""The UltraWiki dataset container.

Bundles everything an expansion method needs: the candidate entity
vocabulary ``V``, the corpus ``D``, the ultra-fine-grained semantic classes
with their ground-truth ``P`` / ``N`` sets, and the queries ``S``.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Iterable, Mapping

from repro.exceptions import DatasetError
from repro.kb.corpus import Corpus
from repro.types import Entity, FineGrainedClass, Query, UltraFineGrainedClass
from repro.utils.iox import read_json, write_json


class UltraWikiDataset:
    """An in-memory UltraWiki-style dataset."""

    def __init__(
        self,
        entities: Iterable[Entity],
        corpus: Corpus,
        fine_classes: Iterable[FineGrainedClass],
        ultra_classes: Iterable[UltraFineGrainedClass],
        queries: Iterable[Query],
        metadata: Mapping | None = None,
    ):
        self._entities: dict[int, Entity] = {}
        self._by_name: dict[str, int] = {}
        for entity in entities:
            if entity.entity_id in self._entities:
                raise DatasetError(f"duplicate entity id {entity.entity_id}")
            if entity.name in self._by_name:
                raise DatasetError(f"duplicate entity name {entity.name!r}")
            self._entities[entity.entity_id] = entity
            self._by_name[entity.name] = entity.entity_id

        self.corpus = corpus
        self.fine_classes: dict[str, FineGrainedClass] = {
            fc.name: fc for fc in fine_classes
        }
        self.ultra_classes: dict[str, UltraFineGrainedClass] = {
            uc.class_id: uc for uc in ultra_classes
        }
        self.queries: list[Query] = list(queries)
        self.metadata: dict = dict(metadata or {})
        #: memoized content fingerprint (hashing the corpus is expensive and
        #: the artifact store consults the fingerprint on every lookup).
        self._fingerprint: str | None = None

        for query in self.queries:
            if query.class_id not in self.ultra_classes:
                raise DatasetError(
                    f"query {query.query_id!r} references unknown class {query.class_id!r}"
                )

    # -- entities --------------------------------------------------------------
    @property
    def num_entities(self) -> int:
        return len(self._entities)

    @property
    def num_sentences(self) -> int:
        return len(self.corpus)

    def entity(self, entity_id: int) -> Entity:
        try:
            return self._entities[entity_id]
        except KeyError as exc:
            raise DatasetError(f"unknown entity id {entity_id}") from exc

    def entity_by_name(self, name: str) -> Entity:
        try:
            return self._entities[self._by_name[name]]
        except KeyError as exc:
            raise DatasetError(f"unknown entity name {name!r}") from exc

    def has_entity_name(self, name: str) -> bool:
        return name in self._by_name

    def entities(self) -> list[Entity]:
        """All candidate entities (the vocabulary ``V``), ordered by id."""
        return [self._entities[i] for i in sorted(self._entities)]

    def entity_ids(self) -> list[int]:
        return sorted(self._entities)

    def entities_of_fine_class(self, fine_class: str) -> list[Entity]:
        return [e for e in self.entities() if e.fine_class == fine_class]

    def distractors(self) -> list[Entity]:
        return [e for e in self.entities() if e.fine_class is None]

    # -- classes and queries -----------------------------------------------------
    def ultra_class(self, class_id: str) -> UltraFineGrainedClass:
        try:
            return self.ultra_classes[class_id]
        except KeyError as exc:
            raise DatasetError(f"unknown ultra-fine-grained class {class_id!r}") from exc

    def ultra_class_of_query(self, query: Query) -> UltraFineGrainedClass:
        return self.ultra_class(query.class_id)

    def queries_of_class(self, class_id: str) -> list[Query]:
        return [q for q in self.queries if q.class_id == class_id]

    def positive_targets(self, query: Query) -> set[int]:
        """Ground-truth ``P`` for a query, excluding its seed entities."""
        ultra = self.ultra_class_of_query(query)
        return set(ultra.positive_entity_ids) - query.seed_ids()

    def negative_targets(self, query: Query) -> set[int]:
        """Ground-truth ``N`` for a query, excluding its seed entities."""
        ultra = self.ultra_class_of_query(query)
        return set(ultra.negative_entity_ids) - query.seed_ids()

    # -- identity ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """A stable content fingerprint of the dataset, memoized.

        Serving components key fitted expanders by ``(method, fingerprint)``
        so that two services over the same dataset share cache entries while a
        rebuilt or differently-seeded dataset never reuses stale models.  The
        fingerprint covers the vocabulary, class structure, queries, and the
        corpus content — the inputs that determine a fitted expander.

        Hashing the whole corpus is linear in its size, and store lookups
        consult the fingerprint on every request, so the digest is computed
        once and cached on the instance.  The container is technically
        mutable; a caller that mutates entities, classes, queries, or the
        corpus in place must call :meth:`invalidate_fingerprint` afterwards.
        """
        if self._fingerprint is None:
            self._fingerprint = self._compute_fingerprint()
        return self._fingerprint

    def invalidate_fingerprint(self) -> None:
        """Drop the memoized fingerprint after an in-place mutation."""
        self._fingerprint = None

    def _compute_fingerprint(self) -> str:
        digest = hashlib.sha256()
        for entity in self.entities():
            digest.update(f"{entity.entity_id}:{entity.name}:{entity.fine_class}".encode())
        for class_id in sorted(self.ultra_classes):
            ultra = self.ultra_classes[class_id]
            digest.update(
                f"{class_id}:{sorted(ultra.positive_entity_ids)}:"
                f"{sorted(ultra.negative_entity_ids)}".encode()
            )
        for query in self.queries:
            digest.update(
                f"{query.query_id}:{query.class_id}:"
                f"{query.positive_seed_ids}:{query.negative_seed_ids}".encode()
            )
        # Models are trained on the corpus, so its content (not just its
        # size) must contribute to the fingerprint.
        for sentence in self.corpus:
            digest.update(
                f"{sentence.sentence_id}:{sentence.text}:{sentence.entity_ids}".encode()
            )
        return digest.hexdigest()[:16]

    # -- persistence ---------------------------------------------------------------
    def save(self, directory: str | Path) -> None:
        """Persist the dataset to ``directory`` (entities/classes/queries + corpus)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        write_json(
            directory / "dataset.json",
            {
                "metadata": self.metadata,
                "entities": [e.to_dict() for e in self.entities()],
                "fine_classes": [fc.to_dict() for fc in self.fine_classes.values()],
                "ultra_classes": [uc.to_dict() for uc in self.ultra_classes.values()],
                "queries": [q.to_dict() for q in self.queries],
            },
        )
        self.corpus.save(directory / "corpus.jsonl")

    @classmethod
    def load(cls, directory: str | Path) -> "UltraWikiDataset":
        directory = Path(directory)
        payload = read_json(directory / "dataset.json")
        corpus = Corpus.load(directory / "corpus.jsonl")
        return cls(
            entities=[Entity.from_dict(e) for e in payload["entities"]],
            corpus=corpus,
            fine_classes=[FineGrainedClass.from_dict(f) for f in payload["fine_classes"]],
            ultra_classes=[
                UltraFineGrainedClass.from_dict(u) for u in payload["ultra_classes"]
            ],
            queries=[Query.from_dict(q) for q in payload["queries"]],
            metadata=payload.get("metadata", {}),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"UltraWikiDataset(entities={self.num_entities}, "
            f"sentences={self.num_sentences}, "
            f"fine_classes={len(self.fine_classes)}, "
            f"ultra_classes={len(self.ultra_classes)}, "
            f"queries={len(self.queries)})"
        )
