"""UltraWiki dataset construction, container, and analysis."""

from repro.dataset.ultrawiki import UltraWikiDataset
from repro.dataset.builder import UltraWikiBuilder, build_dataset
from repro.dataset.semantic_class import SemanticClassGenerator
from repro.dataset.queries import QueryGenerator
from repro.dataset.analysis import (
    DatasetStatistics,
    class_similarity_matrix,
    compute_statistics,
    dataset_comparison_table,
)

__all__ = [
    "UltraWikiDataset",
    "UltraWikiBuilder",
    "build_dataset",
    "SemanticClassGenerator",
    "QueryGenerator",
    "DatasetStatistics",
    "class_similarity_matrix",
    "compute_statistics",
    "dataset_comparison_table",
]
