"""Query (seed set) sampling for ultra-fine-grained semantic classes.

Each ultra-fine-grained class receives a fixed number of queries (paper: 3),
each with 3–5 positive seeds drawn from ``P`` and 3–5 negative seeds drawn
from ``N``.  Seeds are sampled from the non-overlapping parts of ``P`` and
``N`` so a seed is never simultaneously positive and negative, and popular
entities are preferred as seeds (users name entities they know).
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import DatasetError
from repro.types import Entity, Query, UltraFineGrainedClass
from repro.utils.rng import RandomState


class QueryGenerator:
    """Samples positive / negative seed entities for each ultra-fine-grained class."""

    def __init__(
        self,
        rng: RandomState,
        queries_per_class: int = 3,
        min_seeds: int = 3,
        max_seeds: int = 5,
    ):
        if queries_per_class < 1:
            raise DatasetError("queries_per_class must be >= 1")
        if min_seeds < 1 or max_seeds < min_seeds:
            raise DatasetError("invalid seed count range")
        self._rng = rng
        self.queries_per_class = queries_per_class
        self.min_seeds = min_seeds
        self.max_seeds = max_seeds

    def _seed_pool(
        self,
        include: Sequence[int],
        exclude: Sequence[int],
        entities_by_id: dict[int, Entity],
    ) -> list[int]:
        """Candidate seed ids: in ``include`` but not ``exclude``, popular first."""
        exclude_set = set(exclude)
        pool = [eid for eid in include if eid not in exclude_set]
        pool.sort(key=lambda eid: (-entities_by_id[eid].popularity, eid))
        return pool

    def _sample_seeds(
        self, pool: list[int], count: int, rng: RandomState
    ) -> tuple[int, ...]:
        """Sample ``count`` seeds biased toward the popular front of ``pool``."""
        if len(pool) < count:
            raise DatasetError(
                f"cannot sample {count} seeds from a pool of {len(pool)}"
            )
        # Bias: restrict to the most popular half (but at least `count` items),
        # then sample uniformly within it.
        front = pool[: max(count, len(pool) // 2)]
        return tuple(sorted(rng.sample(front, count)))

    def generate_for_class(
        self,
        ultra_class: UltraFineGrainedClass,
        entities_by_id: dict[int, Entity],
    ) -> list[Query]:
        """Generate the queries for one ultra-fine-grained class."""
        rng = self._rng.child("queries", ultra_class.class_id)
        positive_pool = self._seed_pool(
            ultra_class.positive_entity_ids,
            ultra_class.negative_entity_ids,
            entities_by_id,
        )
        negative_pool = self._seed_pool(
            ultra_class.negative_entity_ids,
            ultra_class.positive_entity_ids,
            entities_by_id,
        )
        max_pos = min(self.max_seeds, len(positive_pool) - 1)
        max_neg = min(self.max_seeds, len(negative_pool) - 1)
        if max_pos < self.min_seeds or max_neg < self.min_seeds:
            raise DatasetError(
                f"class {ultra_class.class_id!r} has too few non-overlapping targets "
                "to sample seeds"
            )

        queries: list[Query] = []
        for index in range(self.queries_per_class):
            query_rng = rng.child(index)
            num_pos = query_rng.integers(self.min_seeds, max_pos + 1)
            num_neg = query_rng.integers(self.min_seeds, max_neg + 1)
            queries.append(
                Query(
                    query_id=f"{ultra_class.class_id}/q{index}",
                    class_id=ultra_class.class_id,
                    positive_seed_ids=self._sample_seeds(
                        positive_pool, num_pos, query_rng.child("pos")
                    ),
                    negative_seed_ids=self._sample_seeds(
                        negative_pool, num_neg, query_rng.child("neg")
                    ),
                )
            )
        return queries

    def generate(
        self,
        ultra_classes: Sequence[UltraFineGrainedClass],
        entities_by_id: dict[int, Entity],
    ) -> list[Query]:
        """Generate queries for every class (classes that cannot support seeds are skipped)."""
        queries: list[Query] = []
        for ultra_class in ultra_classes:
            try:
                queries.extend(self.generate_for_class(ultra_class, entities_by_id))
            except DatasetError:
                # The builder filters classes for viability, but a class can
                # still lack non-overlapping seeds; skip it rather than fail.
                continue
        return queries
