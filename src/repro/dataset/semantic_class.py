"""Negative-aware generation of ultra-fine-grained semantic classes.

Implements Step 4 of the UltraWiki construction pipeline (Section IV-A):
for each fine-grained class, sample positive and negative attribute sets
``A_pos`` / ``A_neg``, pick concrete values, and materialise the positive
target set ``P`` (entities matching ``A_pos``) and negative target set ``N``
(entities matching ``A_neg``).  Classes whose ``P`` or ``N`` fall below the
minimum entity requirement (paper: ``n_thred = 6``) are discarded.

Two regimes matter for the paper's analysis (Table V / VI):

* ``A_pos`` and ``A_neg`` constrain the *same* attribute with different
  values — negatives emphasise which attribute the user cares about and
  ``P`` and ``N`` are disjoint;
* they constrain *different* attributes — negatives express genuinely
  "unwanted" semantics and ``P`` and ``N`` may overlap.

The generator produces a controlled mix of (|A_pos|, |A_neg|) cardinalities
(1,1), (1,2) and (2,1), dominated by (1,1) as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, product
from typing import Mapping, Sequence

from repro.exceptions import DatasetError
from repro.kb.schema import ClassSchema
from repro.types import Entity, UltraFineGrainedClass
from repro.utils.rng import RandomState


@dataclass(frozen=True)
class _CandidateClass:
    """An (A_pos, A_neg) configuration before target materialisation."""

    positive_assignment: Mapping[str, str]
    negative_assignment: Mapping[str, str]

    @property
    def cardinality(self) -> tuple[int, int]:
        return (len(self.positive_assignment), len(self.negative_assignment))

    @property
    def same_attributes(self) -> bool:
        return set(self.positive_assignment) == set(self.negative_assignment)


class SemanticClassGenerator:
    """Generates ultra-fine-grained semantic classes for one fine-grained class."""

    def __init__(
        self,
        rng: RandomState,
        min_targets: int = 6,
        max_classes_per_fine_class: int = 26,
        cardinality_quota: Mapping[tuple[int, int], float] | None = None,
    ):
        if min_targets < 1:
            raise DatasetError("min_targets must be >= 1")
        if max_classes_per_fine_class < 1:
            raise DatasetError("max_classes_per_fine_class must be >= 1")
        self._rng = rng
        self.min_targets = min_targets
        self.max_classes = max_classes_per_fine_class
        #: share of generated classes per (|A_pos|, |A_neg|) cardinality.
        self.cardinality_quota = dict(
            cardinality_quota or {(1, 1): 0.7, (1, 2): 0.15, (2, 1): 0.15}
        )

    # -- candidate enumeration ---------------------------------------------------
    @staticmethod
    def _single_attribute_candidates(schema: ClassSchema) -> list[_CandidateClass]:
        """All (1,1) configurations: same-attribute and cross-attribute pairs."""
        candidates: list[_CandidateClass] = []
        attributes = schema.attribute_names()
        # Same attribute, different values (A_pos == A_neg attribute-wise).
        for attribute in attributes:
            for pos_value, neg_value in product(schema.attributes[attribute], repeat=2):
                if pos_value != neg_value:
                    candidates.append(
                        _CandidateClass(
                            positive_assignment={attribute: pos_value},
                            negative_assignment={attribute: neg_value},
                        )
                    )
        # Different attributes.
        for pos_attr, neg_attr in product(attributes, repeat=2):
            if pos_attr == neg_attr:
                continue
            for pos_value in schema.attributes[pos_attr]:
                for neg_value in schema.attributes[neg_attr]:
                    candidates.append(
                        _CandidateClass(
                            positive_assignment={pos_attr: pos_value},
                            negative_assignment={neg_attr: neg_value},
                        )
                    )
        return candidates

    @staticmethod
    def _multi_attribute_candidates(
        schema: ClassSchema, pos_count: int, neg_count: int
    ) -> list[_CandidateClass]:
        """Configurations with |A_pos| = pos_count and |A_neg| = neg_count."""
        attributes = schema.attribute_names()
        if len(attributes) < max(pos_count, neg_count):
            return []
        candidates: list[_CandidateClass] = []
        for pos_attrs in combinations(attributes, pos_count):
            for neg_attrs in combinations(attributes, neg_count):
                pos_value_choices = product(*(schema.attributes[a] for a in pos_attrs))
                for pos_values in pos_value_choices:
                    positive = dict(zip(pos_attrs, pos_values))
                    neg_value_choices = product(*(schema.attributes[a] for a in neg_attrs))
                    for neg_values in neg_value_choices:
                        negative = dict(zip(neg_attrs, neg_values))
                        # Skip configurations whose constraints are identical:
                        # "positive == negative" describes an empty target set.
                        if positive == negative:
                            continue
                        candidates.append(
                            _CandidateClass(
                                positive_assignment=positive,
                                negative_assignment=negative,
                            )
                        )
        return candidates

    # -- materialisation ------------------------------------------------------------
    @staticmethod
    def _matching_entities(
        entities: Sequence[Entity], assignment: Mapping[str, str]
    ) -> tuple[int, ...]:
        return tuple(
            entity.entity_id for entity in entities if entity.matches(assignment)
        )

    def _is_viable(
        self, candidate: _CandidateClass, entities: Sequence[Entity]
    ) -> tuple[tuple[int, ...], tuple[int, ...]] | None:
        positives = self._matching_entities(entities, candidate.positive_assignment)
        negatives = self._matching_entities(entities, candidate.negative_assignment)
        if len(positives) < self.min_targets or len(negatives) < self.min_targets:
            return None
        # The target set is P - N; require it to be non-trivial so queries
        # have something to find.
        if len(set(positives) - set(negatives)) < self.min_targets:
            return None
        if len(set(negatives) - set(positives)) < self.min_targets:
            return None
        return positives, negatives

    def generate(
        self, schema: ClassSchema, entities: Sequence[Entity]
    ) -> list[UltraFineGrainedClass]:
        """Generate the ultra-fine-grained classes for ``schema``.

        Candidates are enumerated exhaustively per cardinality bucket,
        filtered for viability (enough targets), shuffled deterministically,
        and sampled according to the cardinality quota up to the per-class cap.
        """
        rng = self._rng.child("ultra_classes", schema.name)
        buckets: dict[tuple[int, int], list[_CandidateClass]] = {
            (1, 1): self._single_attribute_candidates(schema),
            (1, 2): self._multi_attribute_candidates(schema, 1, 2),
            (2, 1): self._multi_attribute_candidates(schema, 2, 1),
        }

        generated: list[UltraFineGrainedClass] = []
        seen_configs: set[tuple] = set()
        for cardinality, quota in sorted(self.cardinality_quota.items()):
            budget = max(1, round(self.max_classes * quota))
            candidates = rng.child(cardinality).shuffle(buckets.get(cardinality, []))
            taken = 0
            for candidate in candidates:
                if taken >= budget:
                    break
                config_key = (
                    tuple(sorted(candidate.positive_assignment.items())),
                    tuple(sorted(candidate.negative_assignment.items())),
                )
                if config_key in seen_configs:
                    continue
                viability = self._is_viable(candidate, entities)
                if viability is None:
                    continue
                positives, negatives = viability
                seen_configs.add(config_key)
                class_id = f"{schema.name}#{len(generated):03d}"
                generated.append(
                    UltraFineGrainedClass(
                        class_id=class_id,
                        fine_class=schema.name,
                        positive_assignment=dict(candidate.positive_assignment),
                        negative_assignment=dict(candidate.negative_assignment),
                        positive_entity_ids=positives,
                        negative_entity_ids=negatives,
                    )
                )
                taken += 1
        return generated
